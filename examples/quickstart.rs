//! Quickstart: co-locate a latency-critical server with a batch job on
//! tiered memory and compare MTAT against frequency-based placement.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mtat::core::config::SimConfig;
use mtat::core::policy::memtis::MemtisPolicy;
use mtat::core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat::core::runner::Experiment;
use mtat::workloads::be::BeSpec;
use mtat::workloads::lc::LcSpec;
use mtat::workloads::load::LoadPattern;

fn main() {
    // The paper's testbed: 32 GiB FMem (73 ns), 256 GiB SMem (202 ns),
    // ~4 GB/s of migration bandwidth.
    let cfg = SimConfig::paper();

    // Redis (Table 1) under the Fig.-7 trapezoid load, co-located with
    // the four BE workloads of Table 2.
    let exp = Experiment::new(
        cfg.clone(),
        LcSpec::redis(),
        LoadPattern::fig7(),
        BeSpec::all_paper_workloads(),
    );
    println!(
        "co-locating {} (SLO {:.0} ms, max ~{:.0} KRPS) with {} BE workloads\n",
        exp.lc.name,
        exp.lc.slo_secs * 1e3,
        exp.lc_max_ref / 1e3,
        exp.bes.len()
    );

    // Frequency-based placement (MEMTIS-like): BE pages look hot, the
    // LC workload is displaced to SMem, and its SLO collapses.
    let mut memtis = MemtisPolicy::new();
    let baseline = exp.run(&mut memtis);

    // MTAT: the RL partitioner reserves just enough FMem for the SLO;
    // simulated annealing splits the rest fairly among the BE jobs.
    // (Constructing the policy pretrains the agent — a few seconds.)
    println!("pretraining the MTAT partitioning agent...");
    let mut mtat = MtatPolicy::new(MtatConfig::full(), &cfg, &exp.lc, &exp.bes);
    let ours = exp.run(&mut mtat);

    println!(
        "\n{:12} {:>12} {:>12} {:>12} {:>14}",
        "policy", "SLO-viol", "fairness", "BE Mops/s", "LC FMem avg"
    );
    for r in [&baseline, &ours] {
        println!(
            "{:12} {:>11.1}% {:>12.3} {:>12.1} {:>13.1}%",
            r.policy,
            r.violation_rate() * 100.0,
            r.fairness(),
            r.be_total_throughput() / 1e6,
            r.mean_lc_fmem_ratio() * 100.0
        );
    }
    println!(
        "\nMTAT cut SLO violations from {:.1}% to {:.1}% while giving the\n\
         LC workload only {:.0}% of FMem on average.",
        baseline.violation_rate() * 100.0,
        ours.violation_rate() * 100.0,
        ours.mean_lc_fmem_ratio() * 100.0
    );
}
