//! Fairness-driven BE partitioning (Algorithm 2) in isolation.
//!
//! Profiles the four BE workloads offline (throughput vs FMem in 1 GiB
//! steps, §4), then runs the simulated-annealing search for several
//! residual-FMem budgets and compares the achieved fairness (min NP,
//! Eq. 3) against a naive even split.
//!
//! ```sh
//! cargo run --release --example fairness_annealing
//! ```

use mtat::core::ppm::annealing::{even_split, AnnealingConfig};
use mtat::core::ppm::be::{min_np, BePartitioner};
use mtat::core::ppm::profiler::profile_all;
use mtat::tiermem::GIB;
use mtat::workloads::be::BeSpec;

fn main() {
    let specs = BeSpec::all_paper_workloads();
    let page_size = 2 << 20;
    let fmem_total = 32 * GIB;

    println!("offline profiles (normalized performance NP at 0/8/16/32 GiB):");
    let profiles = profile_all(&specs, fmem_total, page_size);
    for p in &profiles {
        println!(
            "  {:8} NP(0)={:.2} NP(8)={:.2} NP(16)={:.2} NP(32)={:.2}",
            p.name,
            p.np_at_gb(0),
            p.np_at_gb(8),
            p.np_at_gb(16),
            p.np_at_gb(32)
        );
    }

    let mut partitioner = BePartitioner::new(profiles.clone(), AnnealingConfig::default(), 1234);

    println!(
        "\n{:>10} {:>28} {:>10} {:>10}",
        "residual", "SA allocation (GiB)", "SA minNP", "even minNP"
    );
    for gb in [8u64, 16, 24, 28] {
        let alloc = partitioner.partition(gb * GIB);
        let alloc_gb: Vec<u64> = alloc.iter().map(|b| b / GIB).collect();
        let sa_fair = partitioner.expected_fairness(&alloc);
        let even = even_split(gb, profiles.len());
        let even_fair = min_np(&profiles, &even);
        println!(
            "{:>8}Gi {:>28} {:>10.3} {:>10.3}",
            gb,
            format!("{alloc_gb:?}"),
            sa_fair,
            even_fair
        );
    }
    println!(
        "\nthe search shifts FMem away from the heavily skewed PageRank\n\
         (whose hot head needs little) toward the flat XSBench, lifting\n\
         the worst-off workload — Algorithm 2's objective."
    );
}
