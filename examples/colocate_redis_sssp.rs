//! The paper's Fig.-2 motivation scenario as a runnable demo: Redis
//! co-located with GAPBS SSSP under frequency-based (MEMTIS-like)
//! placement.
//!
//! Redis starts fully resident in FMem. Watch its residency collapse as
//! the batch job's stable, high-frequency pages displace it — and its
//! P99 latency blow through the SLO once the offered load passes what
//! an SMem-resident Redis can serve.
//!
//! ```sh
//! cargo run --release --example colocate_redis_sssp
//! ```

use mtat::core::config::SimConfig;
use mtat::core::policy::memtis::MemtisPolicy;
use mtat::core::runner::Experiment;
use mtat::workloads::be::BeSpec;
use mtat::workloads::lc::LcSpec;
use mtat::workloads::load::LoadPattern;

fn main() {
    let cfg = SimConfig::paper();
    let redis = LcSpec::redis();

    // Staircase: 30 %, 55 %, 75 %, 100 % of Redis's FMEM_ALL max load,
    // 50 s each.
    let pattern = LoadPattern::staircase(&[0.30, 0.55, 0.75, 1.0], 50.0);
    let exp = Experiment::new(cfg.clone(), redis, pattern, vec![BeSpec::sssp()]);

    let mut policy = MemtisPolicy::new();
    let r = exp.run(&mut policy);

    println!("time   load        P99         SLO?   Redis-in-FMem");
    for tick in r.ticks.iter().step_by(10) {
        let bar_len = (tick.lc_fmem_ratio * 30.0).round() as usize;
        let p99_ms = if tick.lc_p99.is_finite() {
            format!("{:8.2}ms", tick.lc_p99 * 1e3)
        } else {
            "   (sat.)".to_string()
        };
        println!(
            "{:4.0}s  {:6.1}K  {}  {}  {:30} {:4.0}%",
            tick.t,
            tick.lc_load_rps / 1e3,
            p99_ms,
            if tick.lc_violated { "VIOL" } else { " ok " },
            "#".repeat(bar_len),
            tick.lc_fmem_ratio * 100.0
        );
    }
    println!(
        "\nsummary: {:.1}% of requests violated the {:.0} ms SLO; Redis kept\n\
         only {:.1}% of its data in FMem on average — the paper's Fig. 2.",
        r.violation_rate() * 100.0,
        exp.lc.slo_secs * 1e3,
        r.mean_lc_fmem_ratio() * 100.0
    );
}
