//! Train the SAC partitioning agent (Algorithm 1) from scratch on the
//! analytic LC environment and inspect what it learned.
//!
//! Prints a learning curve (average Eq.-2 reward per 1 000 intervals)
//! and then the trained policy's FMem allocation response to a sweep of
//! load levels — the monotone "more load → more FMem" mapping that
//! makes Fig. 5's allocation track the trapezoid.
//!
//! ```sh
//! cargo run --release --example train_partitioner
//! ```

use mtat::core::ppm::env::{LcEnvConfig, LcPartitionEnv};
use mtat::rl::env::Environment;
use mtat::rl::replay::Transition;
use mtat::rl::sac::{Sac, SacConfig};
use mtat::tiermem::GIB;
use mtat::workloads::lc::LcSpec;

fn main() {
    let spec = LcSpec::redis();
    let env_cfg = LcEnvConfig::paper_scale(&spec);
    let mut env = LcPartitionEnv::new(spec.clone(), env_cfg, 7);

    let mut sac_cfg = SacConfig::paper(3, 1);
    sac_cfg.update_every = 2;
    let mut agent = Sac::new(sac_cfg, 42);

    println!("training SAC on the LC partitioning environment...");
    println!("{:>8} {:>12} {:>10}", "steps", "avg reward", "alpha");
    let mut state = env.reset();
    let mut window_reward = 0.0;
    let window = 1000;
    for step in 1..=12_000 {
        let action = agent.act(&state);
        let (next, reward, done) = env.step(&action);
        window_reward += reward;
        agent.observe(Transition {
            state: state.clone(),
            action,
            reward,
            next_state: next.clone(),
            done,
        });
        state = if done { env.reset() } else { next };
        if step % window == 0 {
            println!(
                "{:>8} {:>12.3} {:>10.4}",
                step,
                window_reward / window as f64,
                agent.alpha()
            );
            window_reward = 0.0;
        }
    }

    println!("\nlearned allocation response (deterministic policy):");
    println!("{:>10} {:>16}", "load", "requested move");
    for level in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        // Ask the policy what it would do when holding a mid allocation.
        let usage = 0.4;
        let action = agent.act_deterministic(&[usage, usage, level])[0];
        let move_gb = action * 20.0; // ±M·t/2 = ±20 GiB
        println!("{:>9.0}% {:>+15.1} GiB", level * 100.0, move_gb);
    }
    let _ = GIB;
    println!(
        "\nthe agent grows the partition as the normalized Memory Access\n\
         Count rises and shrinks it at low load — Eq. (2)'s two objectives."
    );
}
