//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! range strategies over primitive numbers, `prop::bool::ANY`,
//! `prop::collection::vec`, tuple strategies, and `Strategy::prop_map`.
//!
//! Semantics differ from upstream in one way that matters: there is no
//! shrinking. A failing case panics with the generated inputs' case
//! number instead of a minimized counterexample. Generation is
//! deterministic per test function (fixed seed), so failures reproduce.

pub mod strategy;

pub mod test_runner {
    //! Case runner + config + the error type `prop_assert!` produces.

    use std::fmt;

    /// Subset of upstream's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property this many times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the optimized test
            // profile fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (produced by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError { msg }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic generation stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty size range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }

    /// Runs the generated cases and panics on the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Builds a runner with a fixed generation seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: TestRng::new(0x5052_4F50_5445_5354),
            }
        }

        /// Runs `case` once per configured case, panicking on `Err`.
        pub fn run_cases<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for i in 0..self.config.cases {
                if let Err(e) = case(&mut self.rng) {
                    panic!("property failed at case {i}: {e}");
                }
            }
        }
    }
}

pub mod collection {
    //! `prop::collection::vec` — vectors of a given strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! `prop::bool::ANY` — a fair coin strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: the strategy trait, config, macros,
    //! and the `prop` module namespace.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! The `prop::` namespace used inside `proptest!` bodies.
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn` becomes a `#[test]` running the
/// body once per generated case. Supports an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run_cases(|prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding through generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(&left == &right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = usize> {
        (0usize..10).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 1u64..32,
            b in -200i64..200,
            f in 0.01f64..0.99,
            flag in prop::bool::ANY,
        ) {
            prop_assert!((1..32).contains(&a));
            prop_assert!((-200..200).contains(&b));
            prop_assert!((0.01..0.99).contains(&f), "f = {f}");
            let _ = flag;
        }

        #[test]
        fn vecs_and_tuples_compose(
            v in prop::collection::vec((0u32..64, prop::bool::ANY), 1..20),
            w in prop::collection::vec(0.1f64..10.0, 6),
            d in doubled(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(w.len(), 6);
            prop_assert_eq!(d % 2, 0);
            if d == 0 {
                return Ok(());
            }
            prop_assert!(d >= 2);
        }
    }
}
