//! Value-generation strategies: primitive ranges, tuples, and `prop_map`.

use crate::test_runner::TestRng;

/// A source of generated values for property tests.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
