//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`], `gen`, and
//! `gen_range` over primitive integer and float ranges.
//!
//! `StdRng` here is a SplitMix64 generator: deterministic per seed
//! (which the simulator relies on for reproducibility) but *not* the
//! ChaCha12 stream of upstream `rand 0.8`, so seeded sequences differ
//! from upstream numerically. All statistical tests in the workspace
//! assert distributional tolerances, not exact streams, so this is an
//! acceptable substitution for an offline build.

pub mod rngs {
    pub use crate::StdRng;
}

/// Seeding interface: the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a primitive type from its standard
    /// distribution (`f64` uniform in [0, 1), `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of any mixed output are fine, but a
        // high bit is robust even for weaker mixers.
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction: maps 64 random bits onto the
                // span with negligible bias for the small spans used here.
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let f: f64 = Standard::sample_standard(rng);
                let v = self.start as f64 + f * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the exclusive endpoint.
                if v as $t >= self.end {
                    self.start
                } else {
                    v as $t
                }
            }
        }
    )*};
}

uniform_float_range!(f32, f64);

/// Deterministic 64-bit generator (SplitMix64).
///
/// Not the upstream `StdRng` algorithm; see the crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// The generator's raw internal state, for checkpointing. Restoring
    /// via [`StdRng::from_state`] continues the exact same stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a captured [`StdRng::state`] value.
    pub fn from_state(state: u64) -> Self {
        StdRng { state }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-200i64..200);
            assert!((-200..200).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "{heads}");
    }
}
