//! Offline stand-in for `serde_derive`: emits empty marker impls.
//!
//! Written without `syn`/`quote` (unavailable offline): the input item
//! is scanned token-by-token for the `struct`/`enum` keyword and the
//! type name that follows. Generic types get no impl (none of the
//! workspace's serde-annotated types are generic, and the traits are
//! pure markers, so omitting an impl cannot break a bound).
//!
//! `attributes(serde)` keeps field-level `#[serde(...)]` annotations
//! (e.g. `#[serde(skip)]`) accepted and inert.

use proc_macro::{TokenStream, TokenTree};

/// Scans the top-level tokens of the derive input for `struct X` or
/// `enum X` and returns `X` when the type is non-generic.
fn non_generic_type_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.next(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    if generic {
                        return None;
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match non_generic_type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}
