//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace uses
//! serde purely as `#[derive(Serialize, Deserialize)]` annotations —
//! no serializer is ever instantiated — so marker traits plus derive
//! macros that emit empty impls are sufficient to compile and to keep
//! the annotations meaningful (the impls exist and are checked).
//!
//! If the real `serde` is restored, nothing at the call sites changes.

/// Marker: the type declares itself serializable.
pub trait Serialize {}

/// Marker: the type declares itself deserializable.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn traits_are_object_safe_enough_to_name() {
        fn _takes<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}
    }
}
