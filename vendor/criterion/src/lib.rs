//! Minimal offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io. This keeps the
//! workspace's `harness = false` benches compiling and running: each
//! `bench_function` times a fixed batch of iterations with
//! `std::time::Instant` and prints a mean ns/iter line. There is no
//! statistical analysis, warm-up, or HTML report — it is a smoke
//! harness, not a measurement instrument.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver (API subset).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 50,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, 50, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a mean ns/iter line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.name, id, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / b.iters.max(1) as f64;
    if group.is_empty() {
        println!("  {id}: {per_iter:.0} ns/iter ({samples} iters)");
    } else {
        println!("  {group}/{id}: {per_iter:.0} ns/iter ({samples} iters)");
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 5);
    }
}
