//! Cross-crate integration tests: full co-location experiments on a
//! small tiered-memory system, exercising the complete stack (workload
//! models → substrate → policies → driver → metrics).

use mtat::core::config::SimConfig;
use mtat::core::policy::memtis::MemtisPolicy;
use mtat::core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat::core::policy::statics::StaticPolicy;
use mtat::core::policy::tpp::TppPolicy;
use mtat::core::runner::Experiment;
use mtat::tiermem::GIB;
use mtat::workloads::be::BeSpec;
use mtat::workloads::lc::LcSpec;
use mtat::workloads::load::LoadPattern;

/// LC workload scaled to the small test memory (1 GiB FMem, 8 GiB SMem).
fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.3 * GIB as f64) as u64;
    s
}

fn small_bes() -> Vec<BeSpec> {
    let mut sssp = BeSpec::sssp();
    sssp.rss_bytes = (1.5 * GIB as f64) as u64;
    let mut xs = BeSpec::xsbench();
    xs.rss_bytes = (1.2 * GIB as f64) as u64;
    vec![sssp, xs]
}

fn experiment(load: LoadPattern, duration: f64) -> Experiment {
    Experiment::new(SimConfig::small_test(), small_lc(), load, small_bes()).with_duration(duration)
}

fn mtat_policy(exp: &Experiment) -> MtatPolicy {
    // Heuristic sizer keeps the test fast and deterministic; the RL
    // sizer is covered by its own unit tests and the bench harness.
    let mut cfg = MtatConfig::full().with_heuristic_sizer();
    cfg.online_learning = false;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

#[test]
fn memtis_displaces_lc_and_violates_at_high_load() {
    let exp = experiment(LoadPattern::Constant(0.9), 60.0);
    let mut policy = MemtisPolicy::new();
    let r = exp.run(&mut policy);
    // Displacement: the LC workload loses nearly all its FMem residency.
    assert!(
        r.ticks.last().unwrap().lc_fmem_ratio < 0.2,
        "lc residency {}",
        r.ticks.last().unwrap().lc_fmem_ratio
    );
    // And at 90 % of the FMEM_ALL max it cannot meet the SLO from SMem.
    assert!(
        r.violation_rate_after(20.0) > 0.5,
        "rate {}",
        r.violation_rate_after(20.0)
    );
}

#[test]
fn mtat_meets_slo_where_memtis_fails() {
    let exp = experiment(LoadPattern::Constant(0.9), 90.0);
    let mut mtat = mtat_policy(&exp);
    let r = exp.run(&mut mtat);
    assert_eq!(
        r.violation_rate_after(40.0),
        0.0,
        "MTAT should hold the SLO at steady high load (worst p99 {:.1} ms)",
        r.worst_p99_after(40.0) * 1e3
    );
    // It does so by actually allocating FMem to the LC workload.
    assert!(r.ticks.last().unwrap().lc_fmem_ratio > 0.3);
}

#[test]
fn mtat_returns_fmem_to_be_at_low_load() {
    let exp = experiment(LoadPattern::Constant(0.2), 90.0);
    let mut mtat = mtat_policy(&exp);
    let r = exp.run(&mut mtat);
    assert_eq!(r.violation_rate_after(40.0), 0.0);
    // At 20 % load the SMem knee is far away: the LC partition shrinks
    // and the BE workloads hold most of FMem.
    let last = r.ticks.last().unwrap();
    let be_fmem: u64 = last.fmem_bytes[1..].iter().sum();
    assert!(
        be_fmem > last.fmem_bytes[0],
        "BE should hold more FMem than LC at low load: {:?}",
        last.fmem_bytes
    );
}

#[test]
fn trapezoid_run_tracks_load_with_mtat() {
    let exp = experiment(LoadPattern::fig7(), 240.0);
    let mut mtat = mtat_policy(&exp);
    let r = exp.run(&mut mtat);
    // Allocation at the plateau (t in 100..140) must exceed allocation
    // in the low-load head (t < 40) and tail (t > 220).
    let avg = |lo: f64, hi: f64| {
        let sel: Vec<f64> = r
            .ticks
            .iter()
            .filter(|t| t.t >= lo && t.t < hi)
            .map(|t| t.lc_fmem_ratio)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    let head = avg(20.0, 40.0);
    let plateau = avg(100.0, 140.0);
    assert!(
        plateau > head + 0.2,
        "plateau {plateau} should clearly exceed head {head}"
    );
}

#[test]
fn policy_ordering_on_max_load() {
    use mtat::core::runner::MaxLoadSearch;
    let exp = experiment(LoadPattern::Constant(1.0), 60.0);
    let opts = MaxLoadSearch {
        probe_secs: 60.0,
        grace_secs: 30.0,
        scan_step: 0.1,
        iterations: 3,
        ..MaxLoadSearch::default()
    };
    let max_fmem = exp.find_max_load(&mut || Box::new(StaticPolicy::fmem_all()), &opts);
    let max_smem = exp.find_max_load(&mut || Box::new(StaticPolicy::smem_all()), &opts);
    let max_tpp = exp.find_max_load(&mut || Box::new(TppPolicy::new()), &opts);
    // The Fig. 8 ordering: FMEM_ALL > SMEM_ALL > TPP.
    assert!(max_fmem > max_smem, "{max_fmem} vs {max_smem}");
    assert!(max_smem > max_tpp, "{max_smem} vs {max_tpp}");
}

#[test]
fn tpp_is_slower_than_smem_all_for_lc() {
    // The paper's observation: fault-driven promotion makes TPP's LC
    // latency *worse* than simply running from SMem.
    let exp = experiment(LoadPattern::Constant(0.6), 60.0);
    let r_tpp = exp.run(&mut TppPolicy::new());
    let r_smem = exp.run(&mut StaticPolicy::smem_all());
    assert!(
        r_tpp.worst_p99_after(30.0) >= r_smem.worst_p99_after(30.0),
        "tpp {} vs smem {}",
        r_tpp.worst_p99_after(30.0),
        r_smem.worst_p99_after(30.0)
    );
}

#[test]
fn fairness_accounting_is_consistent() {
    let exp = experiment(LoadPattern::Constant(0.5), 60.0);
    let r = exp.run(&mut MemtisPolicy::new());
    let np = r.np();
    assert_eq!(np.len(), 2);
    for v in &np {
        assert!((0.0..=1.05).contains(v), "np {v}");
    }
    let min = np.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!((r.fairness() - min).abs() < 1e-12);
}

#[test]
fn migration_stays_within_engine_bandwidth() {
    let exp = experiment(LoadPattern::fig7(), 120.0);
    let mut mtat = mtat_policy(&exp);
    let r = exp.run(&mut mtat);
    for tick in &r.ticks {
        assert!(
            tick.migration_bw <= exp.cfg.migration_bw * 1.0001,
            "tick at {} used {} B/s",
            tick.t,
            tick.migration_bw
        );
    }
}

#[test]
fn runs_are_deterministic_under_a_seed() {
    let exp = experiment(LoadPattern::Constant(0.7), 40.0);
    let a = exp.run(&mut MemtisPolicy::new());
    let b = exp.run(&mut MemtisPolicy::new());
    assert_eq!(a.lc_requests, b.lc_requests);
    assert_eq!(a.lc_violated_requests, b.lc_violated_requests);
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(x.lc_p99, y.lc_p99);
        assert_eq!(x.fmem_bytes, y.fmem_bytes);
    }
}
