//! Cross-crate property-based tests (proptest): invariants of the core
//! data structures under arbitrary operation sequences.

use proptest::prelude::*;

use mtat::core::ppe::adjust::AdjustmentSchedule;
use mtat::core::ppm::annealing::{anneal, even_split, AnnealingConfig};
use mtat::tiermem::histogram::AccessHistogram;
use mtat::tiermem::memory::{InitialPlacement, MemorySpec, TieredMemory};
use mtat::tiermem::page::{PageId, PageRegion, Tier};
use mtat::workloads::access::{AccessPattern, Popularity};

proptest! {
    /// The tiered page table never loses or double-counts pages, never
    /// overcommits a tier, and residency counters always match a full
    /// recount — under arbitrary interleavings of migrations.
    #[test]
    fn memory_invariants_hold_under_random_migrations(
        ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..200),
    ) {
        let spec = MemorySpec::new(16 << 20, 128 << 20, 1 << 20).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem.register_workload(32 << 20, InitialPlacement::AllSmem).unwrap();
        let b = mem.register_workload(32 << 20, InitialPlacement::FmemFirst).unwrap();
        for (raw, to_fast) in ops {
            let (w, rank) = if raw % 2 == 0 { (a, raw / 2) } else { (b, raw / 2) };
            let page = mem.region(w).page(rank % 32);
            let tier = if to_fast { Tier::FMem } else { Tier::SMem };
            // Capacity or same-tier failures are legal; corruption is not.
            let _ = mem.migrate(page, tier);
            prop_assert!(mem.check_invariants().is_ok());
        }
    }

    /// Histogram bins always agree with counts, the total is exact, and
    /// hottest/coldest queries return pages in count order — under
    /// arbitrary add/age sequences.
    #[test]
    fn histogram_invariants_hold_under_random_updates(
        ops in prop::collection::vec((0u32..48, 0u64..5000, prop::bool::ANY), 1..300),
    ) {
        let region = PageRegion { base: 1000, n_pages: 48 };
        let mut h = AccessHistogram::new(region);
        for (rank, delta, do_age) in ops {
            h.add(PageId(1000 + rank), delta);
            if do_age {
                h.age();
            }
            prop_assert!(h.check_invariants().is_ok());
        }
        // Hottest/coldest queries are bin-ordered (Fig. 4 selects by
        // histogram bin; ordering within a bin is unspecified).
        use mtat::tiermem::histogram::bin_for_count;
        let hottest = h.hottest_matching(5, |_| true);
        for w in hottest.windows(2) {
            prop_assert!(bin_for_count(h.count(w[0])) >= bin_for_count(h.count(w[1])));
        }
        let coldest = h.coldest_matching(5, |_| true);
        for w in coldest.windows(2) {
            prop_assert!(bin_for_count(h.count(w[0])) <= bin_for_count(h.count(w[1])));
        }
    }

    /// Algorithm 3 schedules conserve the requested deltas exactly, no
    /// matter the mix of promotions and demotions or the slice cap.
    #[test]
    fn adjustment_schedule_conserves_deltas(
        lc_delta in -200i64..200,
        be in prop::collection::vec(-200i64..200, 1..6),
        p_max in 1u64..64,
    ) {
        let mut deltas = vec![lc_delta];
        deltas.extend(be);
        let mut schedule = AdjustmentSchedule::new(deltas.clone(), 0, p_max);
        let mut applied = vec![0i64; deltas.len()];
        let mut guard = 0;
        while !schedule.is_complete() {
            let slice = schedule.next_slice(u64::MAX);
            prop_assert!(!slice.is_empty(), "schedule stalled");
            for (i, m) in slice.moves {
                applied[i] += m;
            }
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        prop_assert_eq!(applied, deltas);
    }

    /// Simulated annealing conserves the allocation total and never
    /// returns a worse allocation than its starting point.
    #[test]
    fn annealing_conserves_and_never_regresses(
        total in 1u64..64,
        n in 1usize..6,
        seed in 0u64..1000,
        weights in prop::collection::vec(0.1f64..10.0, 6),
    ) {
        let init = even_split(total, n);
        let score = |alloc: &[u64]| -> f64 {
            alloc
                .iter()
                .zip(&weights)
                .map(|(&u, w)| (u as f64 * w).sqrt())
                .sum()
        };
        let initial_score = score(&init);
        let result = anneal(&init, score, &AnnealingConfig::default(), seed);
        prop_assert_eq!(result.best.iter().sum::<u64>(), total);
        prop_assert!(result.best_score >= initial_score - 1e-12);
    }

    /// Popularity distributions are normalized, sorted hottest-first,
    /// and their prefix queries are consistent with the weights.
    #[test]
    fn popularity_invariants(
        n in 1usize..500,
        exponent in 0.0f64..1.5,
        k in 0usize..600,
    ) {
        let p = Popularity::new(AccessPattern::Zipfian { exponent }, n);
        let total: f64 = p.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for w in p.weights().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-15);
        }
        let frac = p.fraction_top(k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&frac));
        let manual: f64 = p.weights().iter().take(k).sum();
        prop_assert!((frac - manual).abs() < 1e-9);
    }

    /// The M/M/c latency model is monotone: more load or a worse hit
    /// ratio never reduces the P99.
    #[test]
    fn p99_is_monotone_in_load_and_hit_ratio(
        cpu_us in 1.0f64..100.0,
        accesses in 1.0f64..500.0,
        cores in 1usize..16,
        load_frac in 0.05f64..0.95,
        h1 in 0.0f64..1.0,
        h2 in 0.0f64..1.0,
    ) {
        use mtat::tiermem::latency::{p99_response, ServiceModel};
        let m = ServiceModel::with_paper_latencies(cpu_us * 1e-6, accesses);
        let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
        let cap = cores as f64 / m.service_time(lo);
        let load = load_frac * cap;
        // Lower hit ratio -> slower service -> higher P99.
        prop_assert!(
            p99_response(load, m.service_time(lo), cores)
                >= p99_response(load, m.service_time(hi), cores) - 1e-15
        );
        // More load -> higher P99 (same hit ratio).
        prop_assert!(
            p99_response(load, m.service_time(lo), cores)
                >= p99_response(load * 0.5, m.service_time(lo), cores) - 1e-15
        );
    }
}
