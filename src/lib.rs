//! Umbrella crate re-exporting the MTAT reproduction workspace.
pub use mtat_core as core;
pub use mtat_nn as nn;
pub use mtat_rl as rl;
pub use mtat_tiermem as tiermem;
pub use mtat_workloads as workloads;
