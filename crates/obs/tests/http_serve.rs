//! End-to-end tests of the telemetry server over real loopback
//! sockets: every endpoint, the error paths, and the SSE stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mtat_obs::serve::{TelemetryHub, TelemetryServer};

/// Sends `raw` to the server and returns the full response as a string.
fn roundtrip(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).expect("write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read");
    String::from_utf8_lossy(&out).into_owned()
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn served_hub() -> (TelemetryServer, TelemetryHub) {
    let hub = TelemetryHub::new();
    let server = TelemetryServer::bind("127.0.0.1:0", hub.clone()).expect("bind");
    (server, hub)
}

#[test]
fn metrics_endpoint_serves_latest_snapshot() {
    let (server, hub) = served_hub();
    let addr = server.local_addr();
    // Before any publication: 503.
    assert!(get(addr, "/metrics").starts_with("HTTP/1.1 503"));
    hub.publish_metrics("# TYPE mtat_up gauge\nmtat_up 1\n".to_string());
    let resp = get(addr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"));
    assert!(resp.contains("mtat_up 1"));
    // Replacement is atomic: the next scrape sees the new snapshot.
    hub.publish_metrics("mtat_up 2\n".to_string());
    assert!(get(addr, "/metrics").contains("mtat_up 2"));
}

#[test]
fn healthz_reflects_serving_state() {
    let (server, hub) = served_hub();
    let addr = server.local_addr();
    let resp = get(addr, "/healthz");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"state\":\"starting\""));
    hub.publish_health("quarantined", false);
    let resp = get(addr, "/healthz");
    assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
    assert!(resp.contains("\"state\":\"quarantined\""));
    assert!(resp.contains("\"serving\":false"));
}

#[test]
fn status_endpoint_serves_json() {
    let (server, hub) = served_hub();
    let addr = server.local_addr();
    assert!(get(addr, "/status").starts_with("HTTP/1.1 503"));
    hub.publish_status("{\"tick\":42}".to_string());
    let resp = get(addr, "/status");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("application/json"));
    assert!(resp.contains("{\"tick\":42}"));
    // Query strings are routed like the bare path.
    assert!(get(addr, "/status?pretty=1").starts_with("HTTP/1.1 200"));
}

#[test]
fn unknown_path_404s_and_post_405s() {
    let (server, _hub) = served_hub();
    let addr = server.local_addr();
    assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
    let resp = roundtrip(
        addr,
        b"POST /metrics HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    assert!(get(addr, "/").starts_with("HTTP/1.1 200"));
}

#[test]
fn malformed_and_oversized_requests_are_rejected() {
    let (server, _hub) = served_hub();
    let addr = server.local_addr();
    let resp = roundtrip(addr, b"NOT A REQUEST LINE AT ALL\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    let mut huge = Vec::new();
    huge.extend_from_slice(b"GET /");
    huge.extend(std::iter::repeat_n(b'a', 16 * 1024));
    let resp = roundtrip(addr, &huge);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
}

#[test]
fn events_endpoint_streams_sse_frames() {
    let (server, hub) = served_hub();
    let addr = server.local_addr();
    hub.push_event("first event".to_string());
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    s.write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    // Push one more event after subscribing.
    hub.push_event("second\nevent".to_string());
    let mut collected = String::new();
    let mut buf = [0u8; 4096];
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => collected.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(_) => {} // read timeout: check what we have so far
        }
        if collected.contains("id: 2") && collected.contains("data: event") {
            break;
        }
    }
    drop(s);
    assert!(collected.starts_with("HTTP/1.1 200"), "{collected}");
    assert!(collected.contains("text/event-stream"), "{collected}");
    // The ring is replayed from the start (id 1) and tailed (id 2),
    // with multi-line payloads split across data: lines.
    assert!(
        collected.contains("id: 1\ndata: first event\n\n"),
        "{collected}"
    );
    assert!(
        collected.contains("id: 2\ndata: second\ndata: event\n\n"),
        "{collected}"
    );
}

#[test]
fn server_shuts_down_cleanly_and_frees_the_port() {
    let (mut server, hub) = served_hub();
    let addr = server.local_addr();
    hub.publish_metrics("m 1\n".to_string());
    assert!(get(addr, "/metrics").starts_with("HTTP/1.1 200"));
    server.shutdown();
    // Idempotent.
    server.shutdown();
    drop(server);
    // The listener is gone: a fresh bind to the same port succeeds.
    let hub2 = TelemetryHub::new();
    let server2 = TelemetryServer::bind(&addr.to_string(), hub2).expect("rebind");
    drop(server2);
}

#[test]
fn concurrent_scrapes_do_not_interfere() {
    let (server, hub) = served_hub();
    let addr = server.local_addr();
    hub.publish_metrics("mtat_x 7\n".to_string());
    hub.publish_status("{\"ok\":true}".to_string());
    std::thread::scope(|scope| {
        for i in 0..8 {
            scope.spawn(move || {
                let path = if i % 2 == 0 { "/metrics" } else { "/status" };
                for _ in 0..10 {
                    let resp = get(addr, path);
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                }
            });
        }
    });
}
