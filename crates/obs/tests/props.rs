//! Property tests for the observability primitives (satellite of
//! ISSUE 4): histogram quantiles stay within the configured relative
//! error for *arbitrary* sample streams, flight-recorder dumps preserve
//! exact insertion order under wraparound, and the shared bucket math
//! is a consistent index/range bijection over all of `u64`.

use mtat_obs::bucket::{bucket_bounds, bucket_count, exponent_bin, log_linear_index};
use mtat_obs::event::{FlightRecorder, Severity};
use mtat_obs::hist::Histogram;
use proptest::prelude::*;

/// Exact nearest-rank percentile oracle over raw samples.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Full-range `u64` strategy (the vendored proptest stub has no
/// `prop::num::u64::ANY`): raw draws plus forced extremes so the top
/// bucket and the exact region are both exercised.
fn any_u64() -> impl Strategy<Value = u64> {
    (0u64..u64::MAX, 0usize..4).prop_map(|(v, k)| match k {
        0 => v % 256,       // exact linear region
        1 => v,             // anywhere
        2 => v | (1 << 63), // top octave
        _ => u64::MAX,      // absolute extreme
    })
}

/// Mixed-magnitude sample streams crossing several octaves.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u64..u64::MAX, 0usize..3).prop_map(|(v, k)| match k {
            0 => v % 256,
            1 => 1_000 + v % 10_000_000,
            _ => v,
        }),
        1..400,
    )
}

proptest! {
    /// Tentpole accuracy contract: every quantile the histogram reports
    /// is within its advertised relative-error bound of the exact
    /// nearest-rank percentile of the stream.
    #[test]
    fn percentiles_within_relative_error(vals in samples(), bits in 1u32..11) {
        let mut h = Histogram::with_bits(bits);
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let bound = h.relative_error_bound();
        for p in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let exact = exact_percentile(&sorted, p);
            let got = h.percentile(p);
            let err = if exact == 0 {
                got as f64 // zero is in the exact region: must match exactly
            } else {
                (got as f64 - exact as f64).abs() / exact as f64
            };
            prop_assert!(
                err <= bound,
                "p={} got={} exact={} err={} bound={} bits={}",
                p, got, exact, err, bound, bits
            );
        }
    }

    /// min/max/count/mean are exact regardless of bucketing.
    #[test]
    fn scalar_stats_are_exact(vals in samples()) {
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &vals {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.min(), *vals.iter().min().unwrap());
        prop_assert_eq!(h.max(), *vals.iter().max().unwrap());
        let mean = sum as f64 / vals.len() as f64;
        prop_assert!((h.mean() - mean).abs() <= mean.abs() * 1e-12 + 1e-9);
    }

    /// Merging two histograms equals recording the concatenated stream.
    #[test]
    fn merge_equals_concat(a in samples(), b in samples()) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        for p in [25.0, 50.0, 99.0] {
            prop_assert_eq!(ha.percentile(p), hc.percentile(p));
        }
    }

    /// Satellite contract: a flight-recorder dump lists events in exact
    /// insertion order — also under wraparound — keeping only the
    /// newest `cap` and accounting precisely for the dropped prefix.
    #[test]
    fn flight_recorder_order_under_wraparound(cap in 1usize..32, n in 0u64..200) {
        let mut fr = FlightRecorder::new(cap);
        for i in 0..n {
            fr.push(i as f64, "prop", Severity::Debug, "ev", vec![("i", i.to_string())]);
        }
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        let expect_start = n.saturating_sub(cap as u64);
        let expected: Vec<u64> = (expect_start..n).collect();
        prop_assert_eq!(&seqs, &expected);
        prop_assert_eq!(fr.dropped(), expect_start);
        prop_assert_eq!(fr.total_pushed(), n);
        // The rendered dump preserves that order line by line.
        let dump = fr.dump("prop");
        let mut last_pos = 0usize;
        for s in &seqs {
            let needle = format!("#{s:06} ");
            let pos = dump[last_pos..].find(&needle).map(|p| p + last_pos);
            prop_assert!(pos.is_some(), "seq {} missing from dump", s);
            last_pos = pos.unwrap();
        }
    }

    /// Bucket index and bounds form a bijection: every value maps into
    /// a bucket whose range contains it, and both endpoints map back.
    #[test]
    fn bucket_index_bounds_roundtrip(v in any_u64(), bits in 1u32..17) {
        let i = log_linear_index(v, bits);
        prop_assert!(i < bucket_count(bits));
        let (lo, hi) = bucket_bounds(i, bits);
        prop_assert!(lo <= v && v <= hi);
        prop_assert_eq!(log_linear_index(lo, bits), i);
        prop_assert_eq!(log_linear_index(hi, bits), i);
        // Adjacent buckets tile the axis with no gap.
        if hi < u64::MAX {
            prop_assert_eq!(log_linear_index(hi + 1, bits), i + 1);
        }
    }

    /// The shared exponential binning keeps tiermem's contract: zero in
    /// bin 0, count `c > 0` in bin `64 - leading_zeros(c)` clamped.
    #[test]
    fn exponent_bin_contract(c in any_u64()) {
        let bin = exponent_bin(c, 48);
        if c == 0 {
            prop_assert_eq!(bin, 0);
        } else {
            let expected = (64 - c.leading_zeros()) as usize;
            prop_assert_eq!(bin, expected.min(47));
            if bin < 47 {
                // Range check: bin k covers [2^(k-1), 2^k).
                prop_assert!(c >= 1u64 << (bin - 1));
                prop_assert!(c < 1u64 << bin);
            }
        }
    }
}
