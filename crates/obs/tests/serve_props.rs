//! Property tests for the live telemetry plane (ISSUE 10 satellite):
//! the HTTP request parser is a total, bounded function over arbitrary
//! byte streams, and SSE framing round-trips arbitrary payloads.

use mtat_obs::serve::{parse_request, sse_frame, sse_parse, ParseOutcome, MAX_REQUEST_BYTES};
use proptest::prelude::*;

/// Arbitrary byte streams: raw noise, plus streams biased toward
/// HTTP-ish shapes so the parser's accept paths get exercised too.
fn request_bytes() -> impl Strategy<Value = Vec<u8>> {
    (
        prop::collection::vec(0u64..u64::MAX, 0..64),
        0usize..4,
        0u64..u64::MAX,
    )
        .prop_map(|(words, kind, salt)| {
            let noise: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            match kind {
                // Pure noise.
                0 => noise,
                // A plausible request with noisy target.
                1 => {
                    let mut v = b"GET /".to_vec();
                    v.extend_from_slice(&noise[..noise.len().min(32)]);
                    v.extend_from_slice(b" HTTP/1.1\r\n\r\n");
                    v
                }
                // Noise with an embedded terminator.
                2 => {
                    let mut v = noise.clone();
                    let cut = (salt as usize) % (v.len() + 1);
                    v.insert(cut.min(v.len()), b'\n');
                    v.extend_from_slice(b"\r\n\r\n");
                    v
                }
                // Oversized stream.
                _ => {
                    let mut v = noise;
                    let target = MAX_REQUEST_BYTES + (salt as usize % 1024);
                    while v.len() < target {
                        let n = v.len().clamp(1, 4096);
                        let chunk: Vec<u8> = v.iter().take(n).copied().collect();
                        v.extend_from_slice(&chunk);
                        if chunk.is_empty() {
                            v.push(b'A');
                        }
                    }
                    v.truncate(target);
                    v
                }
            }
        })
}

/// Arbitrary UTF-8 payloads for SSE framing, biased toward newline-rich
/// and empty shapes.
fn sse_payload() -> impl Strategy<Value = String> {
    (prop::collection::vec(0u64..u64::MAX, 0..32), 0usize..3).prop_map(|(words, kind)| {
        let mut s = String::new();
        for w in &words {
            for i in 0..8 {
                let b = ((w >> (i * 8)) & 0xff) as u32;
                match kind {
                    0 => s.push(char::from_u32(0x20 + b % 0x5f).unwrap()),
                    1 => {
                        if b.is_multiple_of(7) {
                            s.push('\n');
                        } else {
                            s.push(char::from_u32(0x20 + b % 0x5f).unwrap());
                        }
                    }
                    _ => {
                        // Any scalar value (skip unpaired surrogates).
                        if let Some(c) = char::from_u32(b * 0x1f7 + 1) {
                            s.push(c);
                        }
                    }
                }
            }
        }
        s
    })
}

proptest! {
    /// Total function: any byte stream maps to exactly one outcome
    /// without panicking, and the outcome is stable (pure).
    #[test]
    fn parser_never_panics_and_is_pure(buf in request_bytes()) {
        let a = parse_request(&buf);
        let b = parse_request(&buf);
        prop_assert_eq!(a, b);
    }

    /// Bounded reads: once the buffer reaches the cap, the parser never
    /// answers `Incomplete` — so the server's read loop terminates for
    /// every possible stream.
    #[test]
    fn parser_bounds_reads(buf in request_bytes()) {
        if buf.len() >= MAX_REQUEST_BYTES {
            let out = parse_request(&buf);
            prop_assert!(out != ParseOutcome::Incomplete, "unbounded: {out:?}");
        }
    }

    /// Incremental feeding (the server reads in chunks) agrees with
    /// one-shot parsing: a prefix is never `Request` unless the full
    /// buffer up to that point contains the head.
    #[test]
    fn parser_prefix_monotone(buf in request_bytes(), cut in 0usize..8192) {
        let cut = cut % (buf.len() + 1);
        let prefix = parse_request(&buf[..cut]);
        // A parsed request from a prefix must survive appending bytes
        // (the head is already terminated; later bytes are body).
        if let ParseOutcome::Request { method, target } = prefix {
            match parse_request(&buf) {
                ParseOutcome::Request { method: m2, target: t2 } => {
                    prop_assert_eq!(method, m2);
                    prop_assert_eq!(target, t2);
                }
                other => prop_assert!(false, "request degraded to {other:?}"),
            }
        }
    }

    /// Well-formed GET requests always parse to `Request` with the
    /// exact target echoed back.
    #[test]
    fn well_formed_gets_always_parse(raw_path in prop::collection::vec(0u64..36, 0..64)) {
        let mut path = String::from("/");
        for d in &raw_path {
            path.push(char::from_digit(*d as u32, 36).unwrap());
        }
        let raw = format!("GET {path} HTTP/1.1\r\nHost: h\r\n\r\n");
        match parse_request(raw.as_bytes()) {
            ParseOutcome::Request { method, target } => {
                prop_assert_eq!(method, "GET");
                prop_assert_eq!(target, path);
            }
            other => prop_assert!(false, "expected request, got {other:?}"),
        }
    }

    /// SSE frames round-trip arbitrary ids and payloads.
    #[test]
    fn sse_frame_round_trips(id in 0u64..u64::MAX, data in sse_payload()) {
        let frame = sse_frame(id, &data);
        // Frame shape: terminated by a blank line, every payload line
        // prefixed.
        prop_assert!(frame.ends_with("\n\n"));
        let parsed = sse_parse(&frame);
        prop_assert_eq!(parsed, Some((id, data)));
    }

    /// Keepalive comments interleaved into a frame don't corrupt it.
    #[test]
    fn sse_parse_skips_comments(id in 0u64..1_000_000, raw in prop::collection::vec(0u64..0x5f, 0..64)) {
        let data: String = raw.iter().map(|b| char::from_u32(0x20 + *b as u32).unwrap()).collect();
        let mut frame = String::from(": keepalive\n");
        frame.push_str(&sse_frame(id, &data));
        prop_assert_eq!(sse_parse(&frame), Some((id, data)));
    }
}
