//! SLO burn-rate alerting over sim-time windows.
//!
//! The batch path already *counts* SLO violations
//! (`runner.slo_violations`, `lc_violated_requests`); this module
//! *judges* them the way an on-call rotation would: a multi-window
//! burn-rate rule in the Google SRE mold. The burn rate over a window
//! is the fraction of requests that violated the SLO divided by the
//! error budget — burn 1.0 means "spending the budget exactly at the
//! sustainable rate", burn 10 means "the budget is gone in a tenth of
//! the period". A rule fires only when both a *fast* window (catches
//! the incident quickly) and a *slow* window (rejects blips) exceed the
//! threshold, holds through a pending dwell, and resolves with a dwell
//! of its own so a single good tick can't flap the alert.
//!
//! Everything is computed from **sim time** fed by the runner, never
//! wall clock, so alert transitions — including their timestamps — are
//! bit-identical across replays of a seeded experiment. The engine is
//! an observer: nothing it computes feeds back into simulation physics
//! (same contract as the rest of [`crate`]).

use std::collections::VecDeque;

use crate::export::{json_f64, json_string};

/// Alert lifecycle state: `Inactive → Pending → Firing → Inactive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition not met.
    Inactive,
    /// Condition met, dwell not yet served.
    Pending,
    /// Alert is live (would page).
    Firing,
}

impl AlertState {
    /// Lowercase label for exports and `/status`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One multi-window burn-rate rule.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Rule name (`slo_fast_burn`, ...); becomes the event/metric key.
    pub name: String,
    /// SLO error budget as a violation fraction (e.g. `0.01` = 99%).
    pub budget: f64,
    /// Burn-rate threshold both windows must exceed to fire.
    pub factor: f64,
    /// Fast window length, sim seconds.
    pub fast_secs: f64,
    /// Slow window length, sim seconds (≥ `fast_secs`).
    pub slow_secs: f64,
    /// Dwell above threshold before `Pending` promotes to `Firing`.
    pub pending_secs: f64,
    /// Dwell below the resolve threshold before `Firing` clears.
    pub clear_secs: f64,
    /// Resolve hysteresis: clears when the fast burn stays below
    /// `factor * resolve_ratio` (1.0 = symmetric, 0.5 = sticky).
    pub resolve_ratio: f64,
}

impl AlertRule {
    /// The paging rule: a fast 60 s window gated by a 5 min window,
    /// threshold 6× budget burn, 10 s pending dwell.
    #[must_use]
    pub fn fast_burn(budget: f64) -> Self {
        Self {
            name: "slo_fast_burn".to_string(),
            budget,
            factor: 6.0,
            fast_secs: 60.0,
            slow_secs: 300.0,
            pending_secs: 10.0,
            clear_secs: 30.0,
            resolve_ratio: 1.0,
        }
    }

    /// The ticket rule: 5 min / 30 min windows at 2× budget burn.
    #[must_use]
    pub fn slow_burn(budget: f64) -> Self {
        Self {
            name: "slo_slow_burn".to_string(),
            budget,
            factor: 2.0,
            fast_secs: 300.0,
            slow_secs: 1800.0,
            pending_secs: 60.0,
            clear_secs: 120.0,
            resolve_ratio: 1.0,
        }
    }

    /// The default rule pair for a given budget.
    #[must_use]
    pub fn default_rules(budget: f64) -> Vec<Self> {
        vec![Self::fast_burn(budget), Self::slow_burn(budget)]
    }
}

/// One recorded state change, with the burns that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// Sim time of the transition.
    pub at_secs: f64,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

impl AlertTransition {
    /// One-line JSON record (the alert-log JSONL format).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"at_secs\":{},\"from\":\"{}\",\"to\":\"{}\",\
             \"fast_burn\":{},\"slow_burn\":{}}}",
            json_string(&self.rule),
            json_f64(self.at_secs),
            self.from.label(),
            self.to.label(),
            json_f64(self.fast_burn),
            json_f64(self.slow_burn),
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    t: f64,
    viol: f64,
    total: f64,
}

/// Running sum over a suffix of the shared sample deque. `start` is an
/// absolute sample index (survives front-pops).
#[derive(Debug, Clone, Copy, Default)]
struct WindowSum {
    start: usize,
    viol: f64,
    total: f64,
}

#[derive(Debug, Clone)]
struct RuleState {
    state: AlertState,
    /// Sim time the pending dwell began (while `Pending`).
    pending_since: f64,
    /// Sim time the clear dwell began (while `Firing` and below the
    /// resolve threshold); `None` while still burning.
    clear_since: Option<f64>,
    fast: WindowSum,
    slow: WindowSum,
}

/// The burn-rate engine: feed it per-tick violation counts, read back
/// states and transitions.
///
/// ```
/// use mtat_obs::alert::{AlertRule, AlertState, BurnRateEngine};
///
/// let mut rule = AlertRule::fast_burn(0.01);
/// rule.pending_secs = 0.0;
/// let mut eng = BurnRateEngine::new(vec![rule]);
/// // A hard outage: every request violates.
/// for tick in 0..80 {
///     eng.observe(tick as f64, 100.0, 100.0);
/// }
/// assert_eq!(eng.firing(), vec!["slo_fast_burn"]);
/// assert!(eng.transitions().iter().any(|t| t.to == AlertState::Firing));
/// ```
#[derive(Debug, Clone)]
pub struct BurnRateEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    samples: VecDeque<Sample>,
    /// Absolute index of `samples.front()`.
    base: usize,
    transitions: Vec<AlertTransition>,
}

impl BurnRateEngine {
    /// An engine over the given rules.
    #[must_use]
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState {
                state: AlertState::Inactive,
                pending_since: 0.0,
                clear_since: None,
                fast: WindowSum::default(),
                slow: WindowSum::default(),
            })
            .collect();
        Self {
            rules,
            states,
            samples: VecDeque::new(),
            base: 0,
            transitions: Vec::new(),
        }
    }

    /// Feeds one tick: `viol` of `total` requests violated the SLO in
    /// the tick ending at sim time `now`. Must be called with
    /// non-decreasing `now`.
    pub fn observe(&mut self, now: f64, viol: f64, total: f64) {
        self.samples.push_back(Sample {
            t: now,
            viol,
            total,
        });
        for i in 0..self.rules.len() {
            let (fast_burn, slow_burn) = self.advance_windows(i, now, viol, total);
            self.step_rule(i, now, fast_burn, slow_burn);
        }
        self.trim();
    }

    /// Adds the new sample to rule `i`'s windows, expires old samples,
    /// and returns the current (fast, slow) burn rates.
    fn advance_windows(&mut self, i: usize, now: f64, viol: f64, total: f64) -> (f64, f64) {
        let rule = &self.rules[i];
        let (budget, fast_secs, slow_secs) = (rule.budget, rule.fast_secs, rule.slow_secs);
        let st = &mut self.states[i];
        st.fast.viol += viol;
        st.fast.total += total;
        st.slow.viol += viol;
        st.slow.total += total;
        let base = self.base;
        let expire = |w: &mut WindowSum, horizon: f64, samples: &VecDeque<Sample>| {
            while let Some(s) = samples.get(w.start - base) {
                if s.t <= now - horizon {
                    w.viol -= s.viol;
                    w.total -= s.total;
                    w.start += 1;
                } else {
                    break;
                }
            }
        };
        expire(&mut st.fast, fast_secs, &self.samples);
        expire(&mut st.slow, slow_secs, &self.samples);
        let burn = |w: &WindowSum| {
            if w.total <= 0.0 {
                0.0
            } else {
                (w.viol / w.total) / budget
            }
        };
        (burn(&st.fast), burn(&st.slow))
    }

    /// Runs the state machine for rule `i` with fresh burn rates.
    fn step_rule(&mut self, i: usize, now: f64, fast_burn: f64, slow_burn: f64) {
        let rule = &self.rules[i];
        let active = fast_burn >= rule.factor && slow_burn >= rule.factor;
        let cleared = fast_burn < rule.factor * rule.resolve_ratio;
        let (pending_secs, clear_secs) = (rule.pending_secs, rule.clear_secs);
        let st = &mut self.states[i];
        let from = st.state;
        match st.state {
            AlertState::Inactive => {
                if active {
                    st.state = AlertState::Pending;
                    st.pending_since = now;
                    // A zero dwell promotes within the same tick.
                    if pending_secs <= 0.0 {
                        st.state = AlertState::Firing;
                    }
                }
            }
            AlertState::Pending => {
                if !active {
                    st.state = AlertState::Inactive;
                } else if now - st.pending_since >= pending_secs {
                    st.state = AlertState::Firing;
                }
            }
            AlertState::Firing => {
                if cleared {
                    let since = *st.clear_since.get_or_insert(now);
                    if now - since >= clear_secs {
                        st.state = AlertState::Inactive;
                    }
                } else {
                    st.clear_since = None; // relapse: dwell restarts
                }
            }
        }
        if st.state != from {
            st.clear_since = None;
            self.transitions.push(AlertTransition {
                rule: self.rules[i].name.clone(),
                at_secs: now,
                from,
                to: self.states[i].state,
                fast_burn,
                slow_burn,
            });
        }
    }

    /// Drops samples no rule's slow window can still reference.
    fn trim(&mut self) {
        let min_start = self
            .states
            .iter()
            .map(|s| s.fast.start.min(s.slow.start))
            .min()
            .unwrap_or(self.base + self.samples.len());
        while self.base < min_start && self.samples.pop_front().is_some() {
            self.base += 1;
        }
    }

    /// The configured rules.
    #[must_use]
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Current state of every rule, in rule order.
    #[must_use]
    pub fn states(&self) -> Vec<(&str, AlertState)> {
        self.rules
            .iter()
            .zip(&self.states)
            .map(|(r, s)| (r.name.as_str(), s.state))
            .collect()
    }

    /// Names of currently-firing rules, in rule order.
    #[must_use]
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.state == AlertState::Firing)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Every state change so far, in occurrence order.
    #[must_use]
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// The alert log as JSONL (one transition per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.transitions.len() * 96);
        for t in &self.transitions {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(factor: f64, pending: f64, clear: f64) -> AlertRule {
        AlertRule {
            name: "t".to_string(),
            budget: 0.01,
            factor,
            fast_secs: 10.0,
            slow_secs: 30.0,
            pending_secs: pending,
            clear_secs: clear,
            resolve_ratio: 1.0,
        }
    }

    /// Drives `eng` with `viol_frac` violations for `secs` at 1 Hz.
    fn drive(eng: &mut BurnRateEngine, from: f64, secs: f64, viol_frac: f64) -> f64 {
        let mut t = from;
        while t < from + secs {
            t += 1.0;
            eng.observe(t, viol_frac * 100.0, 100.0);
        }
        t
    }

    #[test]
    fn quiet_stream_never_alerts() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 5.0, 5.0)]);
        drive(&mut eng, 0.0, 600.0, 0.0);
        assert!(eng.transitions().is_empty());
        assert!(eng.firing().is_empty());
    }

    #[test]
    fn sustained_burn_fires_after_pending_dwell() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 5.0, 5.0)]);
        // 100% violations: burn = 100x budget, far over factor 6.
        let t = drive(&mut eng, 0.0, 60.0, 1.0);
        assert_eq!(eng.firing(), vec!["t"]);
        let fired = eng
            .transitions()
            .iter()
            .find(|tr| tr.to == AlertState::Firing)
            .expect("must fire");
        assert!(fired.at_secs <= t);
        assert!(fired.fast_burn > 6.0 && fired.slow_burn > 6.0);
        // Pending preceded firing.
        assert_eq!(eng.transitions()[0].to, AlertState::Pending);
        assert!(fired.at_secs - eng.transitions()[0].at_secs >= 5.0);
    }

    #[test]
    fn blip_shorter_than_pending_never_fires() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 20.0, 5.0)]);
        let t = drive(&mut eng, 0.0, 5.0, 1.0);
        // Burn collapses before the pending dwell is served: the fast
        // window (10 s) flushes the 5 s blip quickly.
        drive(&mut eng, t, 120.0, 0.0);
        assert!(eng
            .transitions()
            .iter()
            .all(|tr| tr.to != AlertState::Firing));
        // It did go pending, then returned.
        assert_eq!(
            eng.transitions().first().map(|t| t.to),
            Some(AlertState::Pending)
        );
        assert_eq!(
            eng.transitions().last().map(|t| t.to),
            Some(AlertState::Inactive)
        );
    }

    #[test]
    fn firing_resolves_after_clear_dwell() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 5.0, 10.0)]);
        let t = drive(&mut eng, 0.0, 60.0, 1.0);
        assert_eq!(eng.firing(), vec!["t"]);
        let t = drive(&mut eng, t, 120.0, 0.0);
        assert!(eng.firing().is_empty(), "alert should have resolved");
        let resolved = eng.transitions().last().unwrap();
        assert_eq!(resolved.from, AlertState::Firing);
        assert_eq!(resolved.to, AlertState::Inactive);
        assert!(resolved.at_secs <= t);
    }

    #[test]
    fn resolve_requires_the_full_clear_dwell() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 0.0, 30.0)]);
        let t = drive(&mut eng, 0.0, 60.0, 1.0);
        assert_eq!(eng.firing(), vec!["t"]);
        // Clean for 15 s (fast window empties after 10 s) — clear dwell
        // (30 s) not served yet, still firing.
        let t = drive(&mut eng, t, 15.0, 0.0);
        assert_eq!(eng.firing(), vec!["t"]);
        // Relapse, then the dwell must restart.
        let t = drive(&mut eng, t, 20.0, 1.0);
        let _ = drive(&mut eng, t, 45.0, 0.0);
        assert!(eng.firing().is_empty());
    }

    #[test]
    fn transitions_are_deterministic_across_replays() {
        let run = || {
            let mut eng = BurnRateEngine::new(AlertRule::default_rules(0.01));
            let mut t = 0.0;
            for i in 0..2000u32 {
                t += 0.25;
                // A deterministic viol pattern with two incident bursts.
                let frac = if (300..500).contains(&i) || (1200..1500).contains(&i) {
                    0.8
                } else {
                    0.001
                };
                eng.observe(t, frac * 50.0, 50.0);
            }
            eng.to_jsonl()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty(), "pattern should produce transitions");
    }

    #[test]
    fn empty_window_burn_is_zero() {
        let mut eng = BurnRateEngine::new(vec![rule(0.0, 0.0, 0.0)]);
        eng.observe(1.0, 0.0, 0.0);
        // factor 0 with burn 0: 0 >= 0 fires immediately — degenerate
        // but well-defined; with no requests burn stays 0.
        assert_eq!(eng.states()[0].1, AlertState::Firing);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 5.0, 5.0)]);
        drive(&mut eng, 0.0, 10_000.0, 0.3);
        // Slow window is 30 s at 1 Hz: the deque must stay near that.
        assert!(eng.samples.len() < 64, "deque grew: {}", eng.samples.len());
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let mut eng = BurnRateEngine::new(vec![rule(6.0, 5.0, 5.0)]);
        let t = drive(&mut eng, 0.0, 60.0, 1.0);
        drive(&mut eng, t, 120.0, 0.0);
        for line in eng.to_jsonl().lines() {
            let doc = crate::json::parse(line).expect("valid JSON");
            assert!(doc.get("rule").is_some());
            assert!(doc.get("at_secs").is_some());
        }
    }
}
