//! Log-linear tail-latency histogram with bounded relative error.
//!
//! The paper's claims are all about the *tail* (p99 response latency
//! under co-location, §6), so the workspace needs percentile queries
//! that are cheap to update per tick and accurate at the tail without
//! retaining every sample. [`Histogram`] is an HdrHistogram-style
//! log-linear sketch over `u64` values (nanoseconds, bytes, pages —
//! any magnitude): O(1) record, O(buckets) quantile scan, and a
//! worst-case relative error of `2^-(bits+1)` on every reported
//! quantile (see [`crate::bucket::relative_error_bound`]).
//!
//! Quantiles use the *nearest-rank* definition (`rank = ⌈q·n⌉`), the
//! same convention as `mtat_tiermem::latency::p99_response`'s exact
//! counterpart, so registry snapshots can be cross-checked against
//! exact aggregates in tests and in `chaos_matrix --metrics-out`.

use crate::bucket::{
    bucket_count, bucket_value, log_linear_index, relative_error_bound, DEFAULT_SUB_BUCKET_BITS,
    MAX_SUB_BUCKET_BITS,
};

/// Fixed-resolution log-linear histogram over `u64` values.
///
/// ```
/// use mtat_obs::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// // p50 of 1..=1000 is 500 (nearest rank); well within 0.4% here.
/// let p50 = h.percentile(50.0);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 <= h.relative_error_bound());
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram at the workspace-default resolution
    /// ([`DEFAULT_SUB_BUCKET_BITS`], relative error `< 0.4%`).
    #[must_use]
    pub fn new() -> Self {
        Self::with_bits(DEFAULT_SUB_BUCKET_BITS)
    }

    /// A histogram with `bits` sub-bucket bits (relative error
    /// `2^-(bits+1)`; memory `O(2^bits)`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds
    /// [`MAX_SUB_BUCKET_BITS`](crate::bucket::MAX_SUB_BUCKET_BITS).
    #[must_use]
    pub fn with_bits(bits: u32) -> Self {
        assert!(
            (1..=MAX_SUB_BUCKET_BITS).contains(&bits),
            "sub-bucket bits must be in 1..={MAX_SUB_BUCKET_BITS}, got {bits}"
        );
        Self {
            bits,
            counts: vec![0; bucket_count(bits)],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value in O(1).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[log_linear_index(value, self.bits)] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Total recorded observations.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, exactly (0 when empty).
    #[inline]
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, exactly (0 when empty).
    #[inline]
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Nearest-rank percentile `p` in `[0, 100]`: the representative
    /// value of the bucket holding the `⌈p/100·n⌉`-th smallest sample
    /// (clamped to rank 1). Returns 0 when empty.
    ///
    /// The result is within [`Self::relative_error_bound`] of the exact
    /// nearest-rank percentile of the recorded stream.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                // Clamp the representative into the observed range so
                // single-bucket tails report exact extremes.
                return bucket_value(i, self.bits).clamp(self.min, self.max);
            }
        }
        self.max // unreachable while counts are consistent with total
    }

    /// Median (nearest rank).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile (nearest rank).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile (nearest rank) — the paper's headline metric.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile (nearest rank).
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Worst-case relative error of any quantile this histogram reports.
    #[must_use]
    pub fn relative_error_bound(&self) -> f64 {
        relative_error_bound(self.bits)
    }

    /// Sub-bucket resolution in bits.
    #[must_use]
    pub fn sub_bucket_bits(&self) -> u32 {
        self.bits
    }

    /// Folds another histogram of the same resolution into this one.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bits, other.bits,
            "cannot merge histograms of different resolution"
        );
        if other.total == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile over a raw sample list, the oracle
    /// the sketch is checked against.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn single_value_every_quantile() {
        let mut h = Histogram::new();
        h.record(73_000); // FMem latency in ns
        for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            let got = h.percentile(p);
            let err = (got as f64 - 73_000.0).abs() / 73_000.0;
            assert!(err <= h.relative_error_bound(), "p={p} got={got}");
        }
        assert_eq!(h.min(), 73_000);
        assert_eq!(h.max(), 73_000);
    }

    #[test]
    fn uniform_stream_percentiles_within_bound() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=100_000u64).collect();
        for &v in &samples {
            h.record(v);
        }
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = exact_percentile(&samples, p) as f64;
            let got = h.percentile(p) as f64;
            assert!(
                (got - exact).abs() / exact <= h.relative_error_bound(),
                "p={p} got={got} exact={exact}"
            );
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 5, 5, 900, 900, 1 << 40] {
            a.record(v);
        }
        b.record_n(5, 3);
        b.record_n(900, 2);
        b.record_n(1 << 40, 1);
        b.record_n(77, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record_n(u64::MAX, 3);
        h.record(0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        // p99 lands in the top bucket: within the error bound of max.
        let p99 = h.percentile(99.0);
        let err = (u64::MAX - p99) as f64 / u64::MAX as f64;
        assert!(err <= h.relative_error_bound(), "p99={p99} err={err}");
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 1..=500u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 1..=500u64 {
            b.record(v * 7 + 1);
            c.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    #[should_panic(expected = "different resolution")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = Histogram::with_bits(7);
        let b = Histogram::with_bits(8);
        a.merge(&b);
    }
}
