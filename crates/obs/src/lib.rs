//! # mtat-obs — zero-dependency observability for the MTAT workspace
//!
//! The paper's argument is about *tail* behaviour — MTAT is judged on
//! p99 response latency under co-location (§6) — yet a simulation run
//! that only reports end-of-run aggregates turns every chaos-scenario
//! or audit failure into a rerun-under-a-debugger session. This crate
//! is the common telemetry substrate the runner, PP-E, PP-M, the
//! supervisor, and the fault machinery all emit into:
//!
//! * [`registry::Registry`] — named counters, gauges, and log-linear
//!   HDR-style histograms ([`hist::Histogram`]) with a bounded relative
//!   error on p50/p95/p99/p999 queries; snapshots export to JSON and to
//!   the Prometheus text exposition format ([`export`]).
//! * [`event::FlightRecorder`] — a bounded ring of typed
//!   [`event::Event`] records (sim-time timestamp, component, severity,
//!   key/value payload), dumped automatically by the runner alongside
//!   any audit violation, supervisor ladder transition, PP-M
//!   crash/restore edge, or health-monitor rollback/quarantine/
//!   crash-stop directive (DESIGN.md §4g).
//! * [`Obs`] — the instrumentation facade threaded through every
//!   layer. A disabled handle is a `None` and every call is an early
//!   return past one branch, so the default-off path adds nothing
//!   measurable to `perf_baseline`; an enabled handle shares one
//!   mutex-guarded registry+recorder across clones.
//! * [`span`] — hierarchical phase spans (tick → sample → ppm-plan →
//!   ppe-enforce → migrate, ...) with wall-ns durations and sim-time
//!   anchors, exportable as Chrome trace-event JSON or collapsed
//!   stacks; present only on [`Obs::traced`] handles.
//! * [`provenance`] — per-plan decision provenance chaining interval
//!   stats → supervisor mode → SAC/anneal telemetry → clamps →
//!   enforcement outcome, exported as JSONL and embedded in trace
//!   files.
//! * [`json`] / [`promlint`] — a dependency-free JSON parser and a
//!   promtool-style text-format linter, so `mtat-trace` and the
//!   conformance tests can parse our own exports back.
//! * [`bucket`] — the audited bucket-index arithmetic shared with
//!   `mtat_tiermem::histogram` (one implementation of the bit tricks,
//!   one test suite).
//!
//! Like `mtat-snapshot`, the crate has **zero runtime dependencies** so
//! it can sit below `tiermem` in the dependency graph.
//!
//! ## Enabling
//!
//! Observability follows the `MTAT_OBS` environment variable (mirroring
//! `MTAT_AUDIT`): unset, empty, or `0` means **off** (perf first —
//! instrumentation must be asked for), anything else means on.
//! Harnesses can also bypass the environment entirely by attaching an
//! explicit handle ([`Obs::enabled`] / [`Obs::disabled`]) to an
//! experiment, which is what `chaos_matrix --metrics-out` does to give
//! every matrix cell its own registry. A third axis, `MTAT_TRACE`
//! (same on/off convention), upgrades the handle to [`Obs::traced`]:
//! metrics + events + phase spans + decision provenance.
//!
//! ## Health-subsystem names (emitted by `mtat-core`'s runner)
//!
//! The self-healing runtime (DESIGN.md §4g) reports through the same
//! facade. Counters: `health.incidents` (every incident handed to the
//! monitor), `health.repairs`, `health.rollbacks`,
//! `health.quarantines`, `health.crash_stops`, `runner.sac_poisons`
//! (fault injections, not detections), and `ckpt.skips_unhealthy`
//! (checkpoint captures refused because the policy's health probe
//! failed). Flight-recorder events: `health.incidents` carries the
//! incident kind/detail and the directive chosen; `rollback` carries
//! the restored generation (or `cold`); `checkpoint` gains a
//! `known_good` flag. Rollbacks, quarantines, and crash-stops also
//! trigger an automatic flight-recorder dump.
//!
//! ## Determinism contract
//!
//! Instrumentation must never feed back into simulation physics: an
//! [`Obs`] handle owns no RNG, and nothing read from it influences
//! control decisions. Runs with observability on and off are
//! bit-identical (asserted by `mtat-core`'s integration tests).

pub mod alert;
pub mod bucket;
pub mod env;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod promlint;
pub mod provenance;
pub mod registry;
pub mod serve;
pub mod span;

use std::sync::{Arc, Mutex};

use event::{FlightRecorder, Severity};
use provenance::{EnforceOutcome, PlanProvenance, ProvenanceBook};
use registry::{GaugeMerge, Registry};
use serve::TelemetryHub;
use span::{SpanGuard, Tracer};

/// Returns whether `MTAT_OBS` asks for observability: unset, empty,
/// `"0"`, `"off"`, `"false"`, or `"no"` (case-insensitive) mean off,
/// anything else means on.
///
/// Unlike `MTAT_AUDIT` (default-on under debug), the default here is
/// **off** in every build: telemetry is pull, not push, and the perf
/// smoke test relies on the disabled path being the ambient one.
#[must_use]
pub fn obs_enabled() -> bool {
    env::env_flag("MTAT_OBS").unwrap_or(false)
}

/// Returns whether `MTAT_TRACE` asks for span tracing + decision
/// provenance on top of metrics/events. Same semantics as
/// [`obs_enabled`]: unset, empty, `"0"`, `"off"`, `"false"`, or
/// `"no"` mean off. A set
/// `MTAT_TRACE` implies full observability ([`Obs::from_env`] returns
/// a traced handle regardless of `MTAT_OBS`).
#[must_use]
pub fn trace_enabled() -> bool {
    env::env_flag("MTAT_TRACE").unwrap_or(false)
}

#[derive(Debug)]
struct ObsInner {
    registry: Mutex<Registry>,
    recorder: Mutex<FlightRecorder>,
    /// Most recent flight-recorder dump, kept so harnesses and tests
    /// can retrieve the post-mortem after the failing call returned.
    last_dump: Mutex<Option<String>>,
    /// Span tracer — present only on traced handles ([`Obs::traced`]),
    /// so a plain enabled handle pays nothing for the tracing axis.
    tracer: Option<Mutex<Tracer>>,
    /// Decision-provenance book — rides the same axis as the tracer.
    provenance: Option<Mutex<ProvenanceBook>>,
    /// Live telemetry hub; when attached ([`Obs::attach_hub`]) every
    /// [`Obs::event`] also lands in the hub's SSE ring.
    hub: Mutex<Option<TelemetryHub>>,
}

/// Cheap, cloneable instrumentation handle.
///
/// A disabled handle (the [`Default`]) carries no allocation at all;
/// every method is a branch on `None` and returns immediately, which is
/// what keeps always-instrumented hot paths free when `MTAT_OBS` is
/// off. Clones of an enabled handle share one registry and recorder.
///
/// ```
/// use mtat_obs::Obs;
/// use mtat_obs::event::Severity;
///
/// let obs = Obs::enabled();
/// obs.count("runner.ticks", 1);
/// obs.gauge("runner.util", 0.5);
/// obs.observe("runner.lc_p99_ns", 73_000);
/// obs.event(1.0, "runner", Severity::Info, "run_start", &[]);
/// let dump = obs.dump_flight_recorder("demo").unwrap();
/// assert!(dump.contains("runner.run_start"));
/// assert!(obs.snapshot_json().unwrap().contains("runner.ticks"));
///
/// let off = Obs::disabled();
/// off.count("runner.ticks", 1); // no-op
/// assert!(off.snapshot_json().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A no-op handle: every call is an early return.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active handle with a flight recorder of
    /// [`FlightRecorder::DEFAULT_CAPACITY`] events.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_recorder_capacity(FlightRecorder::DEFAULT_CAPACITY)
    }

    /// An active handle with a flight recorder of `cap` events.
    #[must_use]
    pub fn with_recorder_capacity(cap: usize) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                registry: Mutex::new(Registry::new()),
                recorder: Mutex::new(FlightRecorder::new(cap)),
                last_dump: Mutex::new(None),
                tracer: None,
                provenance: None,
                hub: Mutex::new(None),
            })),
        }
    }

    /// A fully-instrumented handle: metrics + events + span tracer +
    /// decision provenance. The tracer stores up to
    /// [`Tracer::DEFAULT_CAPACITY`] completed spans (further
    /// completions are counted, not stored).
    #[must_use]
    pub fn traced() -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                registry: Mutex::new(Registry::new()),
                recorder: Mutex::new(FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)),
                last_dump: Mutex::new(None),
                tracer: Some(Mutex::new(Tracer::new(Tracer::DEFAULT_CAPACITY))),
                provenance: Some(Mutex::new(ProvenanceBook::new())),
                hub: Mutex::new(None),
            })),
        }
    }

    /// Handle per the environment: [`Obs::traced`] when `MTAT_TRACE`
    /// is set (see [`trace_enabled`]), else [`Obs::enabled`] when
    /// `MTAT_OBS` is set, else [`Obs::disabled`].
    #[must_use]
    pub fn from_env() -> Self {
        if trace_enabled() {
            Self::traced()
        } else if obs_enabled() {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// True when this handle records anything. Callers doing non-trivial
    /// work *just to build a metric* (string formatting, summing a
    /// slice) should guard on this; plain `count`/`gauge`/`observe`
    /// calls don't need to.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .counter_add(name, delta);
        }
    }

    /// Sets gauge `name` to `value`.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .gauge_set(name, value);
        }
    }

    /// Sets gauge `name` to `value` with a fleet-merge annotation
    /// ([`GaugeMerge`]) — use for gauges whose cross-shard aggregate is
    /// a sum or a maximum rather than "whichever shard merged last".
    #[inline]
    pub fn gauge_merged(&self, name: &str, value: f64, merge: GaugeMerge) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .gauge_set_merged(name, value, merge);
        }
    }

    /// Attaches a live [`TelemetryHub`]: from now on every
    /// [`Obs::event`] is also pushed (rendered) into the hub's SSE
    /// ring. No-op on a disabled handle. The hub only ever *receives*
    /// copies — nothing is read back, so determinism is unaffected.
    pub fn attach_hub(&self, hub: &TelemetryHub) {
        if let Some(inner) = &self.inner {
            *inner.hub.lock().expect("obs poisoned") = Some(hub.clone());
        }
    }

    /// The attached hub, if any.
    #[must_use]
    pub fn hub(&self) -> Option<TelemetryHub> {
        self.inner
            .as_ref()?
            .hub
            .lock()
            .expect("obs poisoned")
            .clone()
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .observe(name, value);
        }
    }

    /// Records `n` identical observations into histogram `name`.
    #[inline]
    pub fn observe_n(&self, name: &str, value: u64, n: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .observe_n(name, value, n);
        }
    }

    /// Appends an event to the flight recorder. `kv` is cloned only on
    /// the enabled path; callers formatting payloads should still guard
    /// with [`Obs::is_enabled`] to keep the disabled path free.
    pub fn event(
        &self,
        now_secs: f64,
        component: &'static str,
        severity: Severity,
        name: &'static str,
        kv: &[(&'static str, String)],
    ) {
        if let Some(inner) = &self.inner {
            let mut recorder = inner.recorder.lock().expect("obs poisoned");
            recorder.push(now_secs, component, severity, name, kv.to_vec());
            let hub = inner.hub.lock().expect("obs poisoned").clone();
            if let Some(hub) = hub {
                if let Some(e) = recorder.last() {
                    hub.push_event(e.to_string());
                }
            }
        }
    }

    /// Renders a post-mortem dump of the flight recorder, stores it as
    /// [`Obs::last_dump`], bumps the `obs.flight_dumps` counter, and
    /// returns it. `None` when disabled.
    pub fn dump_flight_recorder(&self, reason: &str) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let dump = inner.recorder.lock().expect("obs poisoned").dump(reason);
        inner
            .registry
            .lock()
            .expect("obs poisoned")
            .counter_add("obs.flight_dumps", 1);
        *inner.last_dump.lock().expect("obs poisoned") = Some(dump.clone());
        Some(dump)
    }

    /// The most recent flight-recorder dump, if any.
    #[must_use]
    pub fn last_dump(&self) -> Option<String> {
        self.inner
            .as_ref()?
            .last_dump
            .lock()
            .expect("obs poisoned")
            .clone()
    }

    /// Current counter value (`None` when disabled).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        Some(
            self.inner
                .as_ref()?
                .registry
                .lock()
                .expect("obs poisoned")
                .counter(name),
        )
    }

    /// Current gauge value (`None` when disabled or never set).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()?
            .registry
            .lock()
            .expect("obs poisoned")
            .gauge(name)
    }

    /// Runs `f` against the shared registry (`None` when disabled).
    /// This is the escape hatch for bulk reads — quantile queries,
    /// cross-checks in tests — without cloning the registry.
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        Some(f(&self
            .inner
            .as_ref()?
            .registry
            .lock()
            .expect("obs poisoned")))
    }

    /// JSON snapshot of the registry (`None` when disabled).
    #[must_use]
    pub fn snapshot_json(&self) -> Option<String> {
        self.with_registry(Registry::to_json)
    }

    /// Prometheus text snapshot with `labels` on every sample (`None`
    /// when disabled).
    #[must_use]
    pub fn snapshot_prometheus(&self, labels: &[(&str, &str)]) -> Option<String> {
        self.with_registry(|r| r.to_prometheus(labels))
    }

    // --- span tracing & decision provenance (Obs::traced handles) ---

    fn tracer(&self) -> Option<&Mutex<Tracer>> {
        self.inner.as_ref()?.tracer.as_ref()
    }

    fn book(&self) -> Option<&Mutex<ProvenanceBook>> {
        self.inner.as_ref()?.provenance.as_ref()
    }

    /// True when this handle records spans + provenance. Callers doing
    /// non-trivial work *just to build a provenance record* should
    /// guard on this, like [`Obs::is_enabled`] for events.
    #[inline]
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.tracer().is_some()
    }

    /// Opens a phase span at sim time `now_secs`. `None` (free) when
    /// the handle has no tracer; otherwise the returned guard closes
    /// the span on drop. The guard owns an `Obs` clone, so it never
    /// borrows the instrumented object.
    #[inline]
    #[must_use]
    pub fn span(&self, now_secs: f64, name: &'static str) -> Option<SpanGuard> {
        let id = self
            .tracer()?
            .lock()
            .expect("obs poisoned")
            .begin(now_secs, name, None);
        Some(SpanGuard::new(self.clone(), id))
    }

    /// Like [`Obs::span`] with a per-instance label (e.g. the matrix
    /// cell name); the exporters display it as `name:label`.
    #[must_use]
    pub fn span_labeled(
        &self,
        now_secs: f64,
        name: &'static str,
        label: &str,
    ) -> Option<SpanGuard> {
        let id = self.tracer()?.lock().expect("obs poisoned").begin(
            now_secs,
            name,
            Some(label.to_string()),
        );
        Some(SpanGuard::new(self.clone(), id))
    }

    /// Opens a span inheriting the sim time of the innermost open span
    /// on this thread — for layers without a clock of their own
    /// (`MigrationEngine`, PP-M internals). Falls back to `0.0` when
    /// no span is open.
    #[inline]
    #[must_use]
    pub fn span_here(&self, name: &'static str) -> Option<SpanGuard> {
        let tracer = self.tracer()?;
        let mut t = tracer.lock().expect("obs poisoned");
        let now = t.current_sim_secs().unwrap_or(0.0);
        let id = t.begin(now, name, None);
        drop(t);
        Some(SpanGuard::new(self.clone(), id))
    }

    /// Closes span `id`. Called by [`SpanGuard::drop`]; harness code
    /// should hold guards rather than call this directly.
    pub(crate) fn span_end(&self, id: u64) {
        if let Some(tracer) = self.tracer() {
            tracer.lock().expect("obs poisoned").end(id);
        }
    }

    /// Runs `f` against the tracer (`None` when the handle has none) —
    /// the bulk-read escape hatch for exporters and tests.
    pub fn with_tracer<T>(&self, f: impl FnOnce(&Tracer) -> T) -> Option<T> {
        Some(f(&self.tracer()?.lock().expect("obs poisoned")))
    }

    /// Opens a provenance record for a freshly-decided plan and
    /// returns its sequence number (`None` when not tracing).
    #[must_use]
    pub fn provenance_open(&self, rec: PlanProvenance) -> Option<u64> {
        Some(self.book()?.lock().expect("obs poisoned").open(rec))
    }

    /// Attaches the enforcement outcome observed over the following
    /// interval to provenance record `seq`.
    pub fn provenance_finalize(&self, seq: u64, outcome: EnforceOutcome) {
        if let Some(book) = self.book() {
            book.lock().expect("obs poisoned").finalize(seq, outcome);
        }
    }

    /// All provenance records as JSONL (`None` when not tracing).
    #[must_use]
    pub fn provenance_jsonl(&self) -> Option<String> {
        Some(self.book()?.lock().expect("obs poisoned").to_jsonl())
    }

    /// The full trace document — completed spans plus provenance — as
    /// JSON (`None` when not tracing). This is the file format behind
    /// `--trace-out`, the input of `mtat-trace`:
    ///
    /// ```text
    /// {"version":1,"dropped_spans":N,"spans":[...],"provenance":[...]}
    /// ```
    #[must_use]
    pub fn trace_json(&self) -> Option<String> {
        let tracer = self.tracer()?;
        let mut out = String::from("{\"version\":1,");
        {
            let t = tracer.lock().expect("obs poisoned");
            out.push_str(&format!("\"dropped_spans\":{},\"spans\":[", t.dropped()));
            for (i, s) in t.spans().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&s.to_json());
            }
        }
        out.push_str("],\"provenance\":[");
        if let Some(book) = self.book() {
            let b = book.lock().expect("obs poisoned");
            for (i, r) in b.records().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&r.to_json());
            }
        }
        out.push_str("]}\n");
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.count("c", 1);
        obs.gauge("g", 1.0);
        obs.gauge_merged("gm", 1.0, GaugeMerge::Max);
        obs.observe("h", 1);
        obs.event(0.0, "t", Severity::Error, "e", &[]);
        obs.attach_hub(&TelemetryHub::new());
        assert!(obs.hub().is_none());
        assert_eq!(obs.counter_value("c"), None);
        assert_eq!(obs.gauge_value("g"), None);
        assert_eq!(obs.dump_flight_recorder("x"), None);
        assert_eq!(obs.last_dump(), None);
        assert_eq!(obs.snapshot_json(), None);
        assert_eq!(obs.snapshot_prometheus(&[]), None);
        assert!(obs.with_registry(|_| ()).is_none());
        assert!(!obs.tracing_enabled());
        assert!(obs.span(0.0, "tick").is_none());
        assert!(obs.span_labeled(0.0, "cell", "x").is_none());
        assert!(obs.span_here("migrate").is_none());
        assert!(obs.trace_json().is_none());
        assert!(obs.provenance_jsonl().is_none());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let a = Obs::enabled();
        let b = a.clone();
        a.count("shared", 2);
        b.count("shared", 3);
        assert_eq!(a.counter_value("shared"), Some(5));
        b.event(1.0, "t", Severity::Info, "e", &[]);
        let dump = a.dump_flight_recorder("shared-state").unwrap();
        assert!(dump.contains("t.e"));
        assert_eq!(b.last_dump().unwrap(), dump);
        assert_eq!(a.counter_value("obs.flight_dumps"), Some(1));
    }

    #[test]
    fn attached_hub_tails_events() {
        let obs = Obs::enabled();
        let hub = TelemetryHub::new();
        obs.event(0.5, "runner", Severity::Info, "before_attach", &[]);
        obs.attach_hub(&hub);
        obs.event(
            1.0,
            "runner",
            Severity::Warn,
            "after_attach",
            &[("k", "v".into())],
        );
        let lines = hub.events_after(0, 10);
        assert_eq!(lines.len(), 1, "only post-attach events are tailed");
        assert!(lines[0].1.contains("runner.after_attach"));
        assert!(lines[0].1.contains("k=v"));
        // Metrics/registry reads are unaffected.
        assert!(obs.hub().is_some());
    }

    #[test]
    fn gauge_merged_annotates_registry() {
        let obs = Obs::enabled();
        obs.gauge_merged("bw", 0.4, GaugeMerge::Max);
        assert_eq!(
            obs.with_registry(|r| r.gauge_merge("bw")).unwrap(),
            Some(GaugeMerge::Max)
        );
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = obs.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        o.count("n", 1);
                    }
                });
            }
        });
        assert_eq!(obs.counter_value("n"), Some(4000));
    }

    #[test]
    fn plain_enabled_handle_has_no_tracer() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        assert!(!obs.tracing_enabled());
        assert!(obs.span(0.0, "tick").is_none());
        assert!(obs.span_here("migrate").is_none());
        assert!(obs.with_tracer(|_| ()).is_none());
        assert!(obs.trace_json().is_none());
        assert!(obs.provenance_jsonl().is_none());
    }

    #[test]
    fn traced_spans_nest_and_export() {
        let obs = Obs::traced();
        assert!(obs.tracing_enabled());
        {
            let _tick = obs.span(1.5, "tick");
            {
                // span_here inherits the enclosing span's sim time.
                let _mig = obs.span_here("migrate");
            }
        }
        let spans = obs.with_tracer(|t| t.spans().to_vec()).unwrap();
        assert_eq!(spans.len(), 2);
        let mig = spans.iter().find(|s| s.name == "migrate").unwrap();
        let tick = spans.iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(mig.parent, Some(tick.id));
        assert_eq!(mig.sim_secs.to_bits(), 1.5f64.to_bits());
        // The trace document parses back with our own parser.
        let doc = json::parse(&obs.trace_json().unwrap()).unwrap();
        assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("spans").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn provenance_flows_through_handle() {
        let obs = Obs::traced();
        let rec = provenance::PlanProvenance {
            seq: 0,
            tick: 10,
            now_secs: 1.0,
            usage_ratio: 0.5,
            access_ratio: 0.5,
            access_count_norm: 1.0,
            p99_secs: 1e-4,
            violated: true,
            scenario_phase: 0,
            mode: "heuristic",
            sac: None,
            anneal: None,
            sizer_bytes: 1,
            guard_floor_bytes: 0,
            guard_applied: false,
            fmem_clamped: false,
            lc_bytes: 1,
            be_total_bytes: 2,
            enforce: None,
        };
        let seq = obs.provenance_open(rec).unwrap();
        obs.provenance_finalize(
            seq,
            provenance::EnforceOutcome {
                granted_pages: 5,
                failed_pages: 0,
                retried_pages: 0,
                deferred_pages: 1,
                schedule_done: false,
            },
        );
        let jsonl = obs.provenance_jsonl().unwrap();
        assert!(jsonl.contains("\"granted_pages\":5"));
        assert!(Obs::enabled().provenance_open(jsonl_rec()).is_none());
    }

    fn jsonl_rec() -> provenance::PlanProvenance {
        provenance::PlanProvenance {
            seq: 0,
            tick: 0,
            now_secs: 0.0,
            usage_ratio: 0.0,
            access_ratio: 0.0,
            access_count_norm: 0.0,
            p99_secs: 0.0,
            violated: false,
            scenario_phase: 0,
            mode: "static",
            sac: None,
            anneal: None,
            sizer_bytes: 0,
            guard_floor_bytes: 0,
            guard_applied: false,
            fmem_clamped: false,
            lc_bytes: 0,
            be_total_bytes: 0,
            enforce: None,
        }
    }

    #[test]
    fn snapshots_roundtrip_names() {
        let obs = Obs::enabled();
        obs.observe("lat.ns", 500);
        obs.gauge("util", 0.9);
        let j = obs.snapshot_json().unwrap();
        assert!(j.contains("lat.ns"));
        let p = obs.snapshot_prometheus(&[("cell", "a")]).unwrap();
        assert!(p.contains("mtat_lat_ns"));
        assert!(p.contains("cell=\"a\""));
    }
}
