//! # mtat-obs — zero-dependency observability for the MTAT workspace
//!
//! The paper's argument is about *tail* behaviour — MTAT is judged on
//! p99 response latency under co-location (§6) — yet a simulation run
//! that only reports end-of-run aggregates turns every chaos-scenario
//! or audit failure into a rerun-under-a-debugger session. This crate
//! is the common telemetry substrate the runner, PP-E, PP-M, the
//! supervisor, and the fault machinery all emit into:
//!
//! * [`registry::Registry`] — named counters, gauges, and log-linear
//!   HDR-style histograms ([`hist::Histogram`]) with a bounded relative
//!   error on p50/p95/p99/p999 queries; snapshots export to JSON and to
//!   the Prometheus text exposition format ([`export`]).
//! * [`event::FlightRecorder`] — a bounded ring of typed
//!   [`event::Event`] records (sim-time timestamp, component, severity,
//!   key/value payload), dumped automatically by the runner alongside
//!   any audit violation, supervisor ladder transition, or PP-M
//!   crash/restore edge.
//! * [`Obs`] — the instrumentation facade threaded through every
//!   layer. A disabled handle is a `None` and every call is an early
//!   return past one branch, so the default-off path adds nothing
//!   measurable to `perf_baseline`; an enabled handle shares one
//!   mutex-guarded registry+recorder across clones.
//! * [`bucket`] — the audited bucket-index arithmetic shared with
//!   `mtat_tiermem::histogram` (one implementation of the bit tricks,
//!   one test suite).
//!
//! Like `mtat-snapshot`, the crate has **zero runtime dependencies** so
//! it can sit below `tiermem` in the dependency graph.
//!
//! ## Enabling
//!
//! Observability follows the `MTAT_OBS` environment variable (mirroring
//! `MTAT_AUDIT`): unset, empty, or `0` means **off** (perf first —
//! instrumentation must be asked for), anything else means on.
//! Harnesses can also bypass the environment entirely by attaching an
//! explicit handle ([`Obs::enabled`] / [`Obs::disabled`]) to an
//! experiment, which is what `chaos_matrix --metrics-out` does to give
//! every matrix cell its own registry.
//!
//! ## Determinism contract
//!
//! Instrumentation must never feed back into simulation physics: an
//! [`Obs`] handle owns no RNG, and nothing read from it influences
//! control decisions. Runs with observability on and off are
//! bit-identical (asserted by `mtat-core`'s integration tests).

pub mod bucket;
pub mod event;
pub mod export;
pub mod hist;
pub mod registry;

use std::sync::{Arc, Mutex};

use event::{FlightRecorder, Severity};
use registry::Registry;

/// Returns whether `MTAT_OBS` asks for observability: unset, empty, or
/// `"0"` mean off, anything else means on.
///
/// Unlike `MTAT_AUDIT` (default-on under debug), the default here is
/// **off** in every build: telemetry is pull, not push, and the perf
/// smoke test relies on the disabled path being the ambient one.
#[must_use]
pub fn obs_enabled() -> bool {
    match std::env::var("MTAT_OBS") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

#[derive(Debug)]
struct ObsInner {
    registry: Mutex<Registry>,
    recorder: Mutex<FlightRecorder>,
    /// Most recent flight-recorder dump, kept so harnesses and tests
    /// can retrieve the post-mortem after the failing call returned.
    last_dump: Mutex<Option<String>>,
}

/// Cheap, cloneable instrumentation handle.
///
/// A disabled handle (the [`Default`]) carries no allocation at all;
/// every method is a branch on `None` and returns immediately, which is
/// what keeps always-instrumented hot paths free when `MTAT_OBS` is
/// off. Clones of an enabled handle share one registry and recorder.
///
/// ```
/// use mtat_obs::Obs;
/// use mtat_obs::event::Severity;
///
/// let obs = Obs::enabled();
/// obs.count("runner.ticks", 1);
/// obs.gauge("runner.util", 0.5);
/// obs.observe("runner.lc_p99_ns", 73_000);
/// obs.event(1.0, "runner", Severity::Info, "run_start", &[]);
/// let dump = obs.dump_flight_recorder("demo").unwrap();
/// assert!(dump.contains("runner.run_start"));
/// assert!(obs.snapshot_json().unwrap().contains("runner.ticks"));
///
/// let off = Obs::disabled();
/// off.count("runner.ticks", 1); // no-op
/// assert!(off.snapshot_json().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A no-op handle: every call is an early return.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An active handle with a flight recorder of
    /// [`FlightRecorder::DEFAULT_CAPACITY`] events.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_recorder_capacity(FlightRecorder::DEFAULT_CAPACITY)
    }

    /// An active handle with a flight recorder of `cap` events.
    #[must_use]
    pub fn with_recorder_capacity(cap: usize) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                registry: Mutex::new(Registry::new()),
                recorder: Mutex::new(FlightRecorder::new(cap)),
                last_dump: Mutex::new(None),
            })),
        }
    }

    /// [`Obs::enabled`] or [`Obs::disabled`] according to `MTAT_OBS`
    /// (see [`obs_enabled`]).
    #[must_use]
    pub fn from_env() -> Self {
        if obs_enabled() {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// True when this handle records anything. Callers doing non-trivial
    /// work *just to build a metric* (string formatting, summing a
    /// slice) should guard on this; plain `count`/`gauge`/`observe`
    /// calls don't need to.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name`.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .counter_add(name, delta);
        }
    }

    /// Sets gauge `name` to `value`.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .gauge_set(name, value);
        }
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .observe(name, value);
        }
    }

    /// Records `n` identical observations into histogram `name`.
    #[inline]
    pub fn observe_n(&self, name: &str, value: u64, n: u64) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("obs poisoned")
                .observe_n(name, value, n);
        }
    }

    /// Appends an event to the flight recorder. `kv` is cloned only on
    /// the enabled path; callers formatting payloads should still guard
    /// with [`Obs::is_enabled`] to keep the disabled path free.
    pub fn event(
        &self,
        now_secs: f64,
        component: &'static str,
        severity: Severity,
        name: &'static str,
        kv: &[(&'static str, String)],
    ) {
        if let Some(inner) = &self.inner {
            inner.recorder.lock().expect("obs poisoned").push(
                now_secs,
                component,
                severity,
                name,
                kv.to_vec(),
            );
        }
    }

    /// Renders a post-mortem dump of the flight recorder, stores it as
    /// [`Obs::last_dump`], bumps the `obs.flight_dumps` counter, and
    /// returns it. `None` when disabled.
    pub fn dump_flight_recorder(&self, reason: &str) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let dump = inner.recorder.lock().expect("obs poisoned").dump(reason);
        inner
            .registry
            .lock()
            .expect("obs poisoned")
            .counter_add("obs.flight_dumps", 1);
        *inner.last_dump.lock().expect("obs poisoned") = Some(dump.clone());
        Some(dump)
    }

    /// The most recent flight-recorder dump, if any.
    #[must_use]
    pub fn last_dump(&self) -> Option<String> {
        self.inner
            .as_ref()?
            .last_dump
            .lock()
            .expect("obs poisoned")
            .clone()
    }

    /// Current counter value (`None` when disabled).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        Some(
            self.inner
                .as_ref()?
                .registry
                .lock()
                .expect("obs poisoned")
                .counter(name),
        )
    }

    /// Current gauge value (`None` when disabled or never set).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()?
            .registry
            .lock()
            .expect("obs poisoned")
            .gauge(name)
    }

    /// Runs `f` against the shared registry (`None` when disabled).
    /// This is the escape hatch for bulk reads — quantile queries,
    /// cross-checks in tests — without cloning the registry.
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        Some(f(&self
            .inner
            .as_ref()?
            .registry
            .lock()
            .expect("obs poisoned")))
    }

    /// JSON snapshot of the registry (`None` when disabled).
    #[must_use]
    pub fn snapshot_json(&self) -> Option<String> {
        self.with_registry(Registry::to_json)
    }

    /// Prometheus text snapshot with `labels` on every sample (`None`
    /// when disabled).
    #[must_use]
    pub fn snapshot_prometheus(&self, labels: &[(&str, &str)]) -> Option<String> {
        self.with_registry(|r| r.to_prometheus(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.count("c", 1);
        obs.gauge("g", 1.0);
        obs.observe("h", 1);
        obs.event(0.0, "t", Severity::Error, "e", &[]);
        assert_eq!(obs.counter_value("c"), None);
        assert_eq!(obs.gauge_value("g"), None);
        assert_eq!(obs.dump_flight_recorder("x"), None);
        assert_eq!(obs.last_dump(), None);
        assert_eq!(obs.snapshot_json(), None);
        assert_eq!(obs.snapshot_prometheus(&[]), None);
        assert!(obs.with_registry(|_| ()).is_none());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let a = Obs::enabled();
        let b = a.clone();
        a.count("shared", 2);
        b.count("shared", 3);
        assert_eq!(a.counter_value("shared"), Some(5));
        b.event(1.0, "t", Severity::Info, "e", &[]);
        let dump = a.dump_flight_recorder("shared-state").unwrap();
        assert!(dump.contains("t.e"));
        assert_eq!(b.last_dump().unwrap(), dump);
        assert_eq!(a.counter_value("obs.flight_dumps"), Some(1));
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let obs = Obs::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = obs.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        o.count("n", 1);
                    }
                });
            }
        });
        assert_eq!(obs.counter_value("n"), Some(4000));
    }

    #[test]
    fn snapshots_roundtrip_names() {
        let obs = Obs::enabled();
        obs.observe("lat.ns", 500);
        obs.gauge("util", 0.9);
        let j = obs.snapshot_json().unwrap();
        assert!(j.contains("lat.ns"));
        let p = obs.snapshot_prometheus(&[("cell", "a")]).unwrap();
        assert!(p.contains("mtat_lat_ns"));
        assert!(p.contains("cell=\"a\""));
    }
}
