//! In-tree promtool-style lint and parser for the Prometheus text
//! exposition format.
//!
//! [`registry::Registry::to_prometheus`](crate::registry::Registry)
//! emits this format; these helpers let the conformance tests check,
//! without external tooling, that a scraper would accept it:
//!
//! * [`parse`] — a strict line parser returning every sample with its
//!   unescaped label set, so tests can round-trip values through the
//!   wire format;
//! * [`lint`] — structural checks modelled on `promtool check
//!   metrics`: metric/label name validity, `# HELP`/`# TYPE` ordering
//!   and uniqueness, valid type keywords, counter naming, and
//!   no interleaving of metric families.

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Label pairs with escape sequences (`\\`, `\"`, `\n`) decoded.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses a metric name at the start of `s`, returning (name, rest).
fn take_name(s: &str) -> (&str, &str) {
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(s.len());
    (&s[..end], &s[end..])
}

/// A decoded label set.
pub type Labels = Vec<(String, String)>;

/// Parses the `{k="v",...}` label block. Returns (labels, rest) or an
/// error message.
fn take_labels(s: &str) -> Result<(Labels, &str), String> {
    debug_assert!(s.starts_with('{'));
    let mut labels = Vec::new();
    let mut rest = &s[1..];
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let (lname, r) = take_name(rest);
        if lname.is_empty() {
            return Err("empty label name".to_string());
        }
        let r = r
            .strip_prefix('=')
            .ok_or_else(|| format!("label {lname}: expected '='"))?;
        let r = r
            .strip_prefix('"')
            .ok_or_else(|| format!("label {lname}: expected '\"'"))?;
        let mut value = String::new();
        let mut chars = r.char_indices();
        let close = loop {
            let Some((i, c)) = chars.next() else {
                return Err(format!("label {lname}: unterminated value"));
            };
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => return Err(format!("label {lname}: bad escape \\{other}")),
                    None => return Err(format!("label {lname}: truncated escape")),
                },
                '\n' => return Err(format!("label {lname}: raw newline in value")),
                c => value.push(c),
            }
        };
        labels.push((lname.to_string(), value));
        rest = &r[close + 1..];
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        }
    }
}

/// Parses Prometheus text-format `text` into its samples. Comment
/// (`# HELP` / `# TYPE`) and blank lines are validated for shape but
/// not returned.
///
/// # Errors
///
/// Returns `Err` with a 1-based line number and message on the first
/// malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let at = |msg: String| format!("line {lineno}: {msg}");
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment.starts_with("HELP ") || comment.starts_with("TYPE ") {
                let mut parts = comment.splitn(3, ' ');
                let _kw = parts.next();
                let name = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(at(format!("invalid metric name {name:?} in comment")));
                }
                if parts.next().is_none() {
                    return Err(at("HELP/TYPE without a body".to_string()));
                }
            }
            continue;
        }
        let (name, rest) = take_name(line);
        if name.is_empty() || !valid_metric_name(name) {
            return Err(at(format!("invalid metric name {name:?}")));
        }
        let (labels, rest) = if rest.starts_with('{') {
            take_labels(rest).map_err(at)?
        } else {
            (Vec::new(), rest)
        };
        let value_text = rest.trim();
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse::<f64>()
                .map_err(|_| at(format!("bad sample value {v:?}")))?,
        };
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];

/// Maps a sample name to its metric family given the declared types:
/// `x_sum`/`x_count`/`x_bucket` fold into family `x` when `x` is a
/// declared summary or histogram.
fn family_of<'a>(name: &'a str, types: &[(String, String)]) -> &'a str {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types
                .iter()
                .any(|(n, t)| n == base && (t == "summary" || t == "histogram"))
            {
                return base;
            }
        }
    }
    name
}

/// Runs promtool-style structural checks over Prometheus text `text`
/// and returns the list of issues (empty = clean). [`parse`] failures
/// are reported as issues too, so one call covers both.
#[must_use]
pub fn lint(text: &str) -> Vec<String> {
    let mut issues = Vec::new();
    if let Err(e) = parse(text) {
        issues.push(e);
    }

    // First pass: collect HELP/TYPE declarations in order.
    let mut types: Vec<(String, String)> = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let ty = parts.next().unwrap_or("").trim().to_string();
            if !TYPES.contains(&ty.as_str()) {
                issues.push(format!("metric {name}: unknown type {ty:?}"));
            }
            if types.iter().any(|(n, _)| *n == name) {
                issues.push(format!("metric {name}: duplicate # TYPE"));
            }
            if ty == "counter" && !name.ends_with("_total") {
                issues.push(format!("counter {name} should end in _total"));
            }
            types.push((name, ty));
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("").to_string();
            if helps.contains(&name) {
                issues.push(format!("metric {name}: duplicate # HELP"));
            }
            helps.push(name);
        }
    }

    // Second pass: ordering. Within a family the order must be HELP
    // (optional, first), TYPE, then samples, and families must not
    // interleave once another family has started.
    let mut seen_order: Vec<String> = Vec::new();
    let mut family_closed: Vec<String> = Vec::new();
    let mut note = |family: &str, issues: &mut Vec<String>| {
        if let Some(last) = seen_order.last() {
            if last != family {
                if seen_order.iter().any(|f| f == family) {
                    if !family_closed.contains(&family.to_string()) {
                        issues.push(format!("metric family {family} is interleaved"));
                        family_closed.push(family.to_string());
                    }
                    return;
                }
                seen_order.push(family.to_string());
                return;
            }
            return;
        }
        seen_order.push(family.to_string());
    };
    let mut samples_seen: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if samples_seen.iter().any(|s| s == name) {
                issues.push(format!("metric {name}: # HELP after samples"));
            }
            note(name, &mut issues);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap_or("");
            if samples_seen.iter().any(|s| s == name) {
                issues.push(format!("metric {name}: # TYPE after samples"));
            }
            note(name, &mut issues);
        } else if line.starts_with('#') {
            continue;
        } else {
            let (name, _) = take_name(line);
            let family = family_of(name, &types);
            note(family, &mut issues);
            if !samples_seen.iter().any(|s| s == family) {
                samples_seen.push(family.to_string());
            }
        }
    }

    // Label name validity (parse() checks shape, not the name charset).
    if let Ok(samples) = parse(text) {
        for s in &samples {
            for (lname, _) in &s.labels {
                if !valid_label_name(lname) {
                    issues.push(format!("sample {}: invalid label name {lname:?}", s.name));
                }
                if lname.starts_with("__") {
                    issues.push(format!("sample {}: reserved label name {lname:?}", s.name));
                }
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_escaped_labels() {
        let text = "# HELP m_total help\n# TYPE m_total counter\n\
                    m_total{cell=\"a\\\\b\\\"c\\nd\"} 3\nplain 1.5\n";
        let samples = parse(text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].labels[0].1, "a\\b\"c\nd");
        assert_eq!(samples[1].value, 1.5);
        assert!(lint(text).is_empty());
    }

    #[test]
    fn parses_special_values() {
        let samples = parse("a +Inf\nb -Inf\nc NaN\n").unwrap();
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[1].value, f64::NEG_INFINITY);
        assert!(samples[2].value.is_nan());
    }

    #[test]
    fn lint_flags_bad_type_keyword() {
        let issues = lint("# TYPE m widget\nm 1\n");
        assert!(issues.iter().any(|i| i.contains("unknown type")));
    }

    #[test]
    fn lint_flags_type_after_samples() {
        let issues = lint("m 1\n# TYPE m gauge\n");
        assert!(issues.iter().any(|i| i.contains("# TYPE after samples")));
    }

    #[test]
    fn lint_flags_interleaved_families() {
        let issues = lint("a 1\nb 2\na 3\n");
        assert!(issues.iter().any(|i| i.contains("interleaved")));
    }

    #[test]
    fn lint_flags_duplicate_declarations() {
        let issues = lint("# TYPE m gauge\n# TYPE m gauge\nm 1\n");
        assert!(issues.iter().any(|i| i.contains("duplicate # TYPE")));
    }

    #[test]
    fn lint_flags_counter_naming() {
        let issues = lint("# TYPE hits counter\nhits 1\n");
        assert!(issues.iter().any(|i| i.contains("end in _total")));
    }

    #[test]
    fn summary_children_fold_into_family() {
        let text = "# TYPE lat summary\nlat{quantile=\"0.99\"} 5\nlat_sum 10\nlat_count 2\n";
        assert!(lint(text).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("1bad 3\n").is_err());
        assert!(parse("m{x=\"unterminated} 3\n").is_err());
        assert!(parse("m not_a_number\n").is_err());
    }
}
