//! Shared bucket-index arithmetic for every histogram in the workspace.
//!
//! Two binning schemes live here, both audited by the same test suite so
//! the rest of the workspace never re-derives bit tricks:
//!
//! * [`exponent_bin`] — the pure power-of-two binning used by
//!   `mtat_tiermem::histogram` for Fig. 4 hotness histograms (bin `k`
//!   covers `[2^(k-1), 2^k)`; bin 0 is exactly zero).
//! * [`log_linear_index`] / [`bucket_bounds`] — HDR-style log-linear
//!   binning used by [`crate::hist::Histogram`] for tail-latency
//!   percentiles with a *bounded relative error*: each power-of-two
//!   octave is split into `2^bits` equal sub-buckets, so any recorded
//!   value is off from its bucket representative by strictly less than
//!   `2^-(bits+1)` of its magnitude (see [`relative_error_bound`]).
//!
//! All functions are total over `u64` and allocation-free.

/// Sub-bucket resolution used by default across the workspace: 7 bits
/// (128 sub-buckets per octave) bounds the relative quantile error at
/// `2^-8 < 0.4%`, comfortably below run-to-run p99 noise, while keeping
/// a full histogram under 60 KiB.
pub const DEFAULT_SUB_BUCKET_BITS: u32 = 7;

/// Maximum supported sub-bucket resolution. Beyond 16 bits the bucket
/// array would dwarf any cache for no measurable accuracy gain.
pub const MAX_SUB_BUCKET_BITS: u32 = 16;

/// Pure exponential binning: 0 maps to bin 0 and any other count `c`
/// maps to bin `⌈log2(c)⌉ + 1` clamped to `num_bins - 1`, i.e. bin `k`
/// (for `0 < k < num_bins - 1`) covers `[2^(k-1), 2^k)`.
///
/// This is the exact binning contract of
/// `mtat_tiermem::histogram::bin_for_count` (Fig. 4 of the paper groups
/// pages by access-count magnitude); it lives here so the tiermem
/// histogram and the obs histograms share one audited implementation.
///
/// ```
/// use mtat_obs::bucket::exponent_bin;
/// assert_eq!(exponent_bin(0, 48), 0);
/// assert_eq!(exponent_bin(1, 48), 1);
/// assert_eq!(exponent_bin(2, 48), 2);
/// assert_eq!(exponent_bin(3, 48), 2);
/// assert_eq!(exponent_bin(4, 48), 3);
/// assert_eq!(exponent_bin(u64::MAX, 48), 47);
/// ```
#[inline]
#[must_use]
pub fn exponent_bin(count: u64, num_bins: usize) -> usize {
    if count == 0 {
        0
    } else {
        ((64 - count.leading_zeros()) as usize).min(num_bins - 1)
    }
}

/// Number of buckets a log-linear layout with `bits` sub-bucket bits
/// needs to cover all of `u64`.
///
/// Values below `2^(bits+1)` get one exact bucket each; every octave
/// `[2^e, 2^(e+1))` for `e` in `bits+1 ..= 63` contributes `2^bits`
/// sub-buckets.
#[inline]
#[must_use]
pub fn bucket_count(bits: u32) -> usize {
    assert!(
        (1..=MAX_SUB_BUCKET_BITS).contains(&bits),
        "sub-bucket bits must be in 1..={MAX_SUB_BUCKET_BITS}, got {bits}"
    );
    (1usize << (bits + 1)) + (63 - bits as usize) * (1usize << bits)
}

/// Log-linear bucket index of `value` for `bits` sub-bucket bits.
///
/// Values below `2^(bits+1)` are stored exactly (`index == value`).
/// Larger values land in the sub-bucket of their octave selected by the
/// top `bits` bits below the leading one — the classic HdrHistogram
/// layout, computed with two shifts and a `leading_zeros`.
#[inline]
#[must_use]
pub fn log_linear_index(value: u64, bits: u32) -> usize {
    debug_assert!((1..=MAX_SUB_BUCKET_BITS).contains(&bits));
    let linear_max = 1u64 << (bits + 1);
    if value < linear_max {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= bits + 1
        let sub = ((value - (1u64 << exp)) >> (exp - bits)) as usize;
        linear_max as usize + ((exp - (bits + 1)) as usize) * (1usize << bits) + sub
    }
}

/// Inclusive `[lo, hi]` value range of bucket `index` (the inverse of
/// [`log_linear_index`]: every `v` in the range maps back to `index`).
#[inline]
#[must_use]
pub fn bucket_bounds(index: usize, bits: u32) -> (u64, u64) {
    debug_assert!((1..=MAX_SUB_BUCKET_BITS).contains(&bits));
    debug_assert!(index < bucket_count(bits));
    let linear_max = 1usize << (bits + 1);
    if index < linear_max {
        (index as u64, index as u64)
    } else {
        let r = index - linear_max;
        let oct = (r >> bits) as u32;
        let sub = (r & ((1usize << bits) - 1)) as u64;
        let exp = bits + 1 + oct;
        let width = 1u64 << (exp - bits);
        let lo = (1u64 << exp) + sub * width;
        (lo, lo + (width - 1))
    }
}

/// Representative value reported for bucket `index`: the midpoint of
/// its range, so the worst-case quantile error is half a bucket width.
#[inline]
#[must_use]
pub fn bucket_value(index: usize, bits: u32) -> u64 {
    let (lo, hi) = bucket_bounds(index, bits);
    lo + (hi - lo) / 2
}

/// Worst-case relative error of any value reported from a log-linear
/// histogram with `bits` sub-bucket bits: `2^-(bits+1)`.
///
/// Proof sketch: a value `v >= 2^(bits+1)` in octave `e` sits in a
/// bucket of width `2^(e-bits)`; the midpoint is within half that width,
/// and `v >= 2^e`, so the relative error is `< 2^(e-bits-1) / 2^e`.
/// Values below `2^(bits+1)` are exact.
#[inline]
#[must_use]
pub fn relative_error_bound(bits: u32) -> f64 {
    1.0 / (1u64 << (bits + 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_bin_matches_tiermem_contract() {
        // The exact boundary cases asserted by
        // mtat_tiermem::histogram::tests::bin_boundaries_double.
        assert_eq!(exponent_bin(0, 48), 0);
        assert_eq!(exponent_bin(1, 48), 1);
        assert_eq!(exponent_bin(2, 48), 2);
        assert_eq!(exponent_bin(3, 48), 2);
        assert_eq!(exponent_bin(4, 48), 3);
        assert_eq!(exponent_bin(7, 48), 3);
        assert_eq!(exponent_bin(8, 48), 4);
        assert_eq!(exponent_bin(u64::MAX, 48), 47);
    }

    #[test]
    fn exponent_bin_is_monotone() {
        let mut prev = exponent_bin(0, 48);
        for c in 1..10_000u64 {
            let b = exponent_bin(c, 48);
            assert!(b >= prev, "bin regressed at count {c}");
            prev = b;
        }
    }

    #[test]
    fn linear_region_is_exact() {
        for bits in [1, 4, 7] {
            for v in 0..(1u64 << (bits + 1)) {
                let i = log_linear_index(v, bits);
                assert_eq!(i as u64, v);
                assert_eq!(bucket_bounds(i, bits), (v, v));
                assert_eq!(bucket_value(i, bits), v);
            }
        }
    }

    #[test]
    fn bounds_invert_index_at_extremes() {
        for bits in [1, 7, 16] {
            for v in [
                0,
                1,
                (1u64 << (bits + 1)) - 1,
                1u64 << (bits + 1),
                12_345,
                u64::MAX / 3,
                u64::MAX - 1,
                u64::MAX,
            ] {
                let i = log_linear_index(v, bits);
                let (lo, hi) = bucket_bounds(i, bits);
                assert!(lo <= v && v <= hi, "v={v} bits={bits} -> [{lo}, {hi}]");
                // Both endpoints map back to the same bucket.
                assert_eq!(log_linear_index(lo, bits), i);
                assert_eq!(log_linear_index(hi, bits), i);
            }
        }
    }

    #[test]
    fn top_bucket_reaches_u64_max() {
        for bits in [1, 7, 16] {
            let last = bucket_count(bits) - 1;
            assert_eq!(log_linear_index(u64::MAX, bits), last);
            let (_, hi) = bucket_bounds(last, bits);
            assert_eq!(hi, u64::MAX);
        }
    }

    #[test]
    fn representative_respects_relative_error() {
        let bits = DEFAULT_SUB_BUCKET_BITS;
        let bound = relative_error_bound(bits);
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let rep = bucket_value(log_linear_index(v, bits), bits);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= bound, "v={v} rep={rep} err={err} bound={bound}");
            v = v.wrapping_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn default_bits_bucket_count() {
        // 2^8 exact buckets + 56 octaves x 128 sub-buckets.
        assert_eq!(bucket_count(7), 256 + 56 * 128);
        assert!(relative_error_bound(7) < 0.004);
    }

    #[test]
    #[should_panic(expected = "sub-bucket bits")]
    fn zero_bits_rejected() {
        let _ = bucket_count(0);
    }
}
