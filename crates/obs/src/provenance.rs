//! Decision provenance: why each `PartitionPlan` looks the way it does.
//!
//! Every PP-M decision boundary opens one [`PlanProvenance`] record
//! chaining the full causal path of the plan:
//!
//! ```text
//! observed interval stats → supervisor mode → SAC action (α, entropy)
//!   or anneal score/temperature → clamps applied → enforcement outcome
//! ```
//!
//! The record is opened when the plan is decided and **finalized at the
//! next decision boundary**, once PP-E has had a full interval to act
//! on it: the enforcement outcome (granted/failed/retried/deferred
//! pages) is computed from migration-engine counter deltas between the
//! two boundaries. The last record of a run may therefore carry a
//! `null` enforcement outcome.
//!
//! Provenance is telemetry, not state: nothing is ever read back into
//! the simulation, records are excluded from policy checkpoints, and
//! the book is reset on PP-M cold restarts.

use crate::export::json_string;

/// Formats a float for provenance JSON: up to 9 decimals with trailing
/// zeros trimmed (α/entropy need more precision than the 4-decimal
/// metric snapshots), `null` for non-finite values.
#[must_use]
fn jnum(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// RL path of a decision: the raw (unclamped) SAC action plus the
/// agent's temperature and last policy entropy.
#[derive(Debug, Clone, PartialEq)]
pub struct SacTrace {
    pub raw_action: f64,
    pub alpha: f64,
    pub entropy: f64,
}

/// Annealing path of a decision: the BE partitioner's search stats.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealTrace {
    pub iterations: u64,
    pub best_score: f64,
    pub final_temp: f64,
}

/// What PP-E actually did with the plan over the following interval.
#[derive(Debug, Clone, PartialEq)]
pub struct EnforceOutcome {
    pub granted_pages: u64,
    pub failed_pages: u64,
    pub retried_pages: u64,
    pub deferred_pages: u64,
    pub schedule_done: bool,
}

/// One plan's full causal chain. See the module docs for lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProvenance {
    /// Monotonic sequence number, assigned by the book at open.
    pub seq: u64,
    /// Tick index of the decision boundary.
    pub tick: u64,
    /// Simulation time of the decision.
    pub now_secs: f64,
    // --- observed interval stats (PP-M inputs) ---
    pub usage_ratio: f64,
    pub access_ratio: f64,
    pub access_count_norm: f64,
    pub p99_secs: f64,
    pub violated: bool,
    /// Active adversarial-scenario phase id at decision time (0 = no
    /// scenario installed, or its pre-mutation baseline phase).
    pub scenario_phase: u32,
    /// Supervisor-selected sizer mode at decision time.
    pub mode: &'static str,
    /// Present when the LC sizer ran its SAC agent.
    pub sac: Option<SacTrace>,
    /// Present when the BE partitioner ran its annealer.
    pub anneal: Option<AnnealTrace>,
    // --- clamps between raw decision and emitted plan ---
    /// LC target straight out of the sizer, before the SLO guard.
    pub sizer_bytes: u64,
    /// SLO-guard floor in force (0 when no guard is installed).
    pub guard_floor_bytes: u64,
    /// True when the guard floor raised the sizer's target.
    pub guard_applied: bool,
    /// True when the LC target was clamped to total FMem.
    pub fmem_clamped: bool,
    // --- emitted plan ---
    pub lc_bytes: u64,
    pub be_total_bytes: u64,
    /// Filled in at the next boundary; `null` in exports until then.
    pub enforce: Option<EnforceOutcome>,
}

impl PlanProvenance {
    /// One record as a single-line JSON object (the JSONL row shape,
    /// also the element shape of a trace file's `provenance` array).
    #[must_use]
    pub fn to_json(&self) -> String {
        let sac = match &self.sac {
            Some(s) => format!(
                "{{\"raw_action\":{},\"alpha\":{},\"entropy\":{}}}",
                jnum(s.raw_action),
                jnum(s.alpha),
                jnum(s.entropy)
            ),
            None => "null".to_string(),
        };
        let anneal = match &self.anneal {
            Some(a) => format!(
                "{{\"iterations\":{},\"best_score\":{},\"final_temp\":{}}}",
                a.iterations,
                jnum(a.best_score),
                jnum(a.final_temp)
            ),
            None => "null".to_string(),
        };
        let enforce = match &self.enforce {
            Some(e) => format!(
                "{{\"granted_pages\":{},\"failed_pages\":{},\"retried_pages\":{},\
                 \"deferred_pages\":{},\"schedule_done\":{}}}",
                e.granted_pages, e.failed_pages, e.retried_pages, e.deferred_pages, e.schedule_done
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{},\"tick\":{},\"now_secs\":{},\
             \"inputs\":{{\"usage_ratio\":{},\"access_ratio\":{},\"access_count_norm\":{},\
             \"p99_secs\":{},\"violated\":{}}},\
             \"scenario_phase\":{},\"mode\":{},\"sac\":{sac},\"anneal\":{anneal},\
             \"clamps\":{{\"sizer_bytes\":{},\"guard_floor_bytes\":{},\"guard_applied\":{},\
             \"fmem_clamped\":{}}},\
             \"plan\":{{\"lc_bytes\":{},\"be_total_bytes\":{}}},\"enforce\":{enforce}}}",
            self.seq,
            self.tick,
            jnum(self.now_secs),
            jnum(self.usage_ratio),
            jnum(self.access_ratio),
            jnum(self.access_count_norm),
            jnum(self.p99_secs),
            self.violated,
            self.scenario_phase,
            json_string(self.mode),
            self.sizer_bytes,
            self.guard_floor_bytes,
            self.guard_applied,
            self.fmem_clamped,
            self.lc_bytes,
            self.be_total_bytes,
        )
    }
}

/// Append-only store of provenance records, shared (behind the obs
/// mutex) by clones of a traced handle.
#[derive(Debug, Default)]
pub struct ProvenanceBook {
    next_seq: u64,
    records: Vec<PlanProvenance>,
}

impl ProvenanceBook {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `rec`, assigning and returning its sequence number.
    pub fn open(&mut self, mut rec: PlanProvenance) -> u64 {
        self.next_seq += 1;
        rec.seq = self.next_seq;
        self.records.push(rec);
        self.next_seq
    }

    /// Attaches the enforcement outcome to record `seq`. Unknown seqs
    /// (e.g. from before a book reset) are ignored.
    pub fn finalize(&mut self, seq: u64, outcome: EnforceOutcome) {
        if let Some(rec) = self.records.iter_mut().find(|r| r.seq == seq) {
            rec.enforce = Some(outcome);
        }
    }

    #[must_use]
    pub fn records(&self) -> &[PlanProvenance] {
        &self.records
    }

    /// All records as JSONL (one JSON object per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlanProvenance {
        PlanProvenance {
            seq: 0,
            tick: 40,
            now_secs: 4.0,
            usage_ratio: 0.9,
            access_ratio: 0.75,
            access_count_norm: 1.25,
            p99_secs: 7.3e-5,
            violated: false,
            scenario_phase: 0,
            mode: "rl",
            sac: Some(SacTrace {
                raw_action: -1.5e6,
                alpha: 0.2,
                entropy: 1.42,
            }),
            anneal: None,
            sizer_bytes: 1 << 30,
            guard_floor_bytes: 0,
            guard_applied: false,
            fmem_clamped: false,
            lc_bytes: 1 << 30,
            be_total_bytes: 3 << 30,
            enforce: None,
        }
    }

    #[test]
    fn open_assigns_monotonic_seqs() {
        let mut book = ProvenanceBook::new();
        assert_eq!(book.open(sample()), 1);
        assert_eq!(book.open(sample()), 2);
        assert_eq!(book.records()[1].seq, 2);
    }

    #[test]
    fn finalize_attaches_outcome() {
        let mut book = ProvenanceBook::new();
        let seq = book.open(sample());
        book.finalize(
            seq,
            EnforceOutcome {
                granted_pages: 100,
                failed_pages: 2,
                retried_pages: 1,
                deferred_pages: 0,
                schedule_done: true,
            },
        );
        let rec = &book.records()[0];
        assert_eq!(rec.enforce.as_ref().unwrap().granted_pages, 100);
        // Unknown seq: no panic, no effect.
        book.finalize(
            99,
            EnforceOutcome {
                granted_pages: 0,
                failed_pages: 0,
                retried_pages: 0,
                deferred_pages: 0,
                schedule_done: false,
            },
        );
    }

    #[test]
    fn jsonl_has_one_line_per_record_with_null_enforce() {
        let mut book = ProvenanceBook::new();
        book.open(sample());
        book.open(sample());
        let jsonl = book.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().next().unwrap().contains("\"enforce\":null"));
        assert!(jsonl.contains("\"mode\":\"rl\""));
        assert!(jsonl.contains("\"raw_action\":-1500000"));
    }

    #[test]
    fn jnum_trims_and_nulls() {
        assert_eq!(jnum(0.25), "0.25");
        assert_eq!(jnum(2.0), "2");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(7.3e-5), "0.000073");
    }
}
