//! Named-metric registry: counters, gauges, and histograms.
//!
//! A [`Registry`] is a plain single-threaded container (the thread-safe
//! wrapper is [`crate::Obs`]). Names are dotted paths
//! (`"tiermem.migration.granted_pages"`); `BTreeMap` storage keeps
//! exports deterministically ordered, which matters because snapshot
//! files are committed as CI artifacts and diffed across runs.

use std::collections::BTreeMap;

use crate::export::{
    json_f64, json_string, prometheus_f64, prometheus_help_text, prometheus_labels, prometheus_name,
};
use crate::hist::Histogram;

/// How a gauge combines under [`Registry::merge`].
///
/// Counters always add and histograms always union, but a gauge's
/// aggregation depends on what it *means*: a utilization gauge merged
/// last-write-wins across a fleet silently reports whichever shard
/// merged last. The annotation rides with the gauge so the fleet
/// aggregator doesn't need a name-based table of special cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaugeMerge {
    /// Last write wins in merge order (the only pre-annotation
    /// behaviour; still right for point-in-time configuration echoes
    /// that are identical across shards, e.g. `fleet.workers`).
    #[default]
    Last,
    /// Values add (per-shard absolute quantities: planned bytes,
    /// offered load).
    Sum,
    /// The maximum survives (saturation-style signals: bandwidth
    /// utilization, thrash score — "the worst shard" is the question).
    Max,
}

impl GaugeMerge {
    /// Lowercase label for exports and debugging.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GaugeMerge::Last => "last",
            GaugeMerge::Sum => "sum",
            GaugeMerge::Max => "max",
        }
    }
}

/// A gauge value plus its merge annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gauge {
    value: f64,
    merge: GaugeMerge,
}

/// Counters (monotone `u64`), gauges (`f64` last-write-wins), and
/// log-linear histograms, all addressed by dotted name.
///
/// ```
/// use mtat_obs::registry::Registry;
///
/// let mut reg = Registry::new();
/// reg.counter_add("runner.ticks", 3);
/// reg.gauge_set("runner.fmem_bw_util", 0.42);
/// reg.observe("runner.lc_p99_ns", 73_000);
/// assert_eq!(reg.counter("runner.ticks"), 3);
/// assert_eq!(reg.gauge("runner.fmem_bw_util"), Some(0.42));
/// assert!(reg.to_json().contains("\"runner.ticks\": 3"));
/// assert!(reg.to_prometheus(&[]).contains("mtat_runner_ticks_total 3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Current counter value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (last write wins locally). The
    /// merge annotation is preserved if the gauge already carries one.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if let Some(g) = self.gauges.get_mut(name) {
            g.value = value;
        } else {
            self.gauges.insert(
                name.to_string(),
                Gauge {
                    value,
                    merge: GaugeMerge::Last,
                },
            );
        }
    }

    /// Sets gauge `name` to `value` and annotates how it aggregates
    /// under [`Registry::merge`]. Within one registry the set itself is
    /// still last-write-wins — the mode only governs cross-registry
    /// folds.
    pub fn gauge_set_merged(&mut self, name: &str, value: f64, merge: GaugeMerge) {
        if let Some(g) = self.gauges.get_mut(name) {
            g.value = value;
            g.merge = merge;
        } else {
            self.gauges.insert(name.to_string(), Gauge { value, merge });
        }
    }

    /// Current gauge value, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|g| g.value)
    }

    /// Merge annotation of gauge `name`, if it exists.
    #[must_use]
    pub fn gauge_merge(&self, name: &str) -> Option<GaugeMerge> {
        self.gauges.get(name).map(|g| g.merge)
    }

    /// Records `value` into histogram `name`, creating it at the
    /// workspace-default resolution first.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.observe_n(name, value, 1);
    }

    /// Records `n` identical observations into histogram `name`.
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record_n(value, n);
        } else {
            let mut h = Histogram::new();
            h.record_n(value, n);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Read access to histogram `name`, if it exists.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Registered counter names in sorted order.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Registered gauge names in sorted order.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// Registered histogram names in sorted order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.hists.keys().map(String::as_str)
    }

    /// True when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds `other` into `self` — the fleet-aggregation primitive
    /// (one registry per shard, merged in shard order after the run):
    ///
    /// * counters **add** (totals across shards stay totals);
    /// * gauges combine per their [`GaugeMerge`] annotation — `Sum`
    ///   adds, `Max` keeps the maximum, and un-annotated (`Last`)
    ///   gauges stay last-write-wins in merge order, so merging shard
    ///   registries 0..N deterministically leaves shard N−1's value.
    ///   When the two sides disagree on the annotation, the non-`Last`
    ///   one wins (an annotated writer outranks a default one);
    /// * histograms **merge bucket-wise** ([`Histogram::merge`]), so
    ///   fleet-level quantiles come from the union of observations.
    ///
    /// Merging is associative, and commutative except for the
    /// `Last`-gauge order; callers wanting order-independent output
    /// should merge in a canonical (e.g. shard-id) order.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.counter_add(k, *v);
        }
        for (k, g) in &other.gauges {
            match self.gauges.get_mut(k) {
                None => {
                    self.gauges.insert(k.clone(), *g);
                }
                Some(mine) => {
                    if mine.merge == GaugeMerge::Last {
                        mine.merge = g.merge;
                    }
                    match mine.merge {
                        GaugeMerge::Last => mine.value = g.value,
                        GaugeMerge::Sum => mine.value += g.value,
                        GaugeMerge::Max => mine.value = mine.value.max(g.value),
                    }
                }
            }
        }
        for (k, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(k) {
                mine.merge(h);
            } else {
                self.hists.insert(k.clone(), h.clone());
            }
        }
    }

    /// Snapshot as a pretty-printed JSON object with `counters`,
    /// `gauges`, and `histograms` sections; histograms export count,
    /// min/max/mean, and the standard quantile ladder.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(k)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_f64(g.value)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}}}",
                json_string(k),
                h.count(),
                h.min(),
                h.max(),
                json_f64(h.mean()),
                h.p50(),
                h.p95(),
                h.p99(),
                h.p999(),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Snapshot in the Prometheus text exposition format. `labels` are
    /// attached to every sample (e.g. `[("cell", "ppm_crash/mtat_full")]`
    /// to distinguish matrix cells sharing one scrape file). Histograms
    /// export as summaries (quantile ladder + `_sum`/`_count`). Every
    /// family gets a generic `# HELP` line (the registry stores no
    /// per-metric descriptions) followed by its `# TYPE`, in the order
    /// scrapers require; conformance is covered by the
    /// [`crate::promlint`] round-trip tests.
    #[must_use]
    pub fn to_prometheus(&self, labels: &[(&str, &str)]) -> String {
        let sel = prometheus_labels(labels);
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prometheus_name(k);
            let help = prometheus_help_text(k);
            out.push_str(&format!("# HELP {name}_total mtat counter {help}\n"));
            out.push_str(&format!("# TYPE {name}_total counter\n"));
            out.push_str(&format!("{name}_total{sel} {v}\n"));
        }
        for (k, g) in &self.gauges {
            let name = prometheus_name(k);
            let help = prometheus_help_text(k);
            out.push_str(&format!("# HELP {name} mtat gauge {help}\n"));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{sel} {}\n", prometheus_f64(g.value)));
        }
        for (k, h) in &self.hists {
            let name = prometheus_name(k);
            let help = prometheus_help_text(k);
            out.push_str(&format!("# HELP {name} mtat histogram {help}\n"));
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [
                ("0.5", h.p50()),
                ("0.95", h.p95()),
                ("0.99", h.p99()),
                ("0.999", h.p999()),
            ] {
                let mut quantile_labels: Vec<(&str, &str)> = labels.to_vec();
                quantile_labels.push(("quantile", q));
                out.push_str(&format!(
                    "{name}{} {v}\n",
                    prometheus_labels(&quantile_labels)
                ));
            }
            out.push_str(&format!(
                "{name}_sum{sel} {}\n",
                prometheus_f64(h.mean() * h.count() as f64)
            ));
            out.push_str(&format!("{name}_count{sel} {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 1.0);
        r.gauge_set("g", -2.5);
        assert_eq!(r.gauge("g"), Some(-2.5));
    }

    #[test]
    fn histograms_autocreate() {
        let mut r = Registry::new();
        r.observe("h", 10);
        r.observe_n("h", 20, 4);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 20);
    }

    #[test]
    fn merge_combines_all_metric_kinds() {
        let mut a = Registry::new();
        a.counter_add("c.shared", 2);
        a.counter_add("c.only_a", 1);
        a.gauge_set("g", 1.0);
        a.observe_n("h.shared", 10, 3);
        let mut b = Registry::new();
        b.counter_add("c.shared", 5);
        b.counter_add("c.only_b", 7);
        b.gauge_set("g", 2.5);
        b.observe_n("h.shared", 40, 2);
        b.observe("h.only_b", 9);

        a.merge(&b);
        assert_eq!(a.counter("c.shared"), 7);
        assert_eq!(a.counter("c.only_a"), 1);
        assert_eq!(a.counter("c.only_b"), 7);
        // Gauges: last write (the merged-in registry) wins.
        assert_eq!(a.gauge("g"), Some(2.5));
        let h = a.histogram("h.shared").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert_eq!(a.histogram("h.only_b").unwrap().count(), 1);
        // `b` is untouched.
        assert_eq!(b.counter("c.shared"), 5);
    }

    #[test]
    fn merge_is_associative_on_counters_and_hists() {
        let mk = |seed: u64| {
            let mut r = Registry::new();
            r.counter_add("n", seed);
            r.observe("h", seed * 10 + 1);
            r
        };
        let (x, y, z) = (mk(1), mk(2), mk(3));
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        assert_eq!(left.counter("n"), right.counter("n"));
        assert_eq!(left.to_json(), right.to_json());
    }

    #[test]
    fn json_snapshot_is_well_formed_and_ordered() {
        let mut r = Registry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.gauge_set("mid", f64::NAN);
        r.observe("lat", 100);
        let j = r.to_json();
        // BTreeMap ordering: a.first before z.last.
        let a = j.find("a.first").unwrap();
        let z = j.find("z.last").unwrap();
        assert!(a < z);
        // NaN gauge exports as null, not as bare NaN (invalid JSON).
        assert!(j.contains("\"mid\": null"));
        assert!(j.contains("\"p99\": 100"));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in {j}"
        );
    }

    #[test]
    fn prometheus_snapshot_has_types_and_labels() {
        let mut r = Registry::new();
        r.counter_add("runner.ticks", 7);
        r.gauge_set("util", 0.5);
        r.observe("lat.ns", 1000);
        let p = r.to_prometheus(&[("cell", "x/y")]);
        assert!(p.contains("# TYPE mtat_runner_ticks_total counter"));
        assert!(p.contains("mtat_runner_ticks_total{cell=\"x/y\"} 7"));
        assert!(p.contains("# TYPE mtat_util gauge"));
        assert!(p.contains("mtat_util{cell=\"x/y\"} 0.5"));
        assert!(p.contains("# TYPE mtat_lat_ns summary"));
        assert!(p.contains("mtat_lat_ns{cell=\"x/y\",quantile=\"0.99\"}"));
        assert!(p.contains("mtat_lat_ns_count{cell=\"x/y\"} 1"));
    }

    #[test]
    fn prometheus_without_labels_has_bare_names() {
        let mut r = Registry::new();
        r.counter_add("c", 1);
        let p = r.to_prometheus(&[]);
        assert!(p.contains("mtat_c_total 1\n"));
    }

    /// A registry exercising every metric kind plus hostile label
    /// values and names needing sanitization, including the alerting
    /// and fleet-anomaly families served by the live telemetry plane.
    fn conformance_registry() -> Registry {
        let mut r = Registry::new();
        r.counter_add("runner.ticks", 7);
        r.counter_add("tiermem.migration.granted_pages", 123);
        r.counter_add("alert.transitions", 3);
        r.counter_add("alert.firing", 1);
        r.counter_add("fleet.anomaly.flagged", 8);
        r.gauge_set("mtat.sac_alpha", 0.25);
        r.gauge_set("weird-name with spaces", -1.5);
        r.gauge_set("nan.gauge", f64::NAN);
        r.gauge_set_merged("fleet.anomaly.max_score", 12.5, GaugeMerge::Max);
        r.gauge_set_merged("alert.fast_burn", 4.2, GaugeMerge::Max);
        // A name with every character the HELP escape table covers —
        // scenario-phase interpolation can produce these.
        r.gauge_set("phase \"spike\\drain\"\nrotate", 2.0);
        r.observe_n("runner.lc_p99_ns", 73_000, 10);
        r
    }

    #[test]
    fn hostile_metric_name_keeps_help_single_line() {
        let text = conformance_registry().to_prometheus(&[]);
        // The raw name contains a newline; an unescaped HELP body would
        // split the comment and leave `rotate` at the start of a line.
        assert!(!text.contains("\nrotate"));
        assert!(text.contains("spike\\\\drain"), "backslash not doubled");
        assert!(text.contains("\\nrotate"), "newline not escaped");
        // Still parses and lints cleanly.
        assert!(crate::promlint::parse(&text).is_ok());
        assert!(crate::promlint::lint(&text).is_empty());
    }

    #[test]
    fn gauge_merge_modes_combine_correctly() {
        let mut a = Registry::new();
        a.gauge_set_merged("bw.util", 0.7, GaugeMerge::Max);
        a.gauge_set_merged("load.rps", 100.0, GaugeMerge::Sum);
        a.gauge_set("cfg.workers", 8.0);
        let mut b = Registry::new();
        b.gauge_set_merged("bw.util", 0.4, GaugeMerge::Max);
        b.gauge_set_merged("load.rps", 50.0, GaugeMerge::Sum);
        b.gauge_set("cfg.workers", 8.0);
        a.merge(&b);
        assert_eq!(a.gauge("bw.util"), Some(0.7));
        assert_eq!(a.gauge("load.rps"), Some(150.0));
        assert_eq!(a.gauge("cfg.workers"), Some(8.0));
        assert_eq!(a.gauge_merge("bw.util"), Some(GaugeMerge::Max));
        assert_eq!(a.gauge_merge("load.rps"), Some(GaugeMerge::Sum));
        assert_eq!(a.gauge_merge("cfg.workers"), Some(GaugeMerge::Last));
    }

    #[test]
    fn annotated_side_wins_over_default_last() {
        // One side annotated, the other default: annotation survives in
        // either merge direction.
        let mut plain = Registry::new();
        plain.gauge_set("bw.util", 0.2);
        let mut annotated = Registry::new();
        annotated.gauge_set_merged("bw.util", 0.9, GaugeMerge::Max);
        let mut left = plain.clone();
        left.merge(&annotated);
        assert_eq!(left.gauge("bw.util"), Some(0.9));
        assert_eq!(left.gauge_merge("bw.util"), Some(GaugeMerge::Max));
        let mut right = annotated.clone();
        right.merge(&plain);
        assert_eq!(right.gauge("bw.util"), Some(0.9));
        assert_eq!(right.gauge_merge("bw.util"), Some(GaugeMerge::Max));
    }

    #[test]
    fn sum_and_max_merges_are_commutative_and_associative() {
        let mk = |v: f64| {
            let mut r = Registry::new();
            r.gauge_set_merged("s", v, GaugeMerge::Sum);
            r.gauge_set_merged("m", v, GaugeMerge::Max);
            r
        };
        let (x, y, z) = (mk(1.0), mk(4.0), mk(2.0));
        let mut ab = x.clone();
        ab.merge(&y);
        ab.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut a_bc = x.clone();
        a_bc.merge(&yz);
        assert_eq!(ab.gauge("s"), a_bc.gauge("s"));
        assert_eq!(ab.gauge("m"), a_bc.gauge("m"));
        let mut ba = y.clone();
        ba.merge(&x);
        ba.merge(&z);
        assert_eq!(ab.gauge("s"), ba.gauge("s"));
        assert_eq!(ab.gauge("m"), Some(4.0));
    }

    #[test]
    fn prometheus_export_passes_promlint() {
        let r = conformance_registry();
        for labels in [
            &[][..],
            &[("cell", "fault/mtat_full"), ("quote", "a\"b\\c\nd")][..],
        ] {
            let text = r.to_prometheus(labels);
            let issues = crate::promlint::lint(&text);
            assert!(issues.is_empty(), "promlint issues: {issues:?}\n{text}");
        }
    }

    #[test]
    fn prometheus_help_precedes_type_precedes_samples() {
        let text = conformance_registry().to_prometheus(&[]);
        let help = text.find("# HELP mtat_runner_ticks_total").unwrap();
        let ty = text.find("# TYPE mtat_runner_ticks_total").unwrap();
        let sample = text.find("\nmtat_runner_ticks_total 7").unwrap();
        assert!(help < ty && ty < sample);
    }

    #[test]
    fn prometheus_parse_back_roundtrips_values() {
        let r = conformance_registry();
        let text = r.to_prometheus(&[("cell", "x\"y\\z\nw")]);
        let samples = crate::promlint::parse(&text).expect("export must parse back");
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.iter().all(|(k, _)| k != "quantile"))
                .unwrap_or_else(|| panic!("missing sample {name}"))
        };
        assert_eq!(find("mtat_runner_ticks_total").value, 7.0);
        assert_eq!(find("mtat_mtat_sac_alpha").value, 0.25);
        assert_eq!(find("mtat_weird_name_with_spaces").value, -1.5);
        assert!(find("mtat_nan_gauge").value.is_nan());
        assert_eq!(find("mtat_runner_lc_p99_ns_count").value, 10.0);
        // The hostile label value survives the escape/unescape cycle.
        assert_eq!(find("mtat_runner_ticks_total").labels[0].1, "x\"y\\z\nw");
        // Quantile samples carry both the shared and the quantile label.
        let q99 = samples
            .iter()
            .find(|s| {
                s.name == "mtat_runner_lc_p99_ns"
                    && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.99")
            })
            .unwrap();
        assert_eq!(q99.labels.len(), 2);
    }
}
