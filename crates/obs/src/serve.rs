//! Live telemetry plane: published snapshots + a zero-dependency
//! HTTP/1.1 scrape server.
//!
//! Every exporter in this crate is pull-at-exit; this module makes a
//! *running* experiment observable. The design keeps the determinism
//! contract trivial to argue: the simulation thread **publishes**
//! immutable snapshots (Prometheus text, health, status JSON, event
//! lines) into a [`TelemetryHub`], and the server threads only ever
//! **read** those snapshots. Nothing the server does can reach back
//! into simulation state, and publishing itself reads only values the
//! runner already computed — so a run is bit-identical with serving on
//! or off (asserted by `mtat-core`'s telemetry tests and the
//! `fleet_sim --check --serve` gate).
//!
//! Endpoints (all `GET`, `Connection: close`):
//!
//! * `/metrics` — latest Prometheus text snapshot
//!   ([`crate::registry::Registry::to_prometheus`]).
//! * `/healthz` — health-monitor state; `200` while serving traffic,
//!   `503` once quarantined/crash-stopped.
//! * `/status` — latest status JSON (run progress, scenario phase,
//!   supervisor mode, firing alerts, top-k outlier shards).
//! * `/events` — `text/event-stream` (SSE) tail of the published
//!   event ring; frames carry the hub sequence number as `id:`.
//!
//! The request parser is a pure function over raw bytes
//! ([`parse_request`]) with a hard size cap, property-tested against
//! arbitrary byte streams (`tests/serve_props.rs`): it never panics
//! and never asks for unbounded input.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard cap on the bytes read for one request head. Anything longer is
/// answered `431` and the connection closed.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Events retained for late-joining `/events` subscribers.
pub const EVENT_RING_CAPACITY: usize = 1024;

/// Poll interval for the SSE loop (wall clock; serving is outside the
/// sim-time universe by construction).
const SSE_POLL: Duration = Duration::from_millis(25);

/// SSE keepalive comment cadence, in poll intervals (~2 s).
const SSE_KEEPALIVE_POLLS: u32 = 80;

#[derive(Debug)]
struct EventRing {
    next_seq: u64,
    buf: VecDeque<(u64, String)>,
}

#[derive(Debug)]
struct HubInner {
    metrics: RwLock<Option<String>>,
    /// `(state label, serving)` — `serving == false` maps to `503`.
    health: RwLock<(String, bool)>,
    status: RwLock<Option<String>>,
    events: Mutex<EventRing>,
}

/// Shared snapshot store between one producer (the simulation thread)
/// and any number of HTTP readers. Cheap to clone; clones share state.
///
/// ```
/// use mtat_obs::serve::TelemetryHub;
///
/// let hub = TelemetryHub::new();
/// hub.publish_metrics("mtat_up 1\n".to_string());
/// hub.publish_health("healthy", true);
/// assert_eq!(hub.metrics().as_deref(), Some("mtat_up 1\n"));
/// let seq = hub.push_event("t=1.0s INFO runner.plan".to_string());
/// assert_eq!(hub.events_after(seq - 1, 10), vec![(seq, "t=1.0s INFO runner.plan".to_string())]);
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    inner: Arc<HubInner>,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryHub {
    /// An empty hub: no metrics/status yet, health `("starting", true)`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(HubInner {
                metrics: RwLock::new(None),
                health: RwLock::new(("starting".to_string(), true)),
                status: RwLock::new(None),
                events: Mutex::new(EventRing {
                    next_seq: 1,
                    buf: VecDeque::new(),
                }),
            }),
        }
    }

    /// Atomically replaces the `/metrics` snapshot.
    pub fn publish_metrics(&self, text: String) {
        *self.inner.metrics.write().expect("hub poisoned") = Some(text);
    }

    /// Atomically replaces the `/healthz` view. `serving == false`
    /// makes the endpoint answer `503` (load balancers drain the host).
    pub fn publish_health(&self, label: &str, serving: bool) {
        *self.inner.health.write().expect("hub poisoned") = (label.to_string(), serving);
    }

    /// Atomically replaces the `/status` JSON document.
    pub fn publish_status(&self, json: String) {
        *self.inner.status.write().expect("hub poisoned") = Some(json);
    }

    /// Appends one event line to the ring (oldest dropped past
    /// [`EVENT_RING_CAPACITY`]) and returns its sequence number.
    pub fn push_event(&self, line: String) -> u64 {
        let mut ring = self.inner.events.lock().expect("hub poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == EVENT_RING_CAPACITY {
            ring.buf.pop_front();
        }
        ring.buf.push_back((seq, line));
        seq
    }

    /// Latest `/metrics` snapshot, if one was published.
    #[must_use]
    pub fn metrics(&self) -> Option<String> {
        self.inner.metrics.read().expect("hub poisoned").clone()
    }

    /// Latest health view as `(state label, serving)`.
    #[must_use]
    pub fn health(&self) -> (String, bool) {
        self.inner.health.read().expect("hub poisoned").clone()
    }

    /// Latest `/status` document, if one was published.
    #[must_use]
    pub fn status(&self) -> Option<String> {
        self.inner.status.read().expect("hub poisoned").clone()
    }

    /// Up to `max` retained events with sequence numbers strictly
    /// greater than `after`, oldest first.
    #[must_use]
    pub fn events_after(&self, after: u64, max: usize) -> Vec<(u64, String)> {
        let ring = self.inner.events.lock().expect("hub poisoned");
        ring.buf
            .iter()
            .filter(|(seq, _)| *seq > after)
            .take(max)
            .cloned()
            .collect()
    }

    /// Sequence number of the newest event ever pushed (0 when none).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.inner.events.lock().expect("hub poisoned").next_seq - 1
    }
}

/// Outcome of feeding bytes to the request parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Head not complete yet and under the size cap: read more.
    Incomplete,
    /// Head exceeded [`MAX_REQUEST_BYTES`] — answer `431`.
    TooLarge,
    /// Syntactically broken request line — answer `400`.
    Malformed(&'static str),
    /// A parsed request head.
    Request {
        /// HTTP method, verbatim (`GET`, `HEAD`, ...).
        method: String,
        /// Request target, verbatim (path plus optional query).
        target: String,
    },
}

/// Parses an HTTP/1.1 request head from raw bytes. Total function: any
/// byte string maps to exactly one [`ParseOutcome`], no panics, and
/// `Incomplete` is never returned once `buf` reaches
/// [`MAX_REQUEST_BYTES`] — together those two properties bound the
/// read loop (property-tested in `tests/serve_props.rs`).
#[must_use]
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    // Find the end of the head: CRLFCRLF (tolerating bare LFLF).
    let head_end = find_head_end(buf);
    let Some(end) = head_end else {
        return if buf.len() >= MAX_REQUEST_BYTES {
            ParseOutcome::TooLarge
        } else {
            ParseOutcome::Incomplete
        };
    };
    if end > MAX_REQUEST_BYTES {
        return ParseOutcome::TooLarge;
    }
    let head = &buf[..end];
    let line_end = head
        .iter()
        .position(|&b| b == b'\n')
        .map_or(head.len(), |i| i);
    let line = &head[..line_end];
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let Ok(line) = std::str::from_utf8(line) else {
        return ParseOutcome::Malformed("request line is not UTF-8");
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Malformed("request line needs METHOD TARGET VERSION");
    };
    if parts.next().is_some() {
        return ParseOutcome::Malformed("request line has trailing tokens");
    }
    if !version.starts_with("HTTP/") {
        return ParseOutcome::Malformed("bad HTTP version");
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return ParseOutcome::Malformed("bad method");
    }
    ParseOutcome::Request {
        method: method.to_string(),
        target: target.to_string(),
    }
}

/// Index one past the head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Renders one SSE frame: an `id:` line, `data:` lines (one per input
/// line), and the blank-line terminator. Inverse of [`sse_parse`].
#[must_use]
pub fn sse_frame(id: u64, data: &str) -> String {
    let mut out = format!("id: {id}\n");
    for line in data.split('\n') {
        out.push_str("data: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Parses one SSE frame produced by [`sse_frame`] back into
/// `(id, data)`. Comment lines (leading `:`) are ignored; returns
/// `None` when the frame carries no `id` or no `data`.
#[must_use]
pub fn sse_parse(frame: &str) -> Option<(u64, String)> {
    let mut id = None;
    let mut data: Option<String> = None;
    for line in frame.lines() {
        if let Some(v) = line.strip_prefix("id:") {
            id = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("data:") {
            let v = v.strip_prefix(' ').unwrap_or(v);
            match &mut data {
                None => data = Some(v.to_string()),
                Some(d) => {
                    d.push('\n');
                    d.push_str(v);
                }
            }
        }
    }
    Some((id?, data?))
}

/// The scrape server: one accept thread, one short-lived thread per
/// connection, all reading one [`TelemetryHub`]. Shuts down (and joins
/// the accept thread) on drop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free one)
    /// and starts serving `hub`.
    pub fn bind(addr: &str, hub: TelemetryHub) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("mtat-telemetry".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let hub = hub.clone();
                    let stop = Arc::clone(&stop2);
                    // Connection threads are detached; they hold no
                    // simulation state and exit on their own (bounded
                    // request read, `Connection: close`, and the SSE
                    // loop watches the stop flag).
                    let _ = std::thread::Builder::new()
                        .name("mtat-telemetry-conn".to_string())
                        .spawn(move || handle_connection(stream, &hub, &stop));
                }
            })?;
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the accept loop, and joins it.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, hub: &TelemetryHub, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let (method, target) = loop {
        match parse_request(&buf) {
            ParseOutcome::Incomplete => match stream.read(&mut chunk) {
                Ok(0) => return, // peer closed before a full head
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => return, // timeout or reset
            },
            ParseOutcome::TooLarge => {
                respond(
                    &mut stream,
                    431,
                    "Request Header Fields Too Large",
                    "text/plain; charset=utf-8",
                    "request head exceeds 8 KiB\n",
                );
                lingering_close(&mut stream);
                return;
            }
            ParseOutcome::Malformed(why) => {
                respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain; charset=utf-8",
                    &format!("malformed request: {why}\n"),
                );
                lingering_close(&mut stream);
                return;
            }
            ParseOutcome::Request { method, target } => break (method, target),
        }
    };
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
        return;
    }
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => match hub.metrics() {
            Some(text) => respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &text,
            ),
            None => respond(
                &mut stream,
                503,
                "Service Unavailable",
                "text/plain; charset=utf-8",
                "no metrics published yet\n",
            ),
        },
        "/healthz" => {
            let (label, serving) = hub.health();
            let (code, reason) = if serving {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            let body = format!(
                "{{\"state\":{},\"serving\":{}}}\n",
                crate::export::json_string(&label),
                serving
            );
            respond(&mut stream, code, reason, "application/json", &body);
        }
        "/status" => match hub.status() {
            Some(json) => respond(&mut stream, 200, "OK", "application/json", &json),
            None => respond(
                &mut stream,
                503,
                "Service Unavailable",
                "text/plain; charset=utf-8",
                "no status published yet\n",
            ),
        },
        "/events" => serve_events(&mut stream, hub, stop),
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain; charset=utf-8",
            "mtat telemetry plane: /metrics /healthz /status /events\n",
        ),
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics /healthz /status /events\n",
        ),
    }
}

/// Half-closes the write side and drains (bounded) whatever the client
/// is still sending. Closing with unread input pending would make the
/// kernel send RST, which can destroy the error response before the
/// client reads it.
fn lingering_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 256 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn respond(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Streams the event ring as SSE until the client disconnects or the
/// server stops. Replays the retained ring from the start so a late
/// subscriber still sees recent history.
fn serve_events(stream: &mut TcpStream, hub: &TelemetryHub, stop: &AtomicBool) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut last_seq = 0u64;
    let mut idle_polls = 0u32;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let batch = hub.events_after(last_seq, 64);
        if batch.is_empty() {
            idle_polls += 1;
            if idle_polls >= SSE_KEEPALIVE_POLLS {
                idle_polls = 0;
                if stream.write_all(b": keepalive\n\n").is_err() {
                    return;
                }
                let _ = stream.flush();
            }
            std::thread::sleep(SSE_POLL);
            continue;
        }
        idle_polls = 0;
        let mut out = String::new();
        for (seq, line) in &batch {
            last_seq = *seq;
            out.push_str(&sse_frame(*seq, line));
        }
        if stream.write_all(out.as_bytes()).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_snapshots_replace_atomically() {
        let hub = TelemetryHub::new();
        assert_eq!(hub.metrics(), None);
        assert_eq!(hub.status(), None);
        assert_eq!(hub.health(), ("starting".to_string(), true));
        hub.publish_metrics("a 1\n".into());
        hub.publish_metrics("a 2\n".into());
        assert_eq!(hub.metrics().as_deref(), Some("a 2\n"));
        hub.publish_health("quarantined", false);
        assert_eq!(hub.health(), ("quarantined".to_string(), false));
        hub.publish_status("{}".into());
        assert_eq!(hub.status().as_deref(), Some("{}"));
    }

    #[test]
    fn hub_clones_share_state() {
        let a = TelemetryHub::new();
        let b = a.clone();
        a.publish_status("{\"x\":1}".into());
        assert_eq!(b.status().as_deref(), Some("{\"x\":1}"));
    }

    #[test]
    fn event_ring_drops_oldest_and_filters_by_seq() {
        let hub = TelemetryHub::new();
        for i in 0..(EVENT_RING_CAPACITY + 10) {
            hub.push_event(format!("e{i}"));
        }
        assert_eq!(hub.last_seq(), (EVENT_RING_CAPACITY + 10) as u64);
        let all = hub.events_after(0, usize::MAX);
        assert_eq!(all.len(), EVENT_RING_CAPACITY);
        assert_eq!(all[0].1, "e10"); // 10 oldest dropped
        let tail = hub.events_after(hub.last_seq() - 2, usize::MAX);
        assert_eq!(tail.len(), 2);
        let capped = hub.events_after(0, 3);
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn parse_accepts_plain_get() {
        let out = parse_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(
            out,
            ParseOutcome::Request {
                method: "GET".into(),
                target: "/metrics".into()
            }
        );
        // Bare-LF framing is tolerated.
        let out = parse_request(b"GET / HTTP/1.0\n\n");
        assert!(matches!(out, ParseOutcome::Request { .. }));
    }

    #[test]
    fn parse_flags_incomplete_then_too_large() {
        assert_eq!(parse_request(b"GET /metr"), ParseOutcome::Incomplete);
        let huge = vec![b'A'; MAX_REQUEST_BYTES];
        assert_eq!(parse_request(&huge), ParseOutcome::TooLarge);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            parse_request(b"GARBAGE\r\n\r\n"),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_request(b"GET /x\r\n\r\n"),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_request(b"GET /x NOTHTTP\r\n\r\n"),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_request(b"G@T /x HTTP/1.1\r\n\r\n"),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_request(b"\xff\xfe\xfd /x HTTP/1.1\r\n\r\n"),
            ParseOutcome::Malformed(_)
        ));
    }

    #[test]
    fn sse_round_trips_single_and_multi_line() {
        for data in ["plain", "two\nlines", "", "trailing\n", "a\rb"] {
            let frame = sse_frame(7, data);
            assert_eq!(sse_parse(&frame), Some((7, data.to_string())), "{data:?}");
        }
    }

    #[test]
    fn sse_parse_ignores_comments_and_rejects_empty() {
        assert_eq!(sse_parse(": keepalive\n\n"), None);
        assert_eq!(
            sse_parse(": keepalive\nid: 3\ndata: x\n\n"),
            Some((3, "x".to_string()))
        );
        assert_eq!(sse_parse("data: orphan\n\n"), None);
    }
}
