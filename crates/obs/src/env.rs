//! Shared environment-variable parsing for the workspace's runtime
//! switches.
//!
//! Every `MTAT_*` knob historically rolled its own parse: `MTAT_OBS`
//! and `MTAT_TRACE` accepted `off`/`false`/`no`, `MTAT_AUDIT` only
//! `0`/empty, and `MTAT_BENCH_THREADS` silently ignored garbage. This
//! module is the single vocabulary all of them now share:
//!
//! * **flags** ([`env_flag`]) — `""`, `0`, `off`, `false`, `no` (any
//!   case) mean *off*; `1`, `on`, `true`, `yes` mean *on*; anything
//!   else **warns on stderr** and is treated as *on* (a set variable is
//!   a request for the feature — the warning surfaces the typo instead
//!   of silently flipping the default).
//! * **numbers** ([`env_usize`]) — a trimmed base-10 `usize`; anything
//!   else **warns on stderr** and reads as unset, so the caller's
//!   documented default applies rather than a silent one.
//!
//! Warnings are de-duplicated per `(variable, value)` pair so a harness
//! calling [`env_usize`] once per matrix does not spam the log.
//!
//! The callers, and their defaults when the variable is unset:
//!
//! | variable | parser | unset default |
//! |---|---|---|
//! | `MTAT_OBS` | [`env_flag`] | off |
//! | `MTAT_TRACE` | [`env_flag`] | off |
//! | `MTAT_AUDIT` | [`env_flag`] | on in debug builds, off in release |
//! | `MTAT_BENCH_THREADS` | [`env_usize`] | `available_parallelism` |

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// Warn once per `(name, value)` pair; repeated reads of the same
/// garbage stay quiet.
fn warn_once(name: &str, value: &str, hint: &str) {
    static SEEN: OnceLock<Mutex<BTreeSet<(String, String)>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(BTreeSet::new()));
    if seen
        .lock()
        .expect("env warn set poisoned")
        .insert((name.to_string(), value.to_string()))
    {
        eprintln!("# warning: unrecognized {name}={value:?}; {hint}");
    }
}

/// Parses the boolean switch `name`.
///
/// Returns `None` when the variable is unset (callers apply their own
/// default), `Some(false)` for an explicit negative (empty, `0`,
/// `off`, `false`, `no`, any case), `Some(true)` for an explicit
/// positive (`1`, `on`, `true`, `yes`, any case). Any other value
/// warns on stderr and reads as `Some(true)` — a set variable asks for
/// the feature, and the warning beats a silent default.
#[must_use]
pub fn env_flag(name: &str) -> Option<bool> {
    let v = std::env::var(name).ok()?;
    let t = v.trim();
    if t.is_empty()
        || t == "0"
        || t.eq_ignore_ascii_case("off")
        || t.eq_ignore_ascii_case("false")
        || t.eq_ignore_ascii_case("no")
    {
        return Some(false);
    }
    if t != "1"
        && !t.eq_ignore_ascii_case("on")
        && !t.eq_ignore_ascii_case("true")
        && !t.eq_ignore_ascii_case("yes")
    {
        warn_once(
            name,
            &v,
            "treating as on (use 1/on/true/yes or 0/off/false/no)",
        );
    }
    Some(true)
}

/// Parses the numeric knob `name` as a base-10 `usize`.
///
/// Returns `None` when the variable is unset **or** unparseable; the
/// unparseable case warns on stderr so the caller's documented default
/// applies loudly rather than silently.
#[must_use]
pub fn env_usize(name: &str) -> Option<usize> {
    let v = std::env::var(name).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            warn_once(
                name,
                &v,
                "expected a non-negative integer; using the default",
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global env mutations race with other tests, so every
    // case here uses a variable name unique to this test binary and
    // restores the slate afterwards.

    #[test]
    fn flag_vocabulary() {
        let name = "MTAT_TEST_FLAG_VOCAB";
        assert_eq!(env_flag(name), None);
        for (val, want) in [
            ("", false),
            ("0", false),
            ("off", false),
            ("OFF", false),
            ("False", false),
            ("no", false),
            ("1", true),
            ("on", true),
            ("TRUE", true),
            ("yes", true),
            (" on ", true),
        ] {
            std::env::set_var(name, val);
            assert_eq!(env_flag(name), Some(want), "value {val:?}");
        }
        // Garbage warns but still reads as on.
        std::env::set_var(name, "maybe");
        assert_eq!(env_flag(name), Some(true));
        std::env::remove_var(name);
    }

    #[test]
    fn usize_vocabulary() {
        let name = "MTAT_TEST_USIZE_VOCAB";
        assert_eq!(env_usize(name), None);
        std::env::set_var(name, " 12 ");
        assert_eq!(env_usize(name), Some(12));
        std::env::set_var(name, "0");
        assert_eq!(env_usize(name), Some(0));
        // Garbage warns and reads as unset.
        std::env::set_var(name, "three");
        assert_eq!(env_usize(name), None);
        std::env::set_var(name, "-4");
        assert_eq!(env_usize(name), None);
        std::env::remove_var(name);
    }
}
