//! Structured event stream and bounded flight recorder.
//!
//! Aggregate metrics say *that* a run went wrong; the event stream says
//! *what happened just before*. Components emit typed [`Event`] records
//! (sim-time timestamp, component, severity, key/value payload) into a
//! bounded [`FlightRecorder`] ring buffer. When the runner hits an
//! audit violation, a supervisor ladder transition, or a PP-M
//! crash/restore edge, it dumps the recorder — turning a one-shot
//! failure into a post-mortem without rerunning under a debugger.
//!
//! The recorder is deliberately small and lossy-at-the-front: under
//! wraparound the *oldest* events are dropped and a dump lists the
//! surviving events in exact insertion order (property-tested in
//! `tests/props.rs`).

use std::collections::VecDeque;
use std::fmt;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume trace detail (per-tick migration progress).
    Debug,
    /// Normal control-plane activity (plans, checkpoints).
    Info,
    /// Degraded but handled (crash edges, ladder demotions).
    Warn,
    /// Invariant violations; always accompanied by a dump.
    Error,
}

impl Severity {
    /// Fixed-width uppercase label for dump lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO ",
            Severity::Warn => "WARN ",
            Severity::Error => "ERROR",
        }
    }
}

/// One structured event record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number assigned by the recorder; survives
    /// wraparound, so dumps show how many events were dropped.
    pub seq: u64,
    /// Simulation time in seconds (not wall clock — events must be
    /// reproducible across reruns of a seeded experiment).
    pub now_secs: f64,
    /// Emitting component ("runner", "ppm", "supervisor", ...).
    pub component: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Event name within the component ("plan", "ppm_crash", ...).
    pub name: &'static str,
    /// Free-form key/value payload.
    pub kv: Vec<(&'static str, String)>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:06} t={:9.3}s {} {}.{}",
            self.seq,
            self.now_secs,
            self.severity.label(),
            self.component,
            self.name
        )?;
        for (k, v) in &self.kv {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Bounded ring buffer of the most recent [`Event`]s.
///
/// ```
/// use mtat_obs::event::{FlightRecorder, Severity};
///
/// let mut fr = FlightRecorder::new(2);
/// for i in 0..5u64 {
///     fr.push(i as f64, "demo", Severity::Info, "tick", vec![("i", i.to_string())]);
/// }
/// // Capacity 2: only the last two events survive, oldest first.
/// let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
/// assert_eq!(seqs, [3, 4]);
/// assert_eq!(fr.dropped(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

impl FlightRecorder {
    /// Default recorder depth: enough to cover several policy intervals
    /// of per-tick events around a failure edge.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Creates a recorder holding at most `cap` events (min 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            next_seq: 0,
            dropped: 0,
            buf: VecDeque::with_capacity(cap),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(
        &mut self,
        now_secs: f64,
        component: &'static str,
        severity: Severity,
        name: &'static str,
        kv: Vec<(&'static str, String)>,
    ) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq: self.next_seq,
            now_secs,
            component,
            severity,
            name,
            kv,
        });
        self.next_seq += 1;
    }

    /// Events currently retained, oldest first (exact insertion order).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// The most recently pushed event still retained, if any.
    #[must_use]
    pub fn last(&self) -> Option<&Event> {
        self.buf.back()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted by wraparound since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Renders a post-mortem dump: a header with `reason` and drop
    /// accounting, then every retained event in insertion order.
    #[must_use]
    pub fn dump(&self, reason: &str) -> String {
        let mut out = String::with_capacity(64 + self.buf.len() * 80);
        out.push_str(&format!(
            "=== flight recorder dump: {reason} ({} events retained, {} dropped) ===\n",
            self.buf.len(),
            self.dropped
        ));
        for e in &self.buf {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out.push_str("=== end of dump ===\n");
        out
    }

    /// Clears retained events (drop accounting is preserved).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(fr: &mut FlightRecorder, n: u64) {
        for i in 0..n {
            fr.push(
                i as f64 * 0.5,
                "test",
                Severity::Info,
                "ev",
                vec![("i", i.to_string())],
            );
        }
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn insertion_order_without_wraparound() {
        let mut fr = FlightRecorder::new(10);
        push_n(&mut fr, 4);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3]);
        assert_eq!(fr.dropped(), 0);
        assert_eq!(fr.total_pushed(), 4);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut fr = FlightRecorder::new(3);
        push_n(&mut fr, 10);
        let seqs: Vec<u64> = fr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 7);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        assert_eq!(fr.capacity(), 1);
        push_n(&mut fr, 3);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events().next().unwrap().seq, 2);
    }

    #[test]
    fn dump_contains_reason_events_and_payload() {
        let mut fr = FlightRecorder::new(8);
        fr.push(
            1.25,
            "ppm",
            Severity::Warn,
            "plan",
            vec![("lc_bytes", "1024".to_string())],
        );
        let d = fr.dump("unit-test");
        assert!(d.contains("unit-test"));
        assert!(d.contains("ppm.plan"));
        assert!(d.contains("lc_bytes=1024"));
        assert!(d.contains("WARN"));
        assert!(d.starts_with("=== flight recorder dump"));
        assert!(d.ends_with("=== end of dump ===\n"));
    }

    #[test]
    fn clear_preserves_drop_accounting() {
        let mut fr = FlightRecorder::new(2);
        push_n(&mut fr, 5);
        assert_eq!(fr.dropped(), 3);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 3);
        assert_eq!(fr.total_pushed(), 5);
    }
}
