//! Hierarchical phase spans: wall-clock timing with sim-time anchors.
//!
//! A span is one timed phase of the simulation loop (`tick`, `sample`,
//! `ppm-plan`, `sac-forward`, `ppe-enforce`, `migrate`, ...). Spans nest:
//! each thread keeps a stack of open spans, and a span started while
//! another is open becomes its child. The tracer records, per completed
//! span, the wall-clock start offset and duration in nanoseconds
//! (measured from the tracer's epoch with [`std::time::Instant`]) plus
//! the simulation time at which the span was opened.
//!
//! Wall-clock time is **write-only**: nothing in the simulation ever
//! reads a span back, so tracing cannot perturb physics. The disabled
//! path ([`crate::Obs::span`] on a handle without a tracer) is a branch
//! on `None`, same as every other obs call.
//!
//! Two offline export formats are provided:
//!
//! * [`chrome_trace_json`] — the Chrome trace-event format (complete
//!   `"ph":"X"` events), loadable in Perfetto or `chrome://tracing`;
//! * [`folded_stacks`] — collapsed-stack text (`root;child;leaf N`),
//!   the input format of inferno / `flamegraph.pl`, using *self* time
//!   (duration minus children) in nanoseconds as the sample weight.

use std::collections::{BTreeMap, HashMap};
use std::thread::ThreadId;
use std::time::Instant;

use crate::export::{json_f64, json_string};
use crate::Obs;

/// A completed span, as recorded by the [`Tracer`] and as parsed back
/// from a trace file. `name` is owned so the exporters serve both live
/// tracers (`&'static str` names) and file-parsed spans uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within one tracer (monotonic from 1).
    pub id: u64,
    /// Enclosing span on the same thread at open time, if any.
    pub parent: Option<u64>,
    /// Phase name (`tick`, `ppm-plan`, ...).
    pub name: String,
    /// Optional per-instance label (e.g. the matrix cell name).
    pub label: Option<String>,
    /// Small stable per-thread lane index (Chrome `tid`).
    pub tid: u32,
    /// Simulation time at which the span was opened.
    pub sim_secs: f64,
    /// Wall-clock offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Display name used by both exporters: `name:label` when a label
    /// is present, plain `name` otherwise.
    #[must_use]
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => format!("{}:{}", self.name, l),
            None => self.name.clone(),
        }
    }

    /// One span as a JSON object (the element shape of the `spans`
    /// array in a trace file).
    #[must_use]
    pub fn to_json(&self) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        let label = match &self.label {
            Some(l) => json_string(l),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"parent\":{},\"name\":{},\"label\":{},\"tid\":{},\
             \"sim_secs\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            self.id,
            parent,
            json_string(&self.name),
            label,
            self.tid,
            json_f64(self.sim_secs),
            self.start_ns,
            self.dur_ns,
        )
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    label: Option<String>,
    parent: Option<u64>,
    tid: u32,
    sim_secs: f64,
    start: Instant,
    thread: ThreadId,
}

/// Span recorder shared (behind the obs mutex) by every clone of a
/// traced [`Obs`] handle. Bounded: once `cap` completed spans are held,
/// further completions are counted in [`Tracer::dropped`] instead of
/// stored, so a runaway loop cannot exhaust memory.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    next_id: u64,
    cap: usize,
    dropped: u64,
    done: Vec<SpanRecord>,
    open: HashMap<u64, OpenSpan>,
    /// Per-thread stack of open span ids (innermost last).
    stacks: HashMap<ThreadId, Vec<u64>>,
    /// Small stable lane index per thread, in order of first span.
    tids: HashMap<ThreadId, u32>,
}

impl Tracer {
    /// Default bound on stored completed spans (~1M; a 16-cell chaos
    /// matrix produces ~60k).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            epoch: Instant::now(),
            next_id: 0,
            cap,
            dropped: 0,
            done: Vec::new(),
            open: HashMap::new(),
            stacks: HashMap::new(),
            tids: HashMap::new(),
        }
    }

    /// Opens a span on the calling thread and returns its id. The
    /// enclosing open span on this thread (if any) becomes the parent.
    pub fn begin(&mut self, sim_secs: f64, name: &'static str, label: Option<String>) -> u64 {
        let thread = std::thread::current().id();
        let next_tid = self.tids.len() as u32;
        let tid = *self.tids.entry(thread).or_insert(next_tid);
        let stack = self.stacks.entry(thread).or_default();
        let parent = stack.last().copied();
        self.next_id += 1;
        let id = self.next_id;
        stack.push(id);
        self.open.insert(
            id,
            OpenSpan {
                name,
                label,
                parent,
                tid,
                sim_secs,
                start: Instant::now(),
                thread,
            },
        );
        id
    }

    /// Closes span `id`, recording its duration. Unknown ids (already
    /// closed, or opened on a tracer that has since been replaced) are
    /// ignored.
    pub fn end(&mut self, id: u64) {
        let Some(span) = self.open.remove(&id) else {
            return;
        };
        if let Some(stack) = self.stacks.get_mut(&span.thread) {
            stack.retain(|&s| s != id);
        }
        if self.done.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let start_ns = span.start.duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        self.done.push(SpanRecord {
            id,
            parent: span.parent,
            name: span.name.to_string(),
            label: span.label,
            tid: span.tid,
            sim_secs: span.sim_secs,
            start_ns,
            dur_ns,
        });
    }

    /// Sim time of the innermost open span on the calling thread, if
    /// any — lets leaf layers without a clock (`MigrationEngine`, PP-M
    /// internals) anchor child spans to the enclosing phase's sim time.
    #[must_use]
    pub fn current_sim_secs(&self) -> Option<f64> {
        let thread = std::thread::current().id();
        let id = self.stacks.get(&thread)?.last()?;
        self.open.get(id).map(|s| s.sim_secs)
    }

    /// Completed spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.done
    }

    /// Completions discarded because the store was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A RAII guard that closes its span when dropped. Owns a clone of the
/// [`Obs`] handle (one `Arc` bump, enabled path only) so holding a
/// guard never borrows the instrumented object — `&mut self` methods
/// can run freely while a phase span is open.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    id: u64,
}

impl SpanGuard {
    pub(crate) fn new(obs: Obs, id: u64) -> Self {
        Self { obs, id }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.span_end(self.id);
    }
}

/// Renders spans as a complete Chrome trace-event JSON document
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), one `"ph":"X"`
/// complete event per span. Timestamps and durations are microseconds
/// (the format's unit); `args` carries the sim time and span ids so
/// Perfetto's detail pane links back to the simulation timeline.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"mtat\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{\"sim_secs\":{},\"id\":{},\"parent\":{}}}}}",
            json_string(&s.display_name()),
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            s.tid,
            json_f64(s.sim_secs),
            s.id,
            parent,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Renders spans as collapsed-stack text: one `path;to;leaf weight`
/// line per distinct root→leaf path, where the weight is the
/// aggregated **self** time (duration minus children) in nanoseconds.
/// Lines are sorted by path for deterministic output.
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.dur_ns;
        }
    }
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        // Walk to the root; a parent missing from the slice (dropped or
        // filtered) truncates the path there.
        let mut path = vec![s.display_name()];
        let mut cur = s.parent;
        while let Some(pid) = cur {
            match by_id.get(&pid) {
                Some(p) => {
                    path.push(p.display_name());
                    cur = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        *agg.entry(path.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, ns) in agg {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            label: None,
            tid: 0,
            sim_secs: 0.5,
            start_ns: id * 10,
            dur_ns: dur,
        }
    }

    #[test]
    fn begin_end_nests_on_one_thread() {
        let mut t = Tracer::new(16);
        let a = t.begin(1.0, "tick", None);
        let b = t.begin(1.0, "sample", None);
        assert_eq!(t.current_sim_secs(), Some(1.0));
        t.end(b);
        t.end(a);
        assert_eq!(t.spans().len(), 2);
        let sample = t.spans().iter().find(|s| s.name == "sample").unwrap();
        assert_eq!(sample.parent, Some(a));
        let tick = t.spans().iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(tick.parent, None);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Tracer::new(2);
        for _ in 0..4 {
            let id = t.begin(0.0, "x", None);
            t.end(id);
        }
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn unknown_end_is_ignored() {
        let mut t = Tracer::new(4);
        t.end(42);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn threads_get_independent_stacks_and_lanes() {
        use std::sync::Mutex;
        let t = Mutex::new(Tracer::new(64));
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let a = t.lock().unwrap().begin(0.0, "cell", None);
                    let b = t.lock().unwrap().begin(0.0, "run", None);
                    t.lock().unwrap().end(b);
                    t.lock().unwrap().end(a);
                });
            }
        });
        let t = t.into_inner().unwrap();
        assert_eq!(t.spans().len(), 4);
        for s in t.spans() {
            if s.name == "run" {
                // Each run's parent is the cell span from the SAME thread.
                let parent = t.spans().iter().find(|p| Some(p.id) == s.parent).unwrap();
                assert_eq!(parent.name, "cell");
                assert_eq!(parent.tid, s.tid);
            }
        }
    }

    #[test]
    fn folded_uses_self_time() {
        let spans = vec![rec(1, None, "tick", 100), rec(2, Some(1), "sample", 30)];
        let folded = folded_stacks(&spans);
        assert_eq!(folded, "tick 70\ntick;sample 30\n");
    }

    #[test]
    fn chrome_export_contains_complete_events() {
        let spans = vec![rec(1, None, "tick", 100)];
        let doc = chrome_trace_json(&spans);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"tick\""));
    }

    #[test]
    fn labels_extend_display_names() {
        let mut s = rec(1, None, "cell", 10);
        s.label = Some("mtat_full/clean".to_string());
        assert_eq!(s.display_name(), "cell:mtat_full/clean");
        assert!(chrome_trace_json(&[s]).contains("cell:mtat_full/clean"));
    }
}
