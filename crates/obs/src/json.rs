//! Minimal JSON parser for offline trace analysis.
//!
//! `mtat-trace` reads the trace files this workspace writes, and the
//! conformance tests parse our own exports back — both need a real
//! parser, and serde_json is not vendored. This is a small recursive-
//! descent implementation of RFC 8259: objects, arrays, strings with
//! full escape handling (including `\uXXXX` surrogate pairs), numbers
//! as `f64`, booleans, and `null`. Object keys keep their insertion
//! order (`Vec` of pairs, not a map), which the schema tests rely on.
//!
//! Integers round-trip exactly up to 2⁵³; every integer this workspace
//! serializes (nanoseconds, page counts, byte sizes) is below that.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, `None` when negative, fractional, or
    /// not a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"hi"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\ndA😀é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}é"));
    }

    #[test]
    fn our_exporter_output_parses_back() {
        let s = crate::export::json_string("weird \"name\"\n\ttab");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("weird \"name\"\n\ttab"));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let v = parse("\"\\u0041\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{\"a\":}").unwrap_err().contains("byte 5"));
        assert!(parse("[1,2] x").unwrap_err().contains("trailing"));
        assert!(parse(r#""\uD800""#).is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Value::Arr(vec![]));
    }
}
