//! Snapshot export: hand-rolled JSON and Prometheus text exposition.
//!
//! The build environment vendors only API stubs for serde, so — as
//! everywhere else in the workspace — serialization is written by hand.
//! The float/string helpers here are shared with the bench bins
//! (`chaos_matrix`, `perf_baseline`) so the workspace has exactly one
//! JSON number formatter instead of a copy per binary.

/// Formats a float for JSON: finite values with four decimal places
/// (enough for seconds/ratios in reports), non-finite as `null`.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional float for JSON via [`json_f64`]; `None` is `null`.
#[must_use]
pub fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// Escapes a string for inclusion in a JSON document (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sanitizes an internal dotted metric name into a legal Prometheus
/// metric name: every character outside `[a-zA-Z0-9_]` becomes `_` and
/// the result is prefixed with `mtat_` (Prometheus names cannot contain
/// dots and should carry a namespace).
///
/// ```
/// use mtat_obs::export::prometheus_name;
/// assert_eq!(prometheus_name("runner.lc_p99_ns"), "mtat_runner_lc_p99_ns");
/// ```
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("mtat_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a `{label="value",...}` selector from label pairs (empty
/// string when there are none). Label values are escaped per the text
/// exposition format (backslash, quote, newline).
#[must_use]
pub fn prometheus_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes free text for a `# HELP` line body. The exposition format
/// gives `# HELP` its own escape table — only backslash and newline
/// (label values additionally escape `"`); a raw newline in the help
/// text would otherwise split the comment mid-line and desynchronize
/// the scraper. Internal metric names are caller-controlled today, but
/// the scenario engine interpolates phase labels into names, so this
/// is load-bearing, not defensive.
///
/// ```
/// use mtat_obs::export::prometheus_help_text;
/// assert_eq!(prometheus_help_text("a\\b\nc"), "a\\\\b\\nc");
/// ```
#[must_use]
pub fn prometheus_help_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            // A raw carriage return is not escapable in the format and
            // would corrupt the line for strict parsers; neutralize it.
            '\r' => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float for Prometheus sample values (`NaN`/`+Inf`/`-Inf`
/// spellings per the exposition format).
#[must_use]
pub fn prometheus_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_floats() {
        assert_eq!(json_f64(1.5), "1.5000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_opt_f64(None), "null");
        assert_eq!(json_opt_f64(Some(2.0)), "2.0000");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(prometheus_name("a.b-c/d"), "mtat_a_b_c_d");
        assert_eq!(prometheus_name("already_ok"), "mtat_already_ok");
    }

    #[test]
    fn prometheus_labels_render() {
        assert_eq!(prometheus_labels(&[]), "");
        assert_eq!(
            prometheus_labels(&[("cell", "ppm_crash/mtat_full"), ("q", "0.99")]),
            "{cell=\"ppm_crash/mtat_full\",q=\"0.99\"}"
        );
        assert_eq!(prometheus_labels(&[("v", "a\"b")]), "{v=\"a\\\"b\"}");
    }

    #[test]
    fn prometheus_help_text_escapes() {
        assert_eq!(prometheus_help_text("plain text"), "plain text");
        assert_eq!(prometheus_help_text("a\\b"), "a\\\\b");
        assert_eq!(prometheus_help_text("line1\nline2"), "line1\\nline2");
        assert_eq!(prometheus_help_text("cr\rhere"), "cr here");
    }

    #[test]
    fn prometheus_float_spellings() {
        assert_eq!(prometheus_f64(f64::NAN), "NaN");
        assert_eq!(prometheus_f64(f64::INFINITY), "+Inf");
        assert_eq!(prometheus_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prometheus_f64(0.25), "0.25");
    }
}
