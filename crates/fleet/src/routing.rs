//! Request routing: per-epoch fleet demand → per-shard offered load.
//!
//! Routing is **deterministic pure arithmetic** — no RNG, no shared
//! state, no dependence on the order shards execute in. The router sees
//! the demand matrix from [`crate::traffic`] and a per-epoch capacity
//! for every shard (the level cap, reduced for shards being drained
//! during a fault window), and produces the offered-load level each
//! shard plays back as its LC `LoadPattern::Steps` trace.
//!
//! Three policies span the realism spectrum:
//!
//! * [`RoutingPolicy::StaticHash`] — pure key-affinity routing. Each
//!   shard gets exactly its demand, clipped at capacity; the excess is
//!   dropped (a real fleet would shed or queue it). Hot shards overload
//!   under skew — the baseline the smarter routers are judged against.
//! * [`RoutingPolicy::LeastLoaded`] — an idealized global balancer that
//!   ignores affinity entirely and water-fills the total demand across
//!   shard capacities (every shard ends at the common level λ or at its
//!   cap). Best-case load spreading, worst-case cache locality.
//! * [`RoutingPolicy::HotShardAware`] — bounded-load consistent
//!   hashing: affinity is honoured up to a hot threshold
//!   `hot_mult × mean demand`, and only the excess spills, water-filled
//!   into the remaining headroom of colder shards. The practical
//!   middle ground.

use crate::traffic::FleetTraffic;

/// How fleet demand is assigned to shards each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Pure key-affinity: demand clipped at capacity, excess dropped.
    StaticHash,
    /// Capacity-aware water-filling of total demand, ignoring affinity.
    LeastLoaded,
    /// Affinity up to `hot_mult × mean`, spill water-filled to colder
    /// shards.
    HotShardAware {
        /// Hot threshold as a multiple of the epoch's mean demand.
        hot_mult: f64,
    },
}

impl RoutingPolicy {
    /// Parses a CLI name: `static`, `least`, or `hot[:MULT]`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" | "static_hash" => Some(RoutingPolicy::StaticHash),
            "least" | "least_loaded" => Some(RoutingPolicy::LeastLoaded),
            "hot" | "hot_shard" => Some(RoutingPolicy::HotShardAware { hot_mult: 1.25 }),
            _ => {
                let mult = s.strip_prefix("hot:")?.parse::<f64>().ok()?;
                (mult.is_finite() && mult >= 1.0)
                    .then_some(RoutingPolicy::HotShardAware { hot_mult: mult })
            }
        }
    }

    /// Stable label for artifacts and logs.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RoutingPolicy::StaticHash => "static_hash".into(),
            RoutingPolicy::LeastLoaded => "least_loaded".into(),
            RoutingPolicy::HotShardAware { hot_mult } => format!("hot_shard:{hot_mult}"),
        }
    }
}

/// Router configuration shared by every epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterCfg {
    /// The assignment policy.
    pub policy: RoutingPolicy,
    /// Hard per-shard level cap (multiple of the shard's reference
    /// load). Demand above the fleet-wide cap is dropped.
    pub level_cap: f64,
    /// Whether the router drains shards under active fault windows. Off
    /// by default so fault confinement holds by construction: with no
    /// drain, routing is independent of the fault planes and untargeted
    /// shards replay bit-identically to a fault-free fleet.
    pub drain: bool,
    /// Capacity multiplier applied to a draining shard (only when
    /// `drain` is set).
    pub drain_frac: f64,
}

impl Default for RouterCfg {
    fn default() -> Self {
        Self {
            policy: RoutingPolicy::HotShardAware { hot_mult: 1.25 },
            level_cap: 1.6,
            drain: false,
            drain_frac: 0.25,
        }
    }
}

/// The routed assignment: per-shard offered-load traces plus what was
/// shed.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// Offered level per shard per epoch (`levels[shard][epoch]`) —
    /// transposed from the demand matrix so each shard's trace is
    /// contiguous for `LoadPattern::Steps`.
    pub levels: Vec<Vec<f64>>,
    /// Demand dropped per epoch (shard-load units).
    pub dropped: Vec<f64>,
}

impl Routed {
    /// Total dropped demand across the run.
    #[must_use]
    pub fn total_dropped(&self) -> f64 {
        self.dropped.iter().sum()
    }
}

/// Water-fills `target` units of load across `caps`: every shard is
/// assigned `min(cap_i, λ)` for the common level λ at which the
/// assignment sums to `min(target, Σcaps)`. Deterministic sequential
/// arithmetic; ties broken by shard index via a stable sort on the cap
/// bit pattern.
#[must_use]
pub fn waterfill(caps: &[f64], target: f64) -> Vec<f64> {
    let n = caps.len();
    let mut out = vec![0.0; n];
    if n == 0 || target <= 0.0 {
        return out;
    }
    let total_cap: f64 = caps.iter().sum();
    if target >= total_cap {
        out.copy_from_slice(caps);
        return out;
    }
    // Sort shard indices by capacity; fill the common level upward,
    // freezing shards as they saturate.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (caps[i].to_bits(), i));
    let mut remaining = target;
    let mut live = n;
    for (k, &i) in order.iter().enumerate() {
        let lambda = remaining / live as f64;
        if caps[i] <= lambda {
            out[i] = caps[i];
            remaining -= caps[i];
            live -= 1;
        } else {
            // Every later shard in the order has cap ≥ this one, so all
            // of them take exactly λ.
            for &j in &order[k..] {
                out[j] = lambda;
            }
            break;
        }
    }
    out
}

/// Routes the traffic under `cfg` given per-epoch shard capacities
/// (`caps[epoch][shard]`, already reduced for draining shards).
///
/// # Panics
///
/// Panics if the capacity matrix shape does not match the traffic.
#[must_use]
pub fn route(traffic: &FleetTraffic, caps: &[Vec<f64>], cfg: &RouterCfg) -> Routed {
    let epochs = traffic.epochs();
    assert_eq!(caps.len(), epochs, "capacity matrix epoch mismatch");
    let n = traffic.demand.first().map_or(0, Vec::len);
    let mut levels = vec![vec![0.0; epochs]; n];
    let mut dropped = vec![0.0; epochs];

    for e in 0..epochs {
        let demand = &traffic.demand[e];
        let cap = &caps[e];
        assert_eq!(cap.len(), n, "capacity matrix shard mismatch at epoch {e}");
        let total: f64 = demand.iter().sum();

        let assigned: Vec<f64> = match cfg.policy {
            RoutingPolicy::StaticHash => demand.iter().zip(cap).map(|(&d, &c)| d.min(c)).collect(),
            RoutingPolicy::LeastLoaded => waterfill(cap, total),
            RoutingPolicy::HotShardAware { hot_mult } => {
                let live = cap.iter().filter(|&&c| c > 0.0).count().max(1);
                let theta = hot_mult * total / live as f64;
                // Keep affinity up to the hot threshold (and the cap)…
                let base: Vec<f64> = demand
                    .iter()
                    .zip(cap)
                    .map(|(&d, &c)| d.min(theta).min(c))
                    .collect();
                let spill = total - base.iter().sum::<f64>();
                if spill > 0.0 {
                    // …then water-fill the excess into the headroom
                    // below θ on colder shards, and finally above θ up
                    // to the hard cap if the fleet is saturated.
                    let head_theta: Vec<f64> = base
                        .iter()
                        .zip(cap)
                        .map(|(&b, &c)| (theta.min(c) - b).max(0.0))
                        .collect();
                    let first = waterfill(&head_theta, spill);
                    let placed: f64 = first.iter().sum();
                    let mut out: Vec<f64> = base.iter().zip(&first).map(|(&b, &f)| b + f).collect();
                    let left = spill - placed;
                    if left > 1e-12 {
                        let head_cap: Vec<f64> = out
                            .iter()
                            .zip(cap)
                            .map(|(&o, &c)| (c - o).max(0.0))
                            .collect();
                        let second = waterfill(&head_cap, left);
                        for (o, s) in out.iter_mut().zip(&second) {
                            *o += s;
                        }
                    }
                    out
                } else {
                    base
                }
            }
        };

        let placed: f64 = assigned.iter().sum();
        dropped[e] = (total - placed).max(0.0);
        for (i, &a) in assigned.iter().enumerate() {
            levels[i][e] = a;
        }
    }

    Routed { levels, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{FleetTraffic, TrafficSpec};
    use mtat_workloads::access::AccessPattern;

    fn caps_flat(epochs: usize, n: usize, cap: f64) -> Vec<Vec<f64>> {
        vec![vec![cap; n]; epochs]
    }

    fn skewed_traffic(n: usize) -> FleetTraffic {
        TrafficSpec {
            pattern: AccessPattern::Zipfian { exponent: 0.6 },
            ..TrafficSpec::diurnal(100.0)
        }
        .generate(n, 100.0, 10.0)
        .expect("valid spec")
    }

    #[test]
    fn waterfill_equalizes_below_cap() {
        let fill = waterfill(&[1.0, 1.0, 1.0, 1.0], 2.0);
        assert!(fill.iter().all(|&f| (f - 0.5).abs() < 1e-12));
        let fill = waterfill(&[0.2, 1.0, 1.0], 1.7);
        assert!((fill[0] - 0.2).abs() < 1e-12);
        assert!((fill[1] - 0.75).abs() < 1e-12 && (fill[2] - 0.75).abs() < 1e-12);
        // Saturation clips at total capacity.
        let fill = waterfill(&[0.5, 0.5], 9.0);
        assert_eq!(fill, vec![0.5, 0.5]);
    }

    #[test]
    fn routing_conserves_demand_up_to_drops() {
        let t = skewed_traffic(16);
        for policy in [
            RoutingPolicy::StaticHash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::HotShardAware { hot_mult: 1.25 },
        ] {
            let cfg = RouterCfg {
                policy,
                ..RouterCfg::default()
            };
            let routed = route(&t, &caps_flat(t.epochs(), 16, cfg.level_cap), &cfg);
            for e in 0..t.epochs() {
                let placed: f64 = routed.levels.iter().map(|l| l[e]).sum();
                let total = t.total_demand(e);
                assert!(
                    (placed + routed.dropped[e] - total).abs() < 1e-9,
                    "{policy:?} epoch {e}: {placed} + {} != {total}",
                    routed.dropped[e]
                );
                for l in &routed.levels {
                    assert!(l[e] <= cfg.level_cap + 1e-12, "{policy:?} breached cap");
                }
            }
        }
    }

    #[test]
    fn least_loaded_flattens_skew_that_static_hash_keeps() {
        let t = skewed_traffic(16);
        let e = t.epochs() / 2;
        let spread = |routed: &Routed| {
            let vals: Vec<f64> = routed.levels.iter().map(|l| l[e]).collect();
            let max = vals.iter().cloned().fold(0.0, f64::max);
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        };
        let mk = |policy| {
            let cfg = RouterCfg {
                policy,
                ..RouterCfg::default()
            };
            route(&t, &caps_flat(t.epochs(), 16, cfg.level_cap), &cfg)
        };
        let sh = mk(RoutingPolicy::StaticHash);
        let ll = mk(RoutingPolicy::LeastLoaded);
        let hot = mk(RoutingPolicy::HotShardAware { hot_mult: 1.25 });
        assert!(
            spread(&ll) < 1e-9,
            "least-loaded must equalize: {}",
            spread(&ll)
        );
        assert!(
            spread(&sh) > 0.1,
            "static hash keeps the skew: {}",
            spread(&sh)
        );
        assert!(
            spread(&hot) < spread(&sh),
            "hot-shard-aware bounds the skew"
        );
    }

    #[test]
    fn hot_shard_aware_caps_hot_shards_at_theta() {
        let t = skewed_traffic(16);
        let hot_mult = 1.25;
        let cfg = RouterCfg {
            policy: RoutingPolicy::HotShardAware { hot_mult },
            ..RouterCfg::default()
        };
        let routed = route(&t, &caps_flat(t.epochs(), 16, cfg.level_cap), &cfg);
        for e in 0..t.epochs() {
            let total = t.total_demand(e);
            let theta = hot_mult * total / 16.0;
            // Below saturation no shard exceeds θ.
            if total <= theta * 16.0 {
                for l in &routed.levels {
                    assert!(l[e] <= theta + 1e-9);
                }
            }
        }
    }

    #[test]
    fn policy_parse_roundtrip() {
        assert_eq!(
            RoutingPolicy::parse("static"),
            Some(RoutingPolicy::StaticHash)
        );
        assert_eq!(
            RoutingPolicy::parse("least_loaded"),
            Some(RoutingPolicy::LeastLoaded)
        );
        assert_eq!(
            RoutingPolicy::parse("hot:1.5"),
            Some(RoutingPolicy::HotShardAware { hot_mult: 1.5 })
        );
        assert_eq!(RoutingPolicy::parse("hot:0.5"), None);
        assert_eq!(RoutingPolicy::parse("bogus"), None);
        assert_eq!(
            RoutingPolicy::parse("hot").unwrap().label(),
            "hot_shard:1.25"
        );
    }
}
