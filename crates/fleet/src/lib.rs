//! # mtat-fleet — sharded fleet simulation over the MTAT stack
//!
//! The paper evaluates MTAT on one tiered-memory server; the ROADMAP
//! north star is a production-scale deployment serving millions of
//! users. This crate is that fleet layer: a [`Fleet`] of N simulated
//! hosts, each an independent `Experiment`-shaped **shard** with its
//! own PP-M/PP-E instance, LC + BE co-location, and a deterministic
//! seed split from the fleet seed ([`shard_seed`]), driven by a
//! fleet-level open-loop traffic generator and executed on the
//! `bench::harness` scoped-thread pool.
//!
//! The moving parts:
//!
//! * [`traffic`] — fleet demand over **routing epochs**: a diurnal
//!   base curve times the `lc_load_mult` of a fleet-scope
//!   `workloads::scenario` schedule (flash crowds), with per-epoch
//!   shard-affinity weights drawn from the same schedule's popularity
//!   mutations (Zipf shifts sharpen the request skew across shards,
//!   hot-set rotations move which shards are hot). The scenario
//!   machinery is reused verbatim at fleet scope: shards play the role
//!   of pages, the affinity vector the role of a popularity
//!   distribution.
//! * [`routing`] — turns per-epoch demand into per-shard offered-load
//!   levels under a routing policy: [`RoutingPolicy::StaticHash`]
//!   (pure affinity — hot shards overload), [`RoutingPolicy::LeastLoaded`]
//!   (capacity-aware water-filling — the idealized load balancer), and
//!   [`RoutingPolicy::HotShardAware`] (bounded-load consistent hashing:
//!   affinity kept except excess above a hot threshold, which spills to
//!   cold shards).
//! * [`fleet`] — the shard runner and aggregation: each shard is a pure
//!   function of `(FleetConfig, shard_id)`, so results are bit-identical
//!   at any worker count and under any shard execution order
//!   (`run_matrix_chunked` claims chunks, never changes inputs).
//!   Per-shard fault planes confine chaos to a targeted id range;
//!   per-shard registries merge in shard order
//!   (`mtat_obs::registry::Registry::merge`) into fleet-level SLO
//!   compliance, BE throughput, and migration totals.
//! * [`anomaly`] — MAD-based robust outlier scoring over shard
//!   outcomes (violation rate, migration churn, failed moves): the
//!   "which hosts are not like the others" report, surfaced on the
//!   live `/status` endpoint and as `fleet.anomaly.*` metrics.
//!
//! The `fleet_sim` binary drives all of this from the command line;
//! `--check` asserts the determinism contract (workers-1 vs workers-N
//! bit-identity, non-zero routed traffic on every shard, fault
//! confinement) and is the CI PR gate.
//!
//! ## Seed discipline
//!
//! Every shard's `SimConfig` seed is `shard_seed(fleet_seed, id)` — a
//! SplitMix64 split, not a plain XOR, so neighbouring shard ids get
//! decorrelated RNG streams (a `fleet_seed ^ shard_id` split would make
//! shards 2k and 2k+1 differ in one bit). The fleet-scope scenario
//! seeds from the fleet seed alone; routing is deterministic arithmetic
//! with no RNG at all.

pub mod anomaly;
pub mod fleet;
pub mod routing;
pub mod traffic;

pub use anomaly::{AnomalyConfig, AnomalyReport, ShardAnomaly};
pub use fleet::{Fleet, FleetConfig, FleetResult, ShardFaultPlane, ShardOutcome, ShardSize};
pub use routing::{RouterCfg, RoutingPolicy};
pub use traffic::{FleetTraffic, TrafficSpec};

/// Deterministic per-shard seed: a SplitMix64 split of the fleet seed
/// keyed by the shard id. The same `(fleet_seed, shard)` always gives
/// the same seed, independent of worker count or execution order, and
/// distinct shards give decorrelated streams (see the collision
/// property test).
#[must_use]
pub fn shard_seed(fleet_seed: u64, shard: usize) -> u64 {
    // Domain-separate from bench::harness::cell_seed so a fleet shard
    // and a matrix cell with the same index never share a stream.
    mtat_bench::harness::cell_seed(fleet_seed ^ 0xF1EE_7000_0000_0001, shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..10_000).map(|i| shard_seed(7, i)).collect();
        let unique: HashSet<_> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        assert_eq!(shard_seed(7, 42), shard_seed(7, 42));
        assert_ne!(shard_seed(7, 42), shard_seed(8, 42));
        // Domain separation from matrix cells.
        assert_ne!(shard_seed(7, 42), mtat_bench::harness::cell_seed(7, 42));
    }
}
