//! The fleet itself: N independent shards under routed traffic.
//!
//! A **shard** is one simulated host — a full `Experiment` with its own
//! PP-M/PP-E instance, an LC serving its routed slice of fleet traffic
//! and a BE soaking up leftover FMem. Shards never share mutable state;
//! each is a pure function of `(FleetConfig, shard_id)`:
//!
//! * the shard's `SimConfig` seed is [`crate::shard_seed`]`(fleet_seed,
//!   id)`;
//! * its offered-load trace is row `id` of the routed level matrix,
//!   which is itself deterministic arithmetic over the traffic spec;
//! * its fault plan is the first [`ShardFaultPlane`] whose id range
//!   contains it (or no faults).
//!
//! Because of that purity, [`Fleet::run`] is bit-identical at any
//! worker count and under any shard execution order — the property the
//! `fleet_sim --check` gate asserts — and per-shard fault planes are
//! *confined by construction* when router draining is off: routing
//! never looks at the fault planes, so an untargeted shard's inputs
//! (and hence its digest) are unchanged by chaos elsewhere in the
//! fleet.
//!
//! Aggregation merges per-shard registries **in shard order** with
//! [`Registry::merge`] — deterministic, unlike having shards write a
//! shared registry from racing workers — and summarizes SLO compliance,
//! BE throughput, and migration totals across the fleet.

use std::ops::Range;

use mtat_bench::harness::{chunk_for, run_matrix_chunked};
use mtat_bench::make_policy;
use mtat_core::config::SimConfig;
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_core::HealthConfig;
use mtat_obs::registry::Registry;
use mtat_obs::Obs;
use mtat_snapshot::fnv1a64;
use mtat_tiermem::faults::FaultPlan;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

use crate::routing::{route, Routed, RouterCfg};
use crate::traffic::{TrafficError, TrafficSpec};

/// A fault plan targeted at a contiguous range of shard ids. Chaos hits
/// the subset; the rest of the fleet absorbs routed traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFaultPlane {
    /// The targeted shard ids (half-open).
    pub shards: Range<usize>,
    /// The plan every targeted shard runs.
    pub plan: FaultPlan,
}

impl ShardFaultPlane {
    /// Whether shard `i` is targeted by this plane.
    #[must_use]
    pub fn targets(&self, i: usize) -> bool {
        self.shards.contains(&i)
    }
}

/// How big each simulated host is. Shard size trades fidelity for
/// fleet scale: per-shard cost is dominated by page-move count
/// (migration bandwidth over page size), so the tiny profile runs
/// roughly an order of magnitude more shards per core-second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSize {
    /// The soak-harness host: 1 GiB FMem / 8 GiB SMem / 1 MiB pages,
    /// 1 GiB/s migration, redis at 1.2 GiB + sssp at 2 GiB, PEBS
    /// period 101.
    Small,
    /// The same host with a 10× coarser PEBS period (1009). Per-shard
    /// cost is dominated by sampler events — O(accesses / period) —
    /// so this runs ~8× more shards per core-second at the price of
    /// noisier per-page hotness estimates, which is the right trade
    /// for 1000-shard quick fleets.
    Tiny,
}

impl ShardSize {
    fn sim_config(self, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::small_test().with_seed(seed);
        if self == ShardSize::Tiny {
            cfg.sampler_period = 1009.0;
        }
        cfg
    }

    fn lc(self) -> LcSpec {
        let mut s = LcSpec::redis();
        s.rss_bytes = (1.2 * GIB as f64) as u64;
        s
    }

    fn be(self) -> BeSpec {
        let mut s = BeSpec::sssp();
        s.rss_bytes = 2 * GIB;
        s
    }
}

/// Everything that defines a fleet run. Two equal configs produce
/// bit-identical [`FleetResult`]s at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of shards (simulated hosts).
    pub n_shards: usize,
    /// Fleet master seed; every shard seed is split from it.
    pub fleet_seed: u64,
    /// Policy name for every shard (see `mtat_bench::make_policy`).
    pub policy: String,
    /// Run length in simulated seconds.
    pub duration_secs: f64,
    /// Routing-epoch length in simulated seconds.
    pub epoch_secs: f64,
    /// The open-loop fleet demand.
    pub traffic: TrafficSpec,
    /// How demand is assigned to shards.
    pub router: RouterCfg,
    /// Fault planes; a shard runs the first plane that targets it.
    pub faults: Vec<ShardFaultPlane>,
    /// Collect per-shard registries and merge them fleet-wide.
    pub metrics: bool,
    /// Capture a full span trace on this one shard (tracing the whole
    /// fleet would be gigabytes; one exemplar shard is the debuggable
    /// unit).
    pub trace_shard: Option<usize>,
    /// Arm the self-healing runtime (health sentinel + in-memory
    /// checkpoints) on every shard. Required for fault plans that
    /// poison the agent (e.g. `SacPoison`, storms with intensity
    /// ≥ 0.9).
    pub self_heal: bool,
    /// How big each simulated host is.
    pub shard_size: ShardSize,
}

impl FleetConfig {
    /// A baseline fleet: `n_shards` hosts over `duration_secs` with the
    /// default diurnal traffic (scenario attached), hot-shard-aware
    /// routing, no faults, no metrics.
    #[must_use]
    pub fn new(n_shards: usize, fleet_seed: u64, duration_secs: f64, epoch_secs: f64) -> Self {
        Self {
            n_shards,
            fleet_seed,
            policy: "mtat_full".into(),
            duration_secs,
            epoch_secs,
            traffic: TrafficSpec::diurnal(duration_secs)
                .with_default_scenario(fleet_seed, duration_secs),
            router: RouterCfg::default(),
            faults: Vec::new(),
            metrics: false,
            trace_shard: None,
            self_heal: false,
            shard_size: ShardSize::Small,
        }
    }

    fn plan_for(&self, shard: usize) -> FaultPlan {
        self.faults
            .iter()
            .find(|p| p.targets(shard))
            .map_or_else(FaultPlan::none, |p| p.plan.clone())
    }
}

/// What one shard reports back. Deliberately summary-sized — the tick
/// series is digested and dropped so a 1000-shard fleet doesn't hold
/// 1000 full time series in memory.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard id.
    pub shard: usize,
    /// The shard's derived simulation seed.
    pub seed: u64,
    /// FNV-1a-64 digest over the shard's full tick series
    /// (`RunResult::digest`) — the bit-identity witness.
    pub digest: u64,
    /// Number of simulation ticks.
    pub ticks: usize,
    /// LC requests offered to this shard.
    pub lc_requests: f64,
    /// LC requests offered during SLO-violating ticks.
    pub lc_violated_requests: f64,
    /// Total BE throughput (ops/s, averaged over the run).
    pub be_throughput: f64,
    /// Bytes migrated between tiers.
    pub migration_bytes: u64,
    /// Page moves that failed under injected faults.
    pub failed_moves: u64,
    /// Previously failed moves that enforcement retried.
    pub retried_moves: u64,
    /// Mean routed load level (fraction of the shard's reference load).
    pub mean_level: f64,
    /// Worst LC P99 after the first routing epoch (seconds) — the
    /// cold-start transient, before the policy has pulled the LC into
    /// FMem, is excluded the way the single-host harnesses apply a
    /// warm-up grace.
    pub worst_p99: f64,
    /// The shard's metric registry (when fleet metrics are on).
    pub registry: Option<Registry>,
    /// Span-trace JSON (only on the `trace_shard`).
    pub trace: Option<String>,
}

impl ShardOutcome {
    /// This shard's SLO violation rate (violated requests over offered
    /// requests). The robust per-shard health number: a transient
    /// load-step saturation makes `worst_p99` infinite while barely
    /// moving this rate.
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.lc_requests <= 0.0 {
            0.0
        } else {
            self.lc_violated_requests / self.lc_requests
        }
    }
}

/// A planned fleet: config plus the routed per-shard load traces,
/// ready to run at any worker count.
#[derive(Debug, Clone)]
pub struct Fleet {
    cfg: FleetConfig,
    routed: Routed,
}

impl Fleet {
    /// Generates traffic, builds the per-epoch capacity matrix (capacity
    /// reduced for drained shards only when the router drains), and
    /// routes — everything up-front and deterministic, so [`Fleet::run`]
    /// is pure fan-out.
    ///
    /// # Errors
    ///
    /// [`TrafficError`] for a malformed traffic spec or scenario.
    pub fn plan(cfg: FleetConfig) -> Result<Fleet, TrafficError> {
        let traffic = cfg
            .traffic
            .generate(cfg.n_shards, cfg.duration_secs, cfg.epoch_secs)?;
        let epochs = traffic.epochs();
        let mut caps = vec![vec![cfg.router.level_cap; cfg.n_shards]; epochs];
        if cfg.router.drain {
            for (e, row) in caps.iter_mut().enumerate() {
                let t = (e as f64 + 0.5) * cfg.epoch_secs;
                for plane in &cfg.faults {
                    if plane.plan.windows.iter().any(|w| w.active_at(t)) {
                        for i in plane.shards.clone() {
                            if i < cfg.n_shards {
                                row[i] = cfg.router.level_cap * cfg.router.drain_frac;
                            }
                        }
                    }
                }
            }
        }
        let routed = route(&traffic, &caps, &cfg.router);
        Ok(Fleet { cfg, routed })
    }

    /// The fleet config this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The routed assignment (per-shard level traces, dropped demand).
    #[must_use]
    pub fn routed(&self) -> &Routed {
        &self.routed
    }

    /// Runs one shard to completion. Pure in `(self, shard)`: calling
    /// this from any thread, in any order, any number of times gives
    /// the same [`ShardOutcome`].
    #[must_use]
    pub fn run_shard(&self, shard: usize) -> ShardOutcome {
        let seed = crate::shard_seed(self.cfg.fleet_seed, shard);
        let cfg = self.cfg.shard_size.sim_config(seed);
        let lc = self.cfg.shard_size.lc();
        let bes = vec![self.cfg.shard_size.be()];
        let levels = &self.routed.levels[shard];
        let steps: Vec<(f64, f64)> = levels.iter().map(|&l| (self.cfg.epoch_secs, l)).collect();
        let mean_level = levels.iter().sum::<f64>() / levels.len().max(1) as f64;

        let obs = if self.cfg.trace_shard == Some(shard) {
            Obs::traced()
        } else if self.cfg.metrics {
            Obs::enabled()
        } else {
            Obs::disabled()
        };

        let mut exp = Experiment::new(
            cfg.clone(),
            lc.clone(),
            LoadPattern::Steps(steps),
            bes.clone(),
        )
        .with_duration(self.cfg.duration_secs)
        .with_fault_plan(self.cfg.plan_for(shard))
        .with_obs(obs.clone());
        if self.cfg.self_heal {
            exp = exp
                .with_checkpoints(CheckpointCfg::in_memory().with_every(12))
                .with_health(HealthConfig::self_heal());
        }

        let mut policy = make_policy(&self.cfg.policy, &cfg, &lc, &bes);
        let r = exp.run(policy.as_mut());

        ShardOutcome {
            shard,
            seed,
            digest: r.digest(),
            ticks: r.ticks.len(),
            lc_requests: r.lc_requests,
            lc_violated_requests: r.lc_violated_requests,
            be_throughput: r.be_total_throughput(),
            migration_bytes: r.total_migration_bytes,
            failed_moves: r.failed_moves,
            retried_moves: r.retried_moves,
            mean_level,
            worst_p99: r.worst_p99_after(self.cfg.epoch_secs),
            registry: obs.with_registry(Clone::clone),
            trace: obs.trace_json(),
        }
    }

    /// Runs every shard on `workers` threads (chunk-claimed on the
    /// bench harness pool) and aggregates. Results are bit-identical
    /// for any `workers`.
    #[must_use]
    pub fn run(&self, workers: usize) -> FleetResult {
        self.run_with_progress(workers, &|_, _| {})
    }

    /// [`Fleet::run`] with a completion callback: `progress(done, &outcome)`
    /// fires from worker threads after each shard finishes, with `done`
    /// the total completed so far. The callback observes outcomes but
    /// cannot influence them — shard inputs are fixed at plan time — so
    /// results stay bit-identical with or without a callback attached
    /// (the live-telemetry contract). Callback *ordering* follows
    /// execution order and is therefore not deterministic; deterministic
    /// consumers should read the returned result, which is.
    #[must_use]
    pub fn run_with_progress(
        &self,
        workers: usize,
        progress: &(dyn Fn(usize, &ShardOutcome) + Sync),
    ) -> FleetResult {
        let ids: Vec<usize> = (0..self.cfg.n_shards).collect();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let shards = run_matrix_chunked(&ids, workers, chunk_for(ids.len(), workers), |_, &i| {
            let outcome = self.run_shard(i);
            let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            progress(n, &outcome);
            outcome
        });

        // Merge registries in shard order — deterministic aggregation
        // (counters add; gauges take the highest-id shard's value).
        let mut registry = Registry::new();
        for s in &shards {
            if let Some(r) = &s.registry {
                registry.merge(r);
            }
        }
        registry.gauge_set("fleet.shards", self.cfg.n_shards as f64);
        registry.gauge_set("fleet.workers", workers as f64);
        registry.gauge_set("fleet.dropped_demand", self.routed.total_dropped());

        // The aggregate digest witnesses the whole fleet: any single
        // tick bit-flip on any shard changes it.
        let mut bytes = Vec::with_capacity(shards.len() * 24);
        for s in &shards {
            bytes.extend_from_slice(&(s.shard as u64).to_le_bytes());
            bytes.extend_from_slice(&s.seed.to_le_bytes());
            bytes.extend_from_slice(&s.digest.to_le_bytes());
        }
        let aggregate_digest = fnv1a64(&bytes);

        FleetResult {
            shards,
            registry,
            aggregate_digest,
            workers,
            dropped_demand: self.routed.total_dropped(),
        }
    }
}

/// The aggregated fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Fleet-wide merged registry (plus `fleet.*` gauges); empty when
    /// metrics were off.
    pub registry: Registry,
    /// FNV-1a-64 over every shard's `(id, seed, digest)` — the
    /// fleet-level bit-identity witness.
    pub aggregate_digest: u64,
    /// Worker threads used (recorded in artifacts; never affects
    /// results).
    pub workers: usize,
    /// Total demand the router shed (shard-load units).
    pub dropped_demand: f64,
}

impl FleetResult {
    /// Fleet SLO violation rate: violated requests over offered
    /// requests, fleet-wide.
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        let offered: f64 = self.shards.iter().map(|s| s.lc_requests).sum();
        if offered <= 0.0 {
            0.0
        } else {
            self.shards
                .iter()
                .map(|s| s.lc_violated_requests)
                .sum::<f64>()
                / offered
        }
    }

    /// Total BE throughput across the fleet (ops/s).
    #[must_use]
    pub fn be_total_throughput(&self) -> f64 {
        self.shards.iter().map(|s| s.be_throughput).sum()
    }

    /// Total bytes migrated across the fleet.
    #[must_use]
    pub fn total_migration_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.migration_bytes).sum()
    }

    /// Worst LC P99 across all shards (seconds).
    #[must_use]
    pub fn worst_p99(&self) -> f64 {
        self.shards.iter().map(|s| s.worst_p99).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtat_tiermem::faults::FaultKind;

    /// A small cheap fleet: heuristic policy (no RL pretraining),
    /// short run.
    fn tiny_cfg(n: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(n, 0xF1EE7, 120.0, 10.0);
        cfg.policy = "memtis".into();
        cfg.shard_size = ShardSize::Tiny;
        cfg
    }

    #[test]
    fn fleet_is_bit_identical_across_worker_counts() {
        let fleet = Fleet::plan(tiny_cfg(6)).expect("valid config");
        let serial = fleet.run(1);
        let parallel = fleet.run(4);
        assert_eq!(serial.aggregate_digest, parallel.aggregate_digest);
        for (a, b) in serial.shards.iter().zip(&parallel.shards) {
            assert_eq!(a.digest, b.digest, "shard {} diverged", a.shard);
        }
        // Worker count is recorded but never part of the digest input.
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 4);
    }

    #[test]
    fn every_shard_receives_traffic() {
        let fleet = Fleet::plan(tiny_cfg(6)).expect("valid config");
        let result = fleet.run(2);
        for s in &result.shards {
            assert!(s.lc_requests > 0.0, "shard {} starved", s.shard);
            assert!(s.ticks > 0);
            assert!(s.mean_level > 0.0);
        }
        assert!(result.violation_rate() >= 0.0 && result.violation_rate() <= 1.0);
    }

    #[test]
    fn faults_stay_confined_to_the_targeted_subset() {
        let base = Fleet::plan(tiny_cfg(6)).expect("valid config");
        let mut chaotic_cfg = tiny_cfg(6);
        chaotic_cfg.faults = vec![ShardFaultPlane {
            shards: 1..3,
            plan: FaultPlan::new(9).with(FaultKind::FaultStorm { intensity: 0.6 }, 20.0, 60.0),
        }];
        let chaotic = Fleet::plan(chaotic_cfg).expect("valid config");
        let a = base.run(2);
        let b = chaotic.run(2);
        let mut targeted_diverged = false;
        for (x, y) in a.shards.iter().zip(&b.shards) {
            if (1..3).contains(&x.shard) {
                targeted_diverged |= x.digest != y.digest;
            } else {
                assert_eq!(x.digest, y.digest, "chaos leaked into shard {}", x.shard);
            }
        }
        assert!(targeted_diverged, "the storm had no observable effect");
    }

    #[test]
    fn progress_callback_does_not_perturb_results() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fleet = Fleet::plan(tiny_cfg(4)).expect("valid config");
        let calls = AtomicUsize::new(0);
        let observed = fleet.run_with_progress(2, &|done, o| {
            assert!(o.ticks > 0);
            assert!((1..=4).contains(&done));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        let blind = fleet.run(2);
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(observed.aggregate_digest, blind.aggregate_digest);
    }

    #[test]
    fn metrics_merge_without_perturbing_results() {
        let mut cfg = tiny_cfg(4);
        cfg.metrics = true;
        cfg.trace_shard = Some(2);
        let observed = Fleet::plan(cfg).expect("valid config").run(2);
        let blind = Fleet::plan(tiny_cfg(4)).expect("valid config").run(2);
        assert_eq!(observed.aggregate_digest, blind.aggregate_digest);
        assert!(!observed.registry.is_empty());
        assert_eq!(observed.registry.gauge("fleet.shards"), Some(4.0));
        assert!(observed.shards[2].trace.is_some());
        assert!(observed.shards[0].trace.is_none());
    }
}
