//! Fleet-scale simulation driver.
//!
//! Runs a [`Fleet`] of N simulated MTAT hosts under diurnal routed
//! traffic and prints a fleet summary as JSON on stdout (status lines
//! go to stderr, `#`-prefixed, like every harness binary here).
//!
//! Usage:
//!
//! ```text
//! fleet_sim [--shards N] [--workers N] [--quick] [--check]
//!           [--policy NAME] [--routing static|least|hot[:MULT]]
//!           [--seed S] [--duration SECS] [--epoch SECS]
//!           [--chaos] [--drain] [--self-heal] [--serve ADDR]
//!           [--metrics-out FILE] [--trace-out FILE] [--digests-out FILE]
//! ```
//!
//! * `--quick` is the PR-gate preset: 1000 shards, a compressed
//!   2-simulated-minute day, cheap heuristic policy.
//! * `--check` asserts the determinism contract and exits non-zero on
//!   violation: per-shard and aggregate digests bit-identical between
//!   `--workers 1` and `--workers N`; every shard receives traffic;
//!   fault confinement — chaos on a targeted subset leaves every
//!   untargeted shard's digest unchanged (router draining off) — and
//!   anomaly precision: the MAD detector flags only targeted shards.
//!   With `--serve`, additionally asserts that the scrape endpoints
//!   answered *while* the fleet was still running.
//! * `--chaos` arms the default fleet fault planes (a fault storm plus
//!   a PP-M crash on the first eighth of the fleet).
//! * `--serve ADDR` (e.g. `127.0.0.1:9090`, port 0 for ephemeral)
//!   exposes the run live over HTTP: `/metrics` (Prometheus text),
//!   `/healthz`, `/status` (progress + top anomaly outliers), and
//!   `/events` (SSE tail). Serving is read-only — digests are
//!   bit-identical with it on or off, which `--check` verifies.
//! * `--metrics-out` writes the merged fleet registry (JSON);
//!   `--digests-out` writes one `{"shard":..,"seed":..,"digest":..}`
//!   line per shard (JSONL) — the nightly artifacts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mtat_bench::harness;
use mtat_fleet::anomaly::{self, AnomalyConfig, AnomalyReport};
use mtat_fleet::{Fleet, FleetConfig, RouterCfg, RoutingPolicy, ShardFaultPlane, ShardSize};
use mtat_obs::serve::{TelemetryHub, TelemetryServer};
use mtat_tiermem::faults::{FaultKind, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_f64 = |name: &str, default: f64| -> f64 {
        opt(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad {name}: {v:?}")))
        })
    };
    let parse_usize = |name: &str, default: usize| -> usize {
        opt(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad {name}: {v:?}")))
        })
    };

    let quick = flag("--quick");
    // Quick: many cheap shards (PR gate, exercises fleet-scale
    // claiming). Full: fewer shards over a longer simulated day with
    // the real policy (nightly).
    let n_shards = parse_usize("--shards", if quick { 1000 } else { 128 });
    let duration = parse_f64("--duration", if quick { 120.0 } else { 900.0 });
    let epoch = parse_f64("--epoch", if quick { 10.0 } else { 30.0 });
    let policy = opt("--policy").unwrap_or_else(|| {
        // Quick uses the heuristic PP-M (no SAC pretraining, ~8× the
        // shard throughput); the nightly full fleet runs the real agent.
        if quick {
            "mtat_full_heuristic".into()
        } else {
            "mtat_full".into()
        }
    });
    let seed = parse_f64("--seed", 0xF1EE7 as f64) as u64;
    let workers = parse_usize("--workers", harness::worker_count(n_shards));

    let routing = opt("--routing").map_or(RoutingPolicy::HotShardAware { hot_mult: 1.25 }, |v| {
        RoutingPolicy::parse(&v).unwrap_or_else(|| die(&format!("bad --routing: {v:?}")))
    });

    let mut cfg = FleetConfig::new(n_shards, seed, duration, epoch);
    cfg.policy = policy;
    cfg.shard_size = opt("--size").map_or(
        if quick {
            ShardSize::Tiny
        } else {
            ShardSize::Small
        },
        |v| match v.as_str() {
            "small" => ShardSize::Small,
            "tiny" => ShardSize::Tiny,
            _ => die(&format!("bad --size: {v:?} (small|tiny)")),
        },
    );
    cfg.router = RouterCfg {
        policy: routing,
        drain: flag("--drain"),
        ..RouterCfg::default()
    };
    cfg.self_heal = flag("--self-heal");
    let serve_addr = opt("--serve");
    // Serving needs per-shard registries to render /metrics, so --serve
    // implies fleet metrics. Metrics never perturb shard physics.
    cfg.metrics = opt("--metrics-out").is_some() || serve_addr.is_some();
    cfg.trace_shard = opt("--trace-out").map(|_| 0);
    if flag("--chaos") {
        cfg.faults = default_chaos(n_shards, seed, duration);
    }

    eprintln!(
        "# fleet_sim: {n_shards} shards x {duration:.0}s sim, epoch {epoch:.0}s, \
         policy {}, routing {}, {workers} workers",
        cfg.policy,
        cfg.router.policy.label()
    );

    // Live telemetry plane. The hub holds whole published snapshots;
    // the server threads only ever read them, so the fleet result is
    // bit-identical with serving on or off (--check verifies this: the
    // serial replay below runs without any publication at all).
    let hub = TelemetryHub::new();
    let server: Option<TelemetryServer> = serve_addr.as_deref().map(|addr| {
        let s = TelemetryServer::bind(addr, hub.clone())
            .unwrap_or_else(|e| die(&format!("cannot serve on {addr}: {e}")));
        eprintln!("# serving telemetry on http://{}/", s.local_addr());
        s
    });

    let fleet = Fleet::plan(cfg.clone()).unwrap_or_else(|e| die(&format!("plan failed: {e}")));
    let t0 = std::time::Instant::now();

    // Self-scrape watchdog: under --check --serve, poll our own /status
    // from a side thread and record whether it answered while shards
    // were still running — the "scrape answers during the run" gate.
    let run_done = Arc::new(AtomicBool::new(false));
    let scraped_mid_run = Arc::new(AtomicBool::new(false));
    let scraper = server.as_ref().filter(|_| flag("--check")).map(|s| {
        let addr = s.local_addr();
        let done = Arc::clone(&run_done);
        let hit = Arc::clone(&scraped_mid_run);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                if self_scrape(addr, "/status").is_some_and(|r| r.starts_with("HTTP/1.1 200")) {
                    hit.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        })
    });

    let result = if server.is_some() {
        let total = cfg.n_shards;
        hub.publish_health("running", true);
        hub.publish_status(fleet_status_json("running", 0, total, 0.0, None));
        fleet.run_with_progress(workers, &|done, outcome| {
            hub.push_event(format!(
                "shard {:4} done ({done}/{total}) viol_rate={:.4}",
                outcome.shard,
                outcome.violation_rate()
            ));
            hub.publish_status(fleet_status_json("running", done, total, 0.0, None));
        })
    } else {
        fleet.run(workers)
    };
    run_done.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        let _ = t.join();
    }
    eprintln!("# fleet run: {:.1}s wall", t0.elapsed().as_secs_f64());

    // Fleet anomaly sweep: robust per-shard outlier scores over the
    // completed outcomes, folded into the merged registry and the
    // /status document.
    let mut result = result;
    let report = anomaly::detect(&result.shards, &AnomalyConfig::default());
    report.annotate(&mut result.registry);
    if !report.flagged.is_empty() {
        eprintln!(
            "# anomaly: {} shard(s) flagged, max score {:.1}",
            report.flagged.len(),
            report.max_score()
        );
    }
    if server.is_some() {
        hub.publish_metrics(result.registry.to_prometheus(&[("harness", "fleet_sim")]));
        hub.publish_status(fleet_status_json(
            "checking",
            cfg.n_shards,
            cfg.n_shards,
            result.violation_rate(),
            Some(&report),
        ));
    }

    if flag("--check") {
        run_checks(
            &cfg,
            &fleet,
            &result,
            workers,
            if server.is_some() { Some(&hub) } else { None },
            server
                .as_ref()
                .map(|_| scraped_mid_run.load(Ordering::Relaxed)),
        );
    }

    if server.is_some() {
        hub.publish_health("done", true);
        hub.publish_status(fleet_status_json(
            "done",
            cfg.n_shards,
            cfg.n_shards,
            result.violation_rate(),
            Some(&report),
        ));
    }

    if let Some(path) = opt("--metrics-out") {
        write_file(&path, &result.registry.to_json());
        eprintln!("# wrote fleet metrics to {path}");
    }
    if let Some(path) = opt("--trace-out") {
        if let Some(trace) = result.shards.first().and_then(|s| s.trace.as_deref()) {
            write_file(&path, trace);
            eprintln!("# wrote shard-0 trace to {path}");
        }
    }
    if let Some(path) = opt("--digests-out") {
        let mut lines = String::with_capacity(result.shards.len() * 64);
        for s in &result.shards {
            lines.push_str(&format!(
                "{{\"shard\":{},\"seed\":{},\"digest\":{}}}\n",
                s.shard, s.seed, s.digest
            ));
        }
        write_file(&path, &lines);
        eprintln!(
            "# wrote {} per-shard digests to {path}",
            result.shards.len()
        );
    }

    print_summary(&cfg, &result, workers, quick);
}

/// The default fleet chaos: a correlated fault storm plus a PP-M crash
/// confined to the first eighth of the fleet (at least one shard).
/// Intensity stays below the 0.9 poison threshold so the plan is safe
/// without the self-healing runtime; pass `--self-heal` for hotter
/// plans.
fn default_chaos(n_shards: usize, seed: u64, duration: f64) -> Vec<ShardFaultPlane> {
    let targeted = (n_shards / 8).max(1);
    vec![ShardFaultPlane {
        shards: 0..targeted,
        plan: FaultPlan::new(seed ^ 0x50AC)
            .with(
                FaultKind::FaultStorm { intensity: 0.6 },
                duration * 0.25 + 1.0,
                duration * 0.15,
            )
            .with(FaultKind::PpmCrash, duration * 0.6 + 1.0, duration * 0.05),
    }]
}

/// The `--check` gate: bit-identity across worker counts, universal
/// traffic delivery, fault confinement on a sub-fleet, anomaly-detector
/// precision on that same sub-fleet, and — when serving — live-scrape
/// availability plus serve-on/off bit-identity.
fn run_checks(
    cfg: &FleetConfig,
    fleet: &Fleet,
    result: &mtat_fleet::fleet::FleetResult,
    workers: usize,
    hub: Option<&TelemetryHub>,
    scraped_mid_run: Option<bool>,
) {
    if let Some(hit) = scraped_mid_run {
        assert!(
            hit,
            "telemetry /status never answered while the fleet was running"
        );
        eprintln!("# check: /status answered mid-run");
    }
    eprintln!("# check: replaying fleet with 1 worker for bit-identity");
    let serial = fleet.run(1);
    assert_eq!(
        serial.aggregate_digest, result.aggregate_digest,
        "aggregate digest diverged between 1 and {workers} workers"
    );
    for (a, b) in serial.shards.iter().zip(&result.shards) {
        assert_eq!(
            a.digest, b.digest,
            "shard {} digest diverged between 1 and {workers} workers",
            a.shard
        );
    }

    for s in &result.shards {
        assert!(s.lc_requests > 0.0, "shard {} received no traffic", s.shard);
        assert!(s.ticks > 0, "shard {} ran no ticks", s.shard);
    }

    // Confinement: chaos on a targeted subset of a small sub-fleet must
    // leave untargeted digests bit-identical (drain off, so routing
    // never sees the faults).
    eprintln!("# check: fault confinement on a sub-fleet");
    let sub = cfg.n_shards.min(64);
    let mut base_cfg = cfg.clone();
    base_cfg.n_shards = sub;
    base_cfg.faults.clear();
    base_cfg.router.drain = false;
    base_cfg.metrics = false;
    base_cfg.trace_shard = None;
    let mut chaos_cfg = base_cfg.clone();
    chaos_cfg.faults = default_chaos(sub, cfg.fleet_seed, cfg.duration_secs);
    let targeted = chaos_cfg.faults[0].shards.clone();
    let base = Fleet::plan(base_cfg.clone())
        .expect("base sub-fleet plans")
        .run(workers);
    let chaos = Fleet::plan(chaos_cfg)
        .expect("chaos sub-fleet plans")
        .run(workers);
    let mut diverged = false;
    for (a, b) in base.shards.iter().zip(&chaos.shards) {
        if targeted.contains(&a.shard) {
            diverged |= a.digest != b.digest;
        } else {
            assert_eq!(
                a.digest, b.digest,
                "fault leaked into untargeted shard {}",
                a.shard
            );
        }
    }
    assert!(
        diverged,
        "chaos plan had no observable effect on targeted shards"
    );

    // Anomaly precision: on the chaos sub-fleet, the MAD detector must
    // flag fault-windowed shards and *only* fault-windowed shards —
    // chaos elsewhere in a confined fleet must not smear suspicion
    // across clean hosts.
    eprintln!("# check: anomaly detection on the chaos sub-fleet");
    let chaos_report = anomaly::detect(&chaos.shards, &AnomalyConfig::default());
    assert!(
        !chaos_report.flagged.is_empty(),
        "no anomalies flagged on the fault-windowed sub-fleet"
    );
    for a in &chaos_report.flagged {
        assert!(
            targeted.contains(&a.shard),
            "untargeted shard {} falsely flagged (score {:.1})",
            a.shard,
            a.score
        );
    }
    if let Some(hub) = hub {
        hub.publish_status(fleet_status_json(
            "checking",
            sub,
            sub,
            chaos.violation_rate(),
            Some(&chaos_report),
        ));
    }

    // Serve-on/off bit-identity, witnessed directly: the same sub-fleet
    // with per-shard metrics collection (what --serve turns on) must
    // produce the identical aggregate digest as the blind run above.
    if hub.is_some() {
        eprintln!("# check: serve-on/off bit-identity on the sub-fleet");
        let mut served_cfg = base_cfg;
        served_cfg.metrics = true;
        let served = Fleet::plan(served_cfg)
            .expect("served sub-fleet plans")
            .run(workers);
        assert_eq!(
            served.aggregate_digest, base.aggregate_digest,
            "metrics collection for serving perturbed the fleet digest"
        );
    }
    eprintln!("# check: all assertions passed");
}

/// Fleet-level `/status` document. `done`/`total` count shards;
/// `report` carries the anomaly verdict once detection has run.
fn fleet_status_json(
    phase: &str,
    done: usize,
    total: usize,
    violation_rate: f64,
    report: Option<&AnomalyReport>,
) -> String {
    let progress = if total == 0 {
        1.0
    } else {
        done as f64 / total as f64
    };
    let outliers = report.map_or_else(|| "[]".to_string(), AnomalyReport::top_outliers_json);
    let flagged = report.map_or(0, |r| r.flagged.len());
    format!(
        "{{\"harness\":\"fleet_sim\",\"phase\":\"{phase}\",\"shards_done\":{done},\
         \"shards_total\":{total},\"progress\":{progress:.4},\
         \"violation_rate\":{violation_rate:.6},\"anomalies_flagged\":{flagged},\
         \"top_outliers\":{outliers}}}"
    )
}

/// One HTTP/1.1 GET against our own telemetry server; `None` on any
/// socket error (the server may not have finished binding yet).
fn self_scrape(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    use std::io::{Read, Write};
    let mut s =
        std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(2)).ok()?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .ok()?;
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .ok()?;
    let mut out = Vec::new();
    s.read_to_end(&mut out).ok()?;
    Some(String::from_utf8_lossy(&out).into_owned())
}

fn print_summary(
    cfg: &FleetConfig,
    result: &mtat_fleet::fleet::FleetResult,
    workers: usize,
    quick: bool,
) {
    // Per-shard violation rates are the robust tail summary (a single
    // load-step transient makes worst_p99 infinite); worst_p99 is still
    // reported fleet-wide.
    let mut rates: Vec<f64> = result.shards.iter().map(|s| s.violation_rate()).collect();
    rates.sort_by(f64::total_cmp);
    let pct = |q: f64| rates[((rates.len() - 1) as f64 * q) as usize];
    let total_requests: f64 = result.shards.iter().map(|s| s.lc_requests).sum();
    println!("{{");
    println!("  \"mode\": \"{}\",", if quick { "quick" } else { "full" });
    println!("  \"shards\": {}, \"workers\": {workers},", cfg.n_shards);
    println!("  \"policy\": \"{}\",", cfg.policy);
    println!("  \"routing\": \"{}\",", cfg.router.policy.label());
    println!(
        "  \"duration_secs\": {}, \"epoch_secs\": {},",
        cfg.duration_secs, cfg.epoch_secs
    );
    println!("  \"seed\": {},", cfg.fleet_seed);
    println!("  \"chaos_planes\": {},", cfg.faults.len());
    println!("  \"lc_requests\": {total_requests:.0},");
    println!("  \"slo_violation_rate\": {:.6},", result.violation_rate());
    println!(
        "  \"be_total_throughput\": {:.1},",
        result.be_total_throughput()
    );
    println!(
        "  \"migration_gib\": {:.3},",
        result.total_migration_bytes() as f64 / (1u64 << 30) as f64
    );
    println!(
        "  \"failed_moves\": {},",
        result.shards.iter().map(|s| s.failed_moves).sum::<u64>()
    );
    println!("  \"dropped_demand\": {:.4},", result.dropped_demand);
    // A saturated shard has an unbounded queueing P99; `inf` is not
    // valid JSON, so saturation prints as null.
    let ms = |v: f64| {
        if v.is_finite() {
            format!("{:.3}", v * 1e3)
        } else {
            "null".into()
        }
    };
    println!("  \"worst_p99_ms\": {},", ms(result.worst_p99()));
    println!(
        "  \"shard_violation_rate\": {{ \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6} }},",
        pct(0.5),
        pct(0.9),
        pct(0.99)
    );
    println!(
        "  \"aggregate_digest\": \"{:016x}\"",
        result.aggregate_digest
    );
    println!("}}");
}

fn write_file(path: &str, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

fn die(msg: &str) -> ! {
    eprintln!("# fleet_sim: {msg}");
    std::process::exit(2);
}
