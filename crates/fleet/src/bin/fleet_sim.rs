//! Fleet-scale simulation driver.
//!
//! Runs a [`Fleet`] of N simulated MTAT hosts under diurnal routed
//! traffic and prints a fleet summary as JSON on stdout (status lines
//! go to stderr, `#`-prefixed, like every harness binary here).
//!
//! Usage:
//!
//! ```text
//! fleet_sim [--shards N] [--workers N] [--quick] [--check]
//!           [--policy NAME] [--routing static|least|hot[:MULT]]
//!           [--seed S] [--duration SECS] [--epoch SECS]
//!           [--chaos] [--drain] [--self-heal]
//!           [--metrics-out FILE] [--trace-out FILE] [--digests-out FILE]
//! ```
//!
//! * `--quick` is the PR-gate preset: 1000 shards, a compressed
//!   2-simulated-minute day, cheap heuristic policy.
//! * `--check` asserts the determinism contract and exits non-zero on
//!   violation: per-shard and aggregate digests bit-identical between
//!   `--workers 1` and `--workers N`; every shard receives traffic; and
//!   fault confinement — chaos on a targeted subset leaves every
//!   untargeted shard's digest unchanged (router draining off).
//! * `--chaos` arms the default fleet fault planes (a fault storm plus
//!   a PP-M crash on the first eighth of the fleet).
//! * `--metrics-out` writes the merged fleet registry (JSON);
//!   `--digests-out` writes one `{"shard":..,"seed":..,"digest":..}`
//!   line per shard (JSONL) — the nightly artifacts.

use mtat_bench::harness;
use mtat_fleet::{Fleet, FleetConfig, RouterCfg, RoutingPolicy, ShardFaultPlane, ShardSize};
use mtat_tiermem::faults::{FaultKind, FaultPlan};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_f64 = |name: &str, default: f64| -> f64 {
        opt(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad {name}: {v:?}")))
        })
    };
    let parse_usize = |name: &str, default: usize| -> usize {
        opt(name).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("bad {name}: {v:?}")))
        })
    };

    let quick = flag("--quick");
    // Quick: many cheap shards (PR gate, exercises fleet-scale
    // claiming). Full: fewer shards over a longer simulated day with
    // the real policy (nightly).
    let n_shards = parse_usize("--shards", if quick { 1000 } else { 128 });
    let duration = parse_f64("--duration", if quick { 120.0 } else { 900.0 });
    let epoch = parse_f64("--epoch", if quick { 10.0 } else { 30.0 });
    let policy = opt("--policy").unwrap_or_else(|| {
        // Quick uses the heuristic PP-M (no SAC pretraining, ~8× the
        // shard throughput); the nightly full fleet runs the real agent.
        if quick {
            "mtat_full_heuristic".into()
        } else {
            "mtat_full".into()
        }
    });
    let seed = parse_f64("--seed", 0xF1EE7 as f64) as u64;
    let workers = parse_usize("--workers", harness::worker_count(n_shards));

    let routing = opt("--routing").map_or(RoutingPolicy::HotShardAware { hot_mult: 1.25 }, |v| {
        RoutingPolicy::parse(&v).unwrap_or_else(|| die(&format!("bad --routing: {v:?}")))
    });

    let mut cfg = FleetConfig::new(n_shards, seed, duration, epoch);
    cfg.policy = policy;
    cfg.shard_size = opt("--size").map_or(
        if quick {
            ShardSize::Tiny
        } else {
            ShardSize::Small
        },
        |v| match v.as_str() {
            "small" => ShardSize::Small,
            "tiny" => ShardSize::Tiny,
            _ => die(&format!("bad --size: {v:?} (small|tiny)")),
        },
    );
    cfg.router = RouterCfg {
        policy: routing,
        drain: flag("--drain"),
        ..RouterCfg::default()
    };
    cfg.self_heal = flag("--self-heal");
    cfg.metrics = opt("--metrics-out").is_some();
    cfg.trace_shard = opt("--trace-out").map(|_| 0);
    if flag("--chaos") {
        cfg.faults = default_chaos(n_shards, seed, duration);
    }

    eprintln!(
        "# fleet_sim: {n_shards} shards x {duration:.0}s sim, epoch {epoch:.0}s, \
         policy {}, routing {}, {workers} workers",
        cfg.policy,
        cfg.router.policy.label()
    );

    let fleet = Fleet::plan(cfg.clone()).unwrap_or_else(|e| die(&format!("plan failed: {e}")));
    let t0 = std::time::Instant::now();
    let result = fleet.run(workers);
    eprintln!("# fleet run: {:.1}s wall", t0.elapsed().as_secs_f64());

    if flag("--check") {
        run_checks(&cfg, &fleet, &result, workers);
    }

    if let Some(path) = opt("--metrics-out") {
        write_file(&path, &result.registry.to_json());
        eprintln!("# wrote fleet metrics to {path}");
    }
    if let Some(path) = opt("--trace-out") {
        if let Some(trace) = result.shards.first().and_then(|s| s.trace.as_deref()) {
            write_file(&path, trace);
            eprintln!("# wrote shard-0 trace to {path}");
        }
    }
    if let Some(path) = opt("--digests-out") {
        let mut lines = String::with_capacity(result.shards.len() * 64);
        for s in &result.shards {
            lines.push_str(&format!(
                "{{\"shard\":{},\"seed\":{},\"digest\":{}}}\n",
                s.shard, s.seed, s.digest
            ));
        }
        write_file(&path, &lines);
        eprintln!(
            "# wrote {} per-shard digests to {path}",
            result.shards.len()
        );
    }

    print_summary(&cfg, &result, workers, quick);
}

/// The default fleet chaos: a correlated fault storm plus a PP-M crash
/// confined to the first eighth of the fleet (at least one shard).
/// Intensity stays below the 0.9 poison threshold so the plan is safe
/// without the self-healing runtime; pass `--self-heal` for hotter
/// plans.
fn default_chaos(n_shards: usize, seed: u64, duration: f64) -> Vec<ShardFaultPlane> {
    let targeted = (n_shards / 8).max(1);
    vec![ShardFaultPlane {
        shards: 0..targeted,
        plan: FaultPlan::new(seed ^ 0x50AC)
            .with(
                FaultKind::FaultStorm { intensity: 0.6 },
                duration * 0.25 + 1.0,
                duration * 0.15,
            )
            .with(FaultKind::PpmCrash, duration * 0.6 + 1.0, duration * 0.05),
    }]
}

/// The `--check` gate: bit-identity across worker counts, universal
/// traffic delivery, and fault confinement on a sub-fleet.
fn run_checks(
    cfg: &FleetConfig,
    fleet: &Fleet,
    result: &mtat_fleet::fleet::FleetResult,
    workers: usize,
) {
    eprintln!("# check: replaying fleet with 1 worker for bit-identity");
    let serial = fleet.run(1);
    assert_eq!(
        serial.aggregate_digest, result.aggregate_digest,
        "aggregate digest diverged between 1 and {workers} workers"
    );
    for (a, b) in serial.shards.iter().zip(&result.shards) {
        assert_eq!(
            a.digest, b.digest,
            "shard {} digest diverged between 1 and {workers} workers",
            a.shard
        );
    }

    for s in &result.shards {
        assert!(s.lc_requests > 0.0, "shard {} received no traffic", s.shard);
        assert!(s.ticks > 0, "shard {} ran no ticks", s.shard);
    }

    // Confinement: chaos on a targeted subset of a small sub-fleet must
    // leave untargeted digests bit-identical (drain off, so routing
    // never sees the faults).
    eprintln!("# check: fault confinement on a sub-fleet");
    let sub = cfg.n_shards.min(64);
    let mut base_cfg = cfg.clone();
    base_cfg.n_shards = sub;
    base_cfg.faults.clear();
    base_cfg.router.drain = false;
    base_cfg.metrics = false;
    base_cfg.trace_shard = None;
    let mut chaos_cfg = base_cfg.clone();
    chaos_cfg.faults = default_chaos(sub, cfg.fleet_seed, cfg.duration_secs);
    let targeted = chaos_cfg.faults[0].shards.clone();
    let base = Fleet::plan(base_cfg)
        .expect("base sub-fleet plans")
        .run(workers);
    let chaos = Fleet::plan(chaos_cfg)
        .expect("chaos sub-fleet plans")
        .run(workers);
    let mut diverged = false;
    for (a, b) in base.shards.iter().zip(&chaos.shards) {
        if targeted.contains(&a.shard) {
            diverged |= a.digest != b.digest;
        } else {
            assert_eq!(
                a.digest, b.digest,
                "fault leaked into untargeted shard {}",
                a.shard
            );
        }
    }
    assert!(
        diverged,
        "chaos plan had no observable effect on targeted shards"
    );
    eprintln!("# check: all assertions passed");
}

fn print_summary(
    cfg: &FleetConfig,
    result: &mtat_fleet::fleet::FleetResult,
    workers: usize,
    quick: bool,
) {
    // Per-shard violation rates are the robust tail summary (a single
    // load-step transient makes worst_p99 infinite); worst_p99 is still
    // reported fleet-wide.
    let mut rates: Vec<f64> = result.shards.iter().map(|s| s.violation_rate()).collect();
    rates.sort_by(f64::total_cmp);
    let pct = |q: f64| rates[((rates.len() - 1) as f64 * q) as usize];
    let total_requests: f64 = result.shards.iter().map(|s| s.lc_requests).sum();
    println!("{{");
    println!("  \"mode\": \"{}\",", if quick { "quick" } else { "full" });
    println!("  \"shards\": {}, \"workers\": {workers},", cfg.n_shards);
    println!("  \"policy\": \"{}\",", cfg.policy);
    println!("  \"routing\": \"{}\",", cfg.router.policy.label());
    println!(
        "  \"duration_secs\": {}, \"epoch_secs\": {},",
        cfg.duration_secs, cfg.epoch_secs
    );
    println!("  \"seed\": {},", cfg.fleet_seed);
    println!("  \"chaos_planes\": {},", cfg.faults.len());
    println!("  \"lc_requests\": {total_requests:.0},");
    println!("  \"slo_violation_rate\": {:.6},", result.violation_rate());
    println!(
        "  \"be_total_throughput\": {:.1},",
        result.be_total_throughput()
    );
    println!(
        "  \"migration_gib\": {:.3},",
        result.total_migration_bytes() as f64 / (1u64 << 30) as f64
    );
    println!(
        "  \"failed_moves\": {},",
        result.shards.iter().map(|s| s.failed_moves).sum::<u64>()
    );
    println!("  \"dropped_demand\": {:.4},", result.dropped_demand);
    // A saturated shard has an unbounded queueing P99; `inf` is not
    // valid JSON, so saturation prints as null.
    let ms = |v: f64| {
        if v.is_finite() {
            format!("{:.3}", v * 1e3)
        } else {
            "null".into()
        }
    };
    println!("  \"worst_p99_ms\": {},", ms(result.worst_p99()));
    println!(
        "  \"shard_violation_rate\": {{ \"p50\": {:.6}, \"p90\": {:.6}, \"p99\": {:.6} }},",
        pct(0.5),
        pct(0.9),
        pct(0.99)
    );
    println!(
        "  \"aggregate_digest\": \"{:016x}\"",
        result.aggregate_digest
    );
    println!("}}");
}

fn write_file(path: &str, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
}

fn die(msg: &str) -> ! {
    eprintln!("# fleet_sim: {msg}");
    std::process::exit(2);
}
