//! Fleet-level open-loop traffic: who wants how much, from which shard.
//!
//! Demand is generated per **routing epoch** (a coarser grain than the
//! simulation tick — the router re-balances every `epoch_secs`, the
//! shards tick every `SimConfig::tick_secs`). Each epoch has:
//!
//! * a **fleet level** — a diurnal base curve times the
//!   `lc_load_mult` of a fleet-scope scenario phase (flash crowds
//!   multiply the whole fleet's demand), in units of *one shard's
//!   reference load* (the LC knee an `Experiment` normalizes against);
//! * a **shard-affinity vector** — the fraction of fleet requests whose
//!   keys hash toward each shard. This is a `workloads::access`
//!   popularity distribution over shard ids, mutated per epoch by the
//!   same `workloads::scenario` machinery the single-host adversarial
//!   matrix uses — at fleet scope a `ZipfShift` sharpens request skew
//!   across shards, a `HotSetRotate` migrates which shards are hot, a
//!   `BeBurst` multiplies regional demand, a `FlashCrowd` surges the
//!   fleet. Shards play the role of pages; nothing in the scenario
//!   engine knows the difference.
//!
//! Per-epoch demand for shard `i` is `level · n_shards · w_i` — with a
//! uniform affinity vector every shard sees exactly `level`, and skew
//! concentrates the same total onto fewer shards. What a shard
//! actually *receives* is the router's business ([`crate::routing`]).

use mtat_workloads::access::{AccessPattern, Popularity, PopularityError};
use mtat_workloads::scenario::{BeSelector, Mutator, ScenarioError, ScenarioSpec};

/// A fleet traffic-generation failure: a malformed spec or scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// A scalar parameter is out of range.
    Invalid {
        /// The offending parameter.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The fleet-scope scenario failed to compile.
    Scenario(ScenarioError),
    /// The shard-affinity distribution is malformed.
    Popularity(PopularityError),
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::Invalid { what, detail } => write!(f, "fleet traffic: {what} {detail}"),
            TrafficError::Scenario(e) => write!(f, "fleet traffic: {e}"),
            TrafficError::Popularity(e) => write!(f, "fleet traffic: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<ScenarioError> for TrafficError {
    fn from(e: ScenarioError) -> Self {
        TrafficError::Scenario(e)
    }
}

impl From<PopularityError> for TrafficError {
    fn from(e: PopularityError) -> Self {
        TrafficError::Popularity(e)
    }
}

/// What the fleet's users ask for, before routing.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Diurnal period in simulated seconds. Quick fleets compress a
    /// day into the run so the curve is actually exercised.
    pub day_secs: f64,
    /// Fleet level at the diurnal trough (fraction of one shard's
    /// reference load).
    pub trough: f64,
    /// Added level at the diurnal peak: `level(t) = trough +
    /// lift · sin²(π t / day_secs)`, the soak harness's day curve.
    pub lift: f64,
    /// Base shard-affinity skew. A mild Zipf exponent models realistic
    /// key-hash imbalance: `Zipfian { exponent: 0.15 }` over 1000
    /// shards puts the hottest shard at ~2.8× the coldest, not the
    /// pathological head a page-scale exponent would give.
    pub pattern: AccessPattern,
    /// Fleet-scope scenario (epoch-grain mutators), or `None` for a
    /// static affinity vector.
    pub scenario: Option<ScenarioSpec>,
}

impl TrafficSpec {
    /// The default fleet day: trough 0.35, peak 0.75, mild affinity
    /// skew, no scenario.
    #[must_use]
    pub fn diurnal(day_secs: f64) -> Self {
        Self {
            day_secs,
            trough: 0.35,
            lift: 0.4,
            pattern: AccessPattern::Zipfian { exponent: 0.15 },
            scenario: None,
        }
    }

    /// Attaches the standard fleet-scope scenario for a run of
    /// `duration_secs`: continuous hot-shard rotation from the start,
    /// a Zipf sharpening of request skew at mid-run, and a 1.3× flash
    /// crowd over the 70–80 % window — the fleet-scale rendition of the
    /// single-host adversarial suite. The crowd multiplier takes the
    /// diurnal peak to ~0.98 of the per-shard reference load: the
    /// *median* shard stays just under the knee while the hot tail
    /// saturates, which is exactly the regime that separates the
    /// routing policies.
    #[must_use]
    pub fn with_default_scenario(mut self, seed: u64, duration_secs: f64) -> Self {
        self.scenario = Some(ScenarioSpec {
            name: "fleet_traffic",
            seed,
            mutators: vec![
                Mutator::HotSetRotate {
                    be: BeSelector::One(0),
                    start_secs: 0.0,
                    period_secs: (duration_secs / 6.0).max(1.0),
                    stride_frac: 0.2,
                    jitter_frac: 0.2,
                },
                Mutator::ZipfShift {
                    be: BeSelector::One(0),
                    at_secs: duration_secs * 0.5,
                    exponent: 0.45,
                },
                Mutator::FlashCrowd {
                    at_secs: duration_secs * 0.7,
                    dur_secs: duration_secs * 0.1,
                    load_mult: 1.3,
                },
            ],
        });
        self
    }

    /// Generates the per-epoch fleet demand for `n_shards` shards over
    /// `ceil(duration_secs / epoch_secs)` epochs.
    ///
    /// # Errors
    ///
    /// [`TrafficError`] for non-positive durations/epochs, a zero-shard
    /// fleet, non-finite curve parameters, or a malformed scenario.
    pub fn generate(
        &self,
        n_shards: usize,
        duration_secs: f64,
        epoch_secs: f64,
    ) -> Result<FleetTraffic, TrafficError> {
        let bad = |what: &'static str, detail: String| TrafficError::Invalid { what, detail };
        if n_shards == 0 {
            return Err(bad("n_shards", "must be at least 1".into()));
        }
        for (what, v) in [
            ("duration_secs", duration_secs),
            ("epoch_secs", epoch_secs),
            ("day_secs", self.day_secs),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(bad(what, format!("must be finite and positive, got {v}")));
            }
        }
        for (what, v) in [("trough", self.trough), ("lift", self.lift)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(bad(
                    what,
                    format!("must be finite and non-negative, got {v}"),
                ));
            }
        }

        let epochs = (duration_secs / epoch_secs).ceil() as usize;
        let schedule = match &self.scenario {
            Some(spec) => Some(spec.compile(epoch_secs, duration_secs, 1)?),
            None => None,
        };

        let base_weights = Popularity::try_new(self.pattern, n_shards)?;
        let mut level = Vec::with_capacity(epochs);
        let mut demand = Vec::with_capacity(epochs);
        // Phases are piecewise-constant over epochs, so the (possibly
        // mutated) affinity vector is re-materialized only on a phase
        // change.
        let mut cached: Option<(u32, Vec<f64>)> = None;
        for e in 0..epochs {
            // Mid-epoch sampling, matching the scenario compiler's own
            // quantization convention.
            let t = (e as f64 + 0.5) * epoch_secs;
            let day_frac = (t % self.day_secs) / self.day_secs;
            let s = (std::f64::consts::PI * day_frac).sin();
            let mut lvl = self.trough + self.lift * s * s;

            let (mult, weights): (f64, &[f64]) = match &schedule {
                None => (1.0, base_weights.weights()),
                Some(sched) => {
                    let phase = sched.phase_at(e as u64);
                    lvl *= phase.lc_load_mult;
                    let fresh = !matches!(&cached, Some((id, _)) if *id == phase.id);
                    if fresh {
                        let w = match &phase.be[0].pop {
                            Some(m) => m.materialize(self.pattern, n_shards)?.weights().to_vec(),
                            None => base_weights.weights().to_vec(),
                        };
                        cached = Some((phase.id, w));
                    }
                    let (_, w) = cached.as_ref().expect("cached above");
                    (phase.be[0].rate_mult, w.as_slice())
                }
            };

            let scale = lvl * mult * n_shards as f64;
            demand.push(weights.iter().map(|&w| scale * w).collect::<Vec<f64>>());
            level.push(lvl * mult);
        }

        Ok(FleetTraffic {
            epoch_secs,
            level,
            demand,
        })
    }
}

/// The generated open-loop demand: per-epoch fleet levels and per-shard
/// demand in shard-load units.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTraffic {
    /// Routing-epoch length in seconds.
    pub epoch_secs: f64,
    /// Fleet level per epoch (mean shard demand).
    pub level: Vec<f64>,
    /// Demand per epoch per shard (`demand[e][i]`).
    pub demand: Vec<Vec<f64>>,
}

impl FleetTraffic {
    /// Number of epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.demand.len()
    }

    /// Total fleet demand in epoch `e` (shard-load units).
    #[must_use]
    pub fn total_demand(&self, e: usize) -> f64 {
        self.demand[e].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_conserves_level_times_shards() {
        let spec = TrafficSpec::diurnal(240.0);
        let t = spec.generate(64, 240.0, 10.0).expect("valid spec");
        assert_eq!(t.epochs(), 24);
        for e in 0..t.epochs() {
            let total = t.total_demand(e);
            assert!(
                (total - t.level[e] * 64.0).abs() < 1e-9 * total.max(1.0),
                "epoch {e}: total {total} vs level {}",
                t.level[e]
            );
        }
    }

    #[test]
    fn diurnal_curve_peaks_mid_day() {
        let spec = TrafficSpec::diurnal(240.0);
        let t = spec.generate(8, 240.0, 10.0).expect("valid spec");
        let mid = t.level[t.epochs() / 2];
        assert!(
            mid > t.level[0],
            "midday {mid} should exceed trough {}",
            t.level[0]
        );
        assert!(mid <= 0.7501 && t.level[0] >= 0.3499);
    }

    #[test]
    fn scenario_flash_crowd_lifts_the_window() {
        let dur = 300.0;
        let spec = TrafficSpec {
            pattern: AccessPattern::Uniform,
            ..TrafficSpec::diurnal(dur)
        }
        .with_default_scenario(11, dur);
        let base = TrafficSpec {
            scenario: None,
            pattern: AccessPattern::Uniform,
            ..TrafficSpec::diurnal(dur)
        };
        let with = spec.generate(16, dur, 10.0).expect("valid");
        let without = base.generate(16, dur, 10.0).expect("valid");
        // Epoch 22 sits inside the [0.7, 0.8) flash-crowd window.
        let e = 22;
        assert!((with.level[e] / without.level[e] - 1.3).abs() < 1e-9);
        // Outside the window the curves agree.
        assert!((with.level[2] - without.level[2]).abs() < 1e-12);
    }

    #[test]
    fn zipf_shift_sharpens_affinity_skew() {
        let dur = 300.0;
        let spec = TrafficSpec::diurnal(dur).with_default_scenario(11, dur);
        let t = spec.generate(64, dur, 10.0).expect("valid");
        let spread = |e: usize| {
            let max = t.demand[e].iter().cloned().fold(0.0, f64::max);
            max * 64.0 / t.total_demand(e)
        };
        // After the mid-run ZipfShift (exponent 0.15 → 0.45) the
        // hottest shard carries a larger multiple of the mean.
        assert!(
            spread(20) > spread(2) * 1.5,
            "{} vs {}",
            spread(20),
            spread(2)
        );
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let dur = 200.0;
        let spec = TrafficSpec::diurnal(dur).with_default_scenario(5, dur);
        let a = spec.generate(32, dur, 5.0).expect("valid");
        let b = spec.generate(32, dur, 5.0).expect("valid");
        assert_eq!(a, b);
        let other = TrafficSpec::diurnal(dur).with_default_scenario(6, dur);
        let c = other.generate(32, dur, 5.0).expect("valid");
        assert_ne!(a, c, "rotation jitter must follow the seed");
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        let spec = TrafficSpec::diurnal(100.0);
        assert!(matches!(
            spec.generate(0, 100.0, 10.0),
            Err(TrafficError::Invalid {
                what: "n_shards",
                ..
            })
        ));
        assert!(spec.generate(4, 0.0, 10.0).is_err());
        assert!(spec.generate(4, 100.0, -1.0).is_err());
        let mut bad = TrafficSpec::diurnal(100.0);
        bad.trough = f64::NAN;
        assert!(bad.generate(4, 100.0, 10.0).is_err());
    }
}
