//! Fleet anomaly detection: robust outlier scoring over shard outcomes.
//!
//! A fleet summary answers "how is the fleet doing"; an operator also
//! needs "which hosts are *not like the others*". This module scores
//! every shard against the fleet with a **MAD-based robust z-score**
//! per feature — SLO violation rate, migration churn, and failed page
//! moves — and flags shards whose worst feature exceeds a threshold.
//!
//! The median/MAD estimator is the right tool here because the faulty
//! shards themselves are in the sample: a mean/stddev z-score lets a
//! handful of storm-hit shards inflate the spread until they hide
//! inside it (masking), while the median and MAD have a 50 %
//! breakdown point — chaos confined to an eighth of the fleet cannot
//! move them.
//!
//! Scoring is pure arithmetic over [`ShardOutcome`] summaries: no RNG,
//! no wall clock, bit-identical across replays and worker counts, and
//! strictly read-only — detection never feeds back into routing or
//! shard physics.

use mtat_obs::registry::{GaugeMerge, Registry};

use crate::fleet::ShardOutcome;

/// Scale factor turning a MAD into a consistent σ estimate for normal
/// data (`1/Φ⁻¹(3/4)`); the conventional robust z-score denominator.
const MAD_TO_SIGMA: f64 = 1.0 / 0.674_489_75;

/// Scores are capped here so a collapsed scale can never print an
/// infinity into JSON or a threshold comparison.
pub const SCORE_CAP: f64 = 1e3;

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Robust z-score a shard's worst feature must reach to be flagged.
    /// 3.5 is the conventional Iglewicz–Hoaglin cutoff.
    pub threshold: f64,
    /// How many top outliers the status report carries.
    pub top_k: usize,
    /// Materiality floor on the violation-rate scale (absolute rate).
    /// With the default threshold, a shard must violate at least
    /// `threshold * violation_floor` above the fleet median to flag on
    /// this feature alone — a homogeneous fleet (MAD ≈ 0) must not page
    /// on percentage-point noise.
    pub violation_floor: f64,
    /// Materiality floor on the churn scale, as a fraction of the
    /// fleet-median migration bytes (with a 1 MiB absolute minimum for
    /// near-zero-churn fleets).
    pub churn_floor_frac: f64,
    /// Materiality floor on the failed-moves scale (absolute moves). In
    /// a clean fleet every shard has exactly zero failures, so the MAD
    /// collapses; this floor makes "a handful of failures" the unit.
    pub failed_floor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            threshold: 3.5,
            top_k: 8,
            violation_floor: 0.02,
            churn_floor_frac: 0.25,
            failed_floor: 2.0,
        }
    }
}

/// One shard's anomaly verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAnomaly {
    /// Shard id.
    pub shard: usize,
    /// The shard's overall score: the worst (largest) feature z-score.
    pub score: f64,
    /// Robust z of the SLO violation rate.
    pub violation_z: f64,
    /// Robust z of migration churn (bytes moved).
    pub churn_z: f64,
    /// Robust z of failed page moves.
    pub failed_z: f64,
    /// The raw violation rate, for the status report.
    pub violation_rate: f64,
}

/// The fleet-wide detection result.
#[derive(Debug, Clone)]
pub struct AnomalyReport {
    /// Per-shard overall scores, in shard order (one per shard).
    pub scores: Vec<f64>,
    /// Shards at or above the threshold, highest score first.
    pub flagged: Vec<ShardAnomaly>,
    /// The threshold the report was built with.
    pub threshold: f64,
    /// Top-k cap carried from the config (used by the status JSON).
    pub top_k: usize,
}

impl AnomalyReport {
    /// Whether shard `i` was flagged.
    #[must_use]
    pub fn is_flagged(&self, shard: usize) -> bool {
        self.flagged.iter().any(|a| a.shard == shard)
    }

    /// The highest score in the fleet (0 for an empty fleet).
    #[must_use]
    pub fn max_score(&self) -> f64 {
        self.scores.iter().copied().fold(0.0, f64::max)
    }

    /// The top-k outliers as a JSON array fragment for `/status`:
    /// `[{"shard":3,"score":12.5,"violation_rate":0.21},...]`. Always
    /// valid JSON — scores are capped, never infinite.
    #[must_use]
    pub fn top_outliers_json(&self) -> String {
        let mut s = String::from("[");
        for (i, a) in self.flagged.iter().take(self.top_k).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"shard\":{},\"score\":{:.2},\"violation_rate\":{:.6}}}",
                a.shard, a.score, a.violation_rate
            ));
        }
        s.push(']');
        s
    }

    /// Records the verdict into a (merged fleet) registry as
    /// `fleet.anomaly.*` metrics: flagged count as a counter, the
    /// fleet-max score as a `max`-merged gauge (so re-merging partial
    /// fleets keeps the true maximum), and the threshold for context.
    pub fn annotate(&self, registry: &mut Registry) {
        registry.counter_add("fleet.anomaly.flagged", self.flagged.len() as u64);
        registry.gauge_set_merged("fleet.anomaly.max_score", self.max_score(), GaugeMerge::Max);
        registry.gauge_set("fleet.anomaly.threshold", self.threshold);
    }
}

/// Median of a sample (mean of the middle pair for even sizes). Returns
/// 0 for an empty sample.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// One-sided robust z-scores for a feature vector: how many robust σ
/// each value sits *above* the fleet median (values at or below the
/// median score 0 — an unusually *quiet* shard is not an incident).
///
/// The scale is `max(MAD·1.4826, floor)`. The floor does two jobs: it
/// keeps a collapsed MAD (more than half the fleet identical — routine
/// for failed-move counts) from turning every ulp of deviation into an
/// alarm, and it deliberately does **not** fall back to mean-based
/// spread, which the outliers themselves would inflate until they hid
/// inside it.
fn robust_z(xs: &[f64], floor: f64) -> Vec<f64> {
    let med = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    let mad = median(&devs);
    let scale = (mad * MAD_TO_SIGMA).max(floor);
    xs.iter()
        .map(|x| {
            let d = x - med;
            if d <= 0.0 {
                0.0
            } else if scale > 0.0 {
                (d / scale).min(SCORE_CAP)
            } else {
                SCORE_CAP
            }
        })
        .collect()
}

/// Scores every shard against the fleet and returns the report.
/// Deterministic: pure arithmetic over the outcomes, in shard order.
#[must_use]
pub fn detect(shards: &[ShardOutcome], cfg: &AnomalyConfig) -> AnomalyReport {
    let violation: Vec<f64> = shards.iter().map(ShardOutcome::violation_rate).collect();
    let churn: Vec<f64> = shards.iter().map(|s| s.migration_bytes as f64).collect();
    let failed: Vec<f64> = shards.iter().map(|s| s.failed_moves as f64).collect();
    let churn_floor = (cfg.churn_floor_frac * median(&churn)).max((1u64 << 20) as f64);
    let vz = robust_z(&violation, cfg.violation_floor);
    let cz = robust_z(&churn, churn_floor);
    let fz = robust_z(&failed, cfg.failed_floor);

    let mut scores = Vec::with_capacity(shards.len());
    let mut flagged = Vec::new();
    for (i, s) in shards.iter().enumerate() {
        let score = vz[i].max(cz[i]).max(fz[i]);
        scores.push(score);
        if score >= cfg.threshold {
            flagged.push(ShardAnomaly {
                shard: s.shard,
                score,
                violation_z: vz[i],
                churn_z: cz[i],
                failed_z: fz[i],
                violation_rate: violation[i],
            });
        }
    }
    flagged.sort_by(|a, b| f64::total_cmp(&b.score, &a.score).then(a.shard.cmp(&b.shard)));
    AnomalyReport {
        scores,
        flagged,
        threshold: cfg.threshold,
        top_k: cfg.top_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(shard: usize, viol_rate: f64, migration: u64, failed: u64) -> ShardOutcome {
        ShardOutcome {
            shard,
            seed: shard as u64,
            digest: 0,
            ticks: 100,
            lc_requests: 1000.0,
            lc_violated_requests: 1000.0 * viol_rate,
            be_throughput: 100.0,
            migration_bytes: migration,
            failed_moves: failed,
            retried_moves: 0,
            mean_level: 0.5,
            worst_p99: 0.01,
            registry: None,
            trace: None,
        }
    }

    /// A uniform fleet with one hot shard: only that shard is flagged.
    #[test]
    fn single_outlier_is_flagged() {
        let mut shards: Vec<ShardOutcome> = (0..32).map(|i| outcome(i, 0.01, 1 << 20, 0)).collect();
        shards[7].lc_violated_requests = 600.0; // 60 % violation rate
        let report = detect(&shards, &AnomalyConfig::default());
        assert_eq!(report.flagged.len(), 1);
        assert_eq!(report.flagged[0].shard, 7);
        assert!(report.is_flagged(7));
        assert!(!report.is_flagged(6));
        assert!(report.max_score() >= 3.5);
    }

    /// A perfectly homogeneous fleet flags nothing — a zero MAD must
    /// not divide into spurious infinities.
    #[test]
    fn homogeneous_fleet_is_quiet() {
        let shards: Vec<ShardOutcome> = (0..16).map(|i| outcome(i, 0.02, 4096, 0)).collect();
        let report = detect(&shards, &AnomalyConfig::default());
        assert!(report.flagged.is_empty(), "{:?}", report.flagged);
        assert_eq!(report.max_score(), 0.0);
    }

    /// Failed moves separate cleanly: most of the fleet has exactly
    /// zero (collapsed MAD), so the materiality floor becomes the unit
    /// — shards with meaningful failure counts flag, a shard one or two
    /// failures above the median does not.
    #[test]
    fn failed_moves_flag_against_a_clean_fleet() {
        let mut shards: Vec<ShardOutcome> = (0..24)
            .map(|i| outcome(i, 0.01 + 0.001 * (i % 3) as f64, 1 << 20, 0))
            .collect();
        shards[3].failed_moves = 17;
        shards[4].failed_moves = 8;
        shards[5].failed_moves = 1; // below materiality: not an incident
        let report = detect(&shards, &AnomalyConfig::default());
        assert!(report.is_flagged(3));
        assert!(report.is_flagged(4));
        assert!(!report.is_flagged(5));
        assert_eq!(report.flagged.len(), 2);
        // Highest score first; scores stay finite and JSON-safe.
        assert_eq!(report.flagged[0].shard, 3);
        assert!(report.flagged.iter().all(|a| a.score.is_finite()));
        assert!(report.flagged[0].failed_z <= SCORE_CAP);
    }

    /// Masking resistance: chaos on a quarter of the fleet cannot hide
    /// itself by inflating the spread (the MAD breakdown point is 50 %).
    #[test]
    fn robust_to_a_quarter_of_the_fleet_misbehaving() {
        let mut shards: Vec<ShardOutcome> = (0..32).map(|i| outcome(i, 0.01, 1 << 20, 0)).collect();
        for s in shards.iter_mut().take(8) {
            s.lc_violated_requests = 500.0;
            s.failed_moves = 40;
        }
        let report = detect(&shards, &AnomalyConfig::default());
        for i in 0..8 {
            assert!(report.is_flagged(i), "chaotic shard {i} masked");
        }
        for i in 8..32 {
            assert!(!report.is_flagged(i), "clean shard {i} falsely flagged");
        }
    }

    /// Quiet outliers (unusually *low* violation) are not incidents.
    #[test]
    fn low_side_deviations_are_ignored() {
        let mut shards: Vec<ShardOutcome> = (0..16).map(|i| outcome(i, 0.2, 1 << 20, 0)).collect();
        shards[5].lc_violated_requests = 0.0;
        let report = detect(&shards, &AnomalyConfig::default());
        assert!(!report.is_flagged(5));
    }

    /// The status fragment is valid JSON-shaped text honoring top_k,
    /// and annotation records the `fleet.anomaly.*` metrics.
    #[test]
    fn report_renders_and_annotates() {
        let mut shards: Vec<ShardOutcome> = (0..16).map(|i| outcome(i, 0.01, 1 << 20, 0)).collect();
        shards[2].failed_moves = 30;
        shards[11].failed_moves = 9;
        let cfg = AnomalyConfig {
            top_k: 1,
            ..AnomalyConfig::default()
        };
        let report = detect(&shards, &cfg);
        let json = report.top_outliers_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"shard\":").count(), 1, "{json}");
        let mut reg = Registry::new();
        report.annotate(&mut reg);
        assert_eq!(reg.counter("fleet.anomaly.flagged"), 2);
        assert_eq!(
            reg.gauge("fleet.anomaly.max_score"),
            Some(report.max_score())
        );
        assert_eq!(
            reg.gauge_merge("fleet.anomaly.max_score"),
            Some(GaugeMerge::Max)
        );
    }

    /// Detection is a pure function of the outcomes.
    #[test]
    fn detection_is_deterministic() {
        let mut shards: Vec<ShardOutcome> = (0..20)
            .map(|i| outcome(i, 0.01 * (1 + i % 4) as f64, (i as u64) << 18, 0))
            .collect();
        shards[13].failed_moves = 3;
        let a = detect(&shards, &AnomalyConfig::default());
        let b = detect(&shards, &AnomalyConfig::default());
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.flagged, b.flagged);
    }

    #[test]
    fn empty_fleet_is_safe() {
        let report = detect(&[], &AnomalyConfig::default());
        assert!(report.scores.is_empty());
        assert!(report.flagged.is_empty());
        assert_eq!(report.max_score(), 0.0);
        assert_eq!(report.top_outliers_json(), "[]");
    }
}
