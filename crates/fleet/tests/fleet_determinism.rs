//! Fleet determinism contract: seed derivation, worker-count and
//! execution-order bit-identity, routing conservation, fault
//! confinement.
//!
//! These are the properties `fleet_sim --check` gates in CI, proven
//! here at test scale (small fleets, the cheap heuristic policy) so a
//! regression is caught by `cargo test` before the binary gate runs.

use mtat_fleet::routing::{route, waterfill, RouterCfg, RoutingPolicy};
use mtat_fleet::{shard_seed, Fleet, FleetConfig, ShardFaultPlane, ShardSize, TrafficSpec};
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_workloads::access::AccessPattern;
use proptest::prelude::*;

fn quick_fleet(n: usize, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::new(n, seed, 120.0, 10.0);
    cfg.policy = "mtat_full_heuristic".into();
    cfg.shard_size = ShardSize::Tiny;
    cfg
}

/// Workers-1 vs workers-N produce bit-identical per-shard digests and
/// the same aggregate digest — the headline fleet contract.
#[test]
fn fleet_digests_are_worker_count_invariant() {
    let fleet = Fleet::plan(quick_fleet(10, 0xBEEF)).expect("valid config");
    let serial = fleet.run(1);
    for workers in [2, 5, 16] {
        let parallel = fleet.run(workers);
        assert_eq!(
            serial.aggregate_digest, parallel.aggregate_digest,
            "aggregate digest diverged at {workers} workers"
        );
        for (a, b) in serial.shards.iter().zip(&parallel.shards) {
            assert_eq!(
                a.digest, b.digest,
                "shard {} diverged at {workers} workers",
                a.shard
            );
            assert_eq!(a.seed, b.seed);
        }
    }
}

/// Each shard is a pure function of `(config, id)`: running shards in
/// reverse order reproduces the forward digests exactly.
#[test]
fn shard_results_are_execution_order_invariant() {
    let fleet = Fleet::plan(quick_fleet(6, 0xCAFE)).expect("valid config");
    let forward: Vec<u64> = (0..6).map(|i| fleet.run_shard(i).digest).collect();
    let reverse: Vec<u64> = (0..6).rev().map(|i| fleet.run_shard(i).digest).collect();
    for (i, (f, r)) in forward.iter().zip(reverse.iter().rev()).enumerate() {
        assert_eq!(f, r, "shard {i} depends on execution order");
    }
}

/// Chaos on a targeted shard range must not perturb any untargeted
/// shard (router draining off — routing never sees the fault planes).
#[test]
fn fault_planes_are_confined_without_drain() {
    let base = Fleet::plan(quick_fleet(8, 0xD00D)).expect("valid config");
    let mut chaos_cfg = quick_fleet(8, 0xD00D);
    chaos_cfg.faults = vec![ShardFaultPlane {
        shards: 2..4,
        plan: FaultPlan::new(3)
            .with(FaultKind::FaultStorm { intensity: 0.6 }, 20.0, 40.0)
            .with(FaultKind::PpmCrash, 80.0, 10.0),
    }];
    let chaos = Fleet::plan(chaos_cfg).expect("valid config");
    let a = base.run(3);
    let b = chaos.run(3);
    let mut hit = 0;
    for (x, y) in a.shards.iter().zip(&b.shards) {
        if (2..4).contains(&x.shard) {
            hit += u32::from(x.digest != y.digest);
        } else {
            assert_eq!(x.digest, y.digest, "fault leaked into shard {}", x.shard);
        }
    }
    assert!(
        hit > 0,
        "storm + crash left no trace on the targeted shards"
    );
}

/// With draining on, the router *is* allowed to shift load away from
/// faulted shards — confinement of the load trace no longer holds, but
/// determinism still does.
#[test]
fn draining_reroutes_deterministically() {
    let mut cfg = quick_fleet(8, 0x7EA);
    cfg.router.drain = true;
    cfg.faults = vec![ShardFaultPlane {
        shards: 0..2,
        plan: FaultPlan::new(1).with(FaultKind::MigrationStall, 30.0, 60.0),
    }];
    let fleet = Fleet::plan(cfg).expect("valid config");
    // Drained epochs cap the targeted shards well below the others.
    let drained_peak = fleet.routed().levels[0]
        .iter()
        .skip(3)
        .take(6)
        .cloned()
        .fold(0.0, f64::max);
    assert!(
        drained_peak <= fleet.config().router.level_cap * fleet.config().router.drain_frac + 1e-12,
        "drain did not cap the faulted shard: {drained_peak}"
    );
    assert_eq!(fleet.run(1).aggregate_digest, fleet.run(4).aggregate_digest);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seed derivation: per-shard seeds never collide within a fleet,
    /// are independent of every other shard's existence (order
    /// independence: the seed for shard `i` does not depend on how many
    /// shards there are), and differ across fleet seeds.
    #[test]
    fn shard_seed_derivation_is_collision_free(fleet_seed in 0u64..u64::MAX, n in 2usize..600) {
        let seeds: Vec<u64> = (0..n).map(|i| shard_seed(fleet_seed, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n);
        // Order/extent independence: same id, same seed, any fleet size.
        prop_assert_eq!(shard_seed(fleet_seed, 0), seeds[0]);
        prop_assert_eq!(shard_seed(fleet_seed, n - 1), seeds[n - 1]);
        // Distinct fleets get distinct streams for the same shard id.
        prop_assert!(shard_seed(fleet_seed ^ 1, 0) != seeds[0]);
    }

    /// Water-filling conserves load, respects capacities, and
    /// equalizes: no shard sits below the common level while another
    /// unsaturated shard sits above it.
    #[test]
    fn waterfill_conserves_and_equalizes(
        caps in prop::collection::vec(0.0f64..2.0, 1..40),
        target in 0.0f64..60.0,
    ) {
        let fill = waterfill(&caps, target);
        let total_cap: f64 = caps.iter().sum();
        let placed: f64 = fill.iter().sum();
        prop_assert!((placed - target.min(total_cap)).abs() < 1e-9);
        let mut lambda = 0.0f64;
        for (f, c) in fill.iter().zip(&caps) {
            prop_assert!(*f <= c + 1e-12, "assignment above capacity");
            if f < &(c - 1e-9) {
                lambda = lambda.max(*f);
            }
        }
        for (f, c) in fill.iter().zip(&caps) {
            if f < &(c - 1e-9) {
                prop_assert!((f - lambda).abs() < 1e-9, "unsaturated shards must share one level");
            }
        }
    }

    /// Every routing policy conserves demand up to explicit drops and
    /// never breaches the level cap.
    #[test]
    fn routing_conserves_demand(
        n in 2usize..24,
        exponent in 0.0f64..0.8,
        policy_ix in 0usize..3,
    ) {
        let policy = [
            RoutingPolicy::StaticHash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::HotShardAware { hot_mult: 1.25 },
        ][policy_ix];
        let pattern = if exponent < 1e-3 {
            AccessPattern::Uniform
        } else {
            AccessPattern::Zipfian { exponent }
        };
        let traffic = TrafficSpec { pattern, ..TrafficSpec::diurnal(120.0) }
            .generate(n, 120.0, 10.0)
            .expect("valid spec");
        let cfg = RouterCfg { policy, ..RouterCfg::default() };
        let caps = vec![vec![cfg.level_cap; n]; traffic.epochs()];
        let routed = route(&traffic, &caps, &cfg);
        for e in 0..traffic.epochs() {
            let placed: f64 = routed.levels.iter().map(|l| l[e]).sum();
            prop_assert!((placed + routed.dropped[e] - traffic.total_demand(e)).abs() < 1e-9);
            for l in &routed.levels {
                prop_assert!(l[e] <= cfg.level_cap + 1e-12);
            }
        }
    }
}
