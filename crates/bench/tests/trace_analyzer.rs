//! End-to-end acceptance tests for `mtat-trace`: a seeded traced run's
//! document must round-trip through the offline analyzer, every
//! decision boundary must reconstruct its full causal chain, and the
//! Chrome export must be schema-valid trace-event JSON.

use mtat_bench::trace;
use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::runner::Experiment;
use mtat_obs::json::{self, Value};
use mtat_obs::Obs;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

/// One seeded traced MTAT run, returned as the written trace document.
fn traced_run() -> String {
    let mut lc = LcSpec::redis();
    lc.rss_bytes = (1.2 * GIB as f64) as u64;
    let mut be = BeSpec::sssp();
    be.rss_bytes = 2 * GIB;
    let exp = Experiment::new(
        SimConfig::small_test(),
        lc,
        LoadPattern::staircase(&[0.4, 0.9, 0.5], 15.0),
        vec![be],
    )
    .with_duration(45.0);
    let tele = Obs::traced();
    let mut policy = MtatPolicy::new(MtatConfig::full(), &exp.cfg, &exp.lc, &exp.bes);
    exp.with_obs(tele.clone()).run(&mut policy);
    tele.trace_json().expect("traced handle")
}

#[test]
fn analyzer_round_trips_a_seeded_run() {
    let text = traced_run();

    // The file path is the CLI's interface; exercise it end to end.
    let path = std::env::temp_dir().join(format!("mtat_trace_test_{}.json", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path").to_string();
    std::fs::write(&path, &text).expect("write trace");
    let doc = trace::load_trace(&path).expect("analyzer parses its own format");
    std::fs::remove_file(&path).ok();

    assert_eq!(doc.version, 1);
    assert_eq!(doc.dropped_spans, 0);
    assert!(!doc.spans.is_empty());
    assert!(!doc.provenance.is_empty(), "run must leave provenance");

    // `summary` covers the whole taxonomy.
    let summary = trace::summary(&doc);
    for phase in ["run", "tick", "sample", "track", "ppm-plan", "ppe-enforce"] {
        assert!(summary.contains(phase), "{phase} missing:\n{summary}");
    }

    // `slowest-phases` renders full root-to-leaf paths.
    let slow = trace::slowest_phases(&doc, 5);
    assert_eq!(slow.lines().count(), 6, "header + 5 rows:\n{slow}");
    assert!(slow.contains("run"), "paths must reach the root:\n{slow}");

    // `plan <tick>` reconstructs the input → decision → enforcement
    // chain for EVERY decision boundary of the run.
    let ticks: Vec<u64> = doc
        .provenance
        .iter()
        .filter_map(|r| r.get("tick").and_then(Value::as_u64))
        .collect();
    assert!(!ticks.is_empty());
    for t in &ticks {
        let chain = trace::plan_chain(&doc, *t).expect("boundary reconstructs");
        for needle in ["inputs:", "mode:", "clamps:", "plan:", "enforce:"] {
            assert!(
                chain.contains(needle),
                "{needle} missing at tick {t}:\n{chain}"
            );
        }
    }
    // All but the last decision carry a concrete enforcement outcome.
    for t in &ticks[..ticks.len() - 1] {
        let chain = trace::plan_chain(&doc, *t).expect("boundary reconstructs");
        assert!(
            chain.contains("granted_pages"),
            "enforcement missing at tick {t}:\n{chain}"
        );
    }
    // A tick that is not a boundary names the ones that are.
    let miss = trace::plan_chain(&doc, 1_000_000).expect_err("not a boundary");
    assert!(miss.contains("decision boundaries:"), "{miss}");
}

#[test]
fn chrome_export_is_schema_valid() {
    let doc = trace::parse_trace(&traced_run()).expect("parses");
    let chrome = trace::export_chrome(&doc);
    let parsed = json::parse(&chrome).expect("chrome export is valid JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), doc.spans.len());
    for e in events {
        // The fields Perfetto/chrome://tracing require of a complete
        // ("X") event.
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert_eq!(e.get("cat").and_then(Value::as_str), Some("mtat"));
        assert!(e.get("ts").and_then(Value::as_f64).is_some());
        assert!(e.get("dur").and_then(Value::as_f64).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("tid").and_then(Value::as_u64).is_some());
    }

    let folded = trace::export_folded(&doc);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(!path.is_empty());
        assert!(count.parse::<u64>().is_ok(), "bad self-time in {line:?}");
    }
    assert!(
        folded.lines().any(|l| l.starts_with("run;tick;")),
        "stacks must nest under run;tick:\n{folded}"
    );
}
