//! Ablation: the Eq.-(2) reward's hard −1 violation penalty vs a softer
//! penalty.
//!
//! The paper argues the binary penalty "enforces strict compliance".
//! This ablation trains two agents on the same analytic environment —
//! one with the paper's −1, one with a mild −0.2 — and evaluates the
//! violation frequency and mean FMem usage of the learned policies.
//! Criterion times the training step; quality is printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use mtat_core::ppm::env::{LcEnvConfig, LcPartitionEnv};
use mtat_rl::env::Environment;
use mtat_rl::replay::Transition;
use mtat_rl::sac::{Sac, SacConfig};
use mtat_workloads::lc::LcSpec;

/// Wraps the partitioning environment, rescaling the violation penalty.
struct PenaltyScaled {
    inner: LcPartitionEnv,
    penalty: f64,
}

impl Environment for PenaltyScaled {
    fn state_dim(&self) -> usize {
        self.inner.state_dim()
    }
    fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }
    fn state(&self) -> Vec<f64> {
        self.inner.state()
    }
    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        let (s, r, d) = self.inner.step(action);
        let r = if r < 0.0 { self.penalty } else { r };
        (s, r, d)
    }
    fn reset(&mut self) -> Vec<f64> {
        self.inner.reset()
    }
}

fn train_and_eval(penalty: f64, steps: usize) -> (f64, f64) {
    let spec = LcSpec::redis();
    let mut env = PenaltyScaled {
        inner: LcPartitionEnv::new(spec.clone(), LcEnvConfig::paper_scale(&spec), 3),
        penalty,
    };
    let mut cfg = SacConfig::paper(3, 1);
    cfg.update_every = 4;
    let mut agent = Sac::new(cfg, 11);
    agent.train(&mut env, steps);

    // Evaluate: violation frequency and mean usage over 800 intervals.
    let mut state = env.reset();
    let mut violations = 0u32;
    let mut usage = 0.0;
    let n = 800;
    for _ in 0..n {
        let action = agent.act_deterministic(&state);
        let (next, reward, done) = env.step(&action);
        if reward < 0.0 {
            violations += 1;
        }
        usage += state[0];
        state = if done { env.reset() } else { next };
    }
    (violations as f64 / n as f64, usage / n as f64)
}

fn bench_reward(c: &mut Criterion) {
    for (label, penalty) in [("paper_minus1", -1.0), ("soft_minus0.2", -0.2)] {
        let (viol, usage) = train_and_eval(penalty, 6000);
        eprintln!("[ablation_reward] {label}: violation_freq={viol:.3} mean_usage={usage:.3}");
    }

    // Criterion measures the marginal training-step cost (identical for
    // both variants; reward shape does not change compute).
    let mut group = c.benchmark_group("reward");
    group.sample_size(10);
    group.bench_function("train_step_with_update", |b| {
        let spec = LcSpec::redis();
        let mut env = LcPartitionEnv::new(spec.clone(), LcEnvConfig::paper_scale(&spec), 5);
        let mut cfg = SacConfig::paper(3, 1);
        cfg.update_every = 1;
        cfg.warmup = 16;
        let mut agent = Sac::new(cfg, 7);
        let mut state = env.reset();
        b.iter(|| {
            let action = agent.act(&state);
            let (next, reward, done) = env.step(&action);
            agent.observe(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: next.clone(),
                done,
            });
            state = if done { env.reset() } else { next };
        });
    });
    group.finish();
}

criterion_group!(benches, bench_reward);
criterion_main!(benches);
