//! Ablation: LC-first time-sliced enforcement (Algorithm 3) vs bulk
//! reconfiguration.
//!
//! PP-E subdivides each partition change into `p_max`-bounded slices so
//! the LC workload's movement completes first and migration overhead is
//! spread across BE workloads; within a tick it drains as many slices
//! as the bandwidth budget allows, so slicing costs no completion time.
//! This bench drives the *scheduler* with one slice per simulated tick
//! (the worst case for slicing) to expose the discipline's bounds, and
//! measures the scheduling cost itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_core::ppe::adjust::AdjustmentSchedule;

/// Drains a schedule with a fixed per-tick budget, returning
/// `(ticks_total, ticks_until_lc_complete)`.
fn drain(deltas: Vec<i64>, p_max: u64, budget_per_tick: u64) -> (u32, u32) {
    let mut schedule = AdjustmentSchedule::new(deltas, 0, p_max);
    let mut ticks = 0;
    let mut lc_done_at = 0;
    while !schedule.is_complete() {
        let _slice = schedule.next_slice(budget_per_tick);
        ticks += 1;
        if schedule.delta(0) == 0 && lc_done_at == 0 {
            lc_done_at = ticks;
        }
        if ticks > 100_000 {
            break;
        }
    }
    (ticks, lc_done_at)
}

fn bench_enforcement(c: &mut Criterion) {
    // A large reconfiguration: LC grows by 8 000 pages (16 GiB at 2 MiB)
    // while four BE workloads shed proportionally.
    let deltas = vec![8_000i64, -3_000, -2_500, -1_500, -1_000];
    // 4 GB/s at 2 MiB pages = 2 048 page moves/s -> 1 024 pairs per 1 s tick.
    let budget = 1_024;

    for (label, p_max) in [("sliced_p512", 512u64), ("bulk_unbounded", u64::MAX)] {
        let (ticks, lc_done) = drain(deltas.clone(), p_max, budget);
        eprintln!(
            "[ablation_enforcement] {label}: total_ticks={ticks} lc_complete_at_tick={lc_done}"
        );
    }

    let mut group = c.benchmark_group("enforcement");
    group.bench_function("schedule_drain_sliced", |b| {
        b.iter(|| black_box(drain(deltas.clone(), 512, budget)));
    });
    group.bench_function("schedule_drain_bulk", |b| {
        b.iter(|| black_box(drain(deltas.clone(), u64::MAX, budget)));
    });
    group.bench_function("single_slice", |b| {
        let mut s = AdjustmentSchedule::new(deltas.clone(), 0, 512);
        b.iter(|| {
            if s.is_complete() {
                s = AdjustmentSchedule::new(deltas.clone(), 0, 512);
            }
            black_box(s.next_slice(budget));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_enforcement);
criterion_main!(benches);
