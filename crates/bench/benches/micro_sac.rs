//! Micro-benchmarks of the SAC agent: action selection (runs once per
//! partitioning interval in PP-M) and a full gradient update round
//! (runs every 50 new transitions, §4). The paper reports the combined
//! PP-M CPU overhead below 7 % of one core; these numbers show why —
//! one decision is microseconds, one update round is milliseconds, and
//! both happen at most every few seconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_rl::replay::Transition;
use mtat_rl::sac::{Sac, SacConfig};

fn warmed_agent() -> Sac {
    let mut agent = Sac::new(SacConfig::paper(3, 1), 99);
    // Fill the replay buffer with plausible transitions.
    for i in 0..512 {
        let x = (i % 97) as f64 / 97.0;
        agent.observe(Transition {
            state: vec![x, x, 1.0 - x],
            action: vec![x * 2.0 - 1.0],
            reward: 1.0 - x,
            next_state: vec![x * 0.9, x * 0.9, 1.0 - x],
            done: false,
        });
    }
    agent
}

fn bench_sac(c: &mut Criterion) {
    let mut group = c.benchmark_group("sac");
    group.sample_size(20);

    group.bench_function("act_deterministic", |b| {
        let agent = warmed_agent();
        let state = [0.4, 0.4, 0.7];
        b.iter(|| black_box(agent.act_deterministic(&state)));
    });

    group.bench_function("act_stochastic", |b| {
        let mut agent = warmed_agent();
        let state = [0.4, 0.4, 0.7];
        b.iter(|| black_box(agent.act(&state)));
    });

    group.bench_function("update_round_batch64", |b| {
        let mut agent = warmed_agent();
        b.iter(|| agent.update());
    });

    group.finish();
}

criterion_group!(benches, bench_sac);
criterion_main!(benches);
