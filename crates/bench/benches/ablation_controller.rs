//! Ablation: SAC reinforcement learning vs a proportional feedback
//! controller for LC partition sizing (DESIGN.md §5.5).
//!
//! Rolls both sizers through the same scripted load trace on the
//! analytic environment and prints their violation frequency and mean
//! FMem usage (the two terms of the Eq.-2 reward), then benchmarks the
//! per-decision cost of each.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_core::ppm::controller::{ControllerConfig, ProportionalController};
use mtat_core::ppm::lc::{LcObservation, LcPartitioner, LcPartitionerConfig};
use mtat_tiermem::GIB;
use mtat_workloads::lc::LcSpec;

const FMEM: u64 = 32 * GIB;
const STEP: f64 = 20.0 * GIB as f64;

/// Scripted trapezoid of load levels, three passes.
fn load_trace() -> Vec<f64> {
    let mut t = Vec::new();
    for _ in 0..3 {
        for l in [0.2, 0.4, 0.6, 0.8, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2] {
            t.push(l);
            t.push(l);
        }
    }
    t
}

/// Evaluates a sizing function `decide(obs) -> target_bytes` over the
/// trace; returns (violation_freq, mean_usage).
fn evaluate(mut decide: impl FnMut(&LcObservation) -> u64) -> (f64, f64) {
    let spec = LcSpec::redis();
    let ref_max = spec.nominal_max_load() / 1.25;
    let mut alloc: u64 = FMEM / 2;
    let mut violations = 0u32;
    let mut usage_sum = 0.0;
    let trace = load_trace();
    for &level in &trace {
        let usage = (alloc as f64 / spec.rss_bytes as f64).min(1.0);
        // Worst-case clamped burst of the runner's model.
        let p99 = spec.p99(level * ref_max * 1.27, usage);
        let violated = p99 > spec.slo_secs;
        if violated {
            violations += 1;
        }
        usage_sum += usage;
        let obs = LcObservation {
            usage_ratio: usage,
            access_ratio: usage,
            access_count_norm: level * 0.8,
            p99_secs: p99,
            violated,
        };
        alloc = decide(&obs).min(FMEM);
    }
    (
        violations as f64 / trace.len() as f64,
        usage_sum / trace.len() as f64,
    )
}

fn bench_controller(c: &mut Criterion) {
    let spec = LcSpec::redis();

    let mut rl = LcPartitioner::pretrained(
        &spec,
        LcPartitionerConfig {
            fmem_total: FMEM,
            max_step_bytes: STEP,
            online_learning: false,
            explore: false,
        },
        8_000,
        21,
    );
    rl.set_target_bytes(FMEM / 2);
    let (rl_viol, rl_usage) = evaluate(|obs| rl.decide(obs));

    let mut ctl = ProportionalController::new(ControllerConfig::new(
        FMEM,
        spec.rss_bytes,
        STEP,
        spec.slo_secs,
    ));
    ctl.set_target_bytes(FMEM / 2);
    let (ctl_viol, ctl_usage) = evaluate(|obs| ctl.decide(obs));

    eprintln!(
        "[ablation_controller] sac: violations={rl_viol:.3} usage={rl_usage:.3} | proportional: violations={ctl_viol:.3} usage={ctl_usage:.3}"
    );

    let obs = LcObservation {
        usage_ratio: 0.5,
        access_ratio: 0.5,
        access_count_norm: 0.6,
        p99_secs: 5e-3,
        violated: false,
    };
    let mut group = c.benchmark_group("lc_sizer_decide");
    group.bench_function("sac", |b| b.iter(|| black_box(rl.decide(&obs))));
    group.bench_function("proportional", |b| b.iter(|| black_box(ctl.decide(&obs))));
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
