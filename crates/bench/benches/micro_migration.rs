//! Micro-benchmarks of the page table and migration engine: the raw
//! cost of moving pages between tiers, which bounds how much placement
//! work a policy can do per tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_tiermem::memory::{InitialPlacement, MemorySpec, TieredMemory};
use mtat_tiermem::migration::MigrationEngine;
use mtat_tiermem::page::Tier;
use mtat_tiermem::{GIB, MIB};

fn paper_memory() -> TieredMemory {
    let spec = MemorySpec::paper_scale();
    let mut mem = TieredMemory::new(spec);
    mem.register_workload(33 * GIB, InitialPlacement::FmemFirst)
        .unwrap();
    mem.register_workload(35 * GIB, InitialPlacement::AllSmem)
        .unwrap();
    mem
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");

    group.bench_function("migrate_roundtrip", |b| {
        let mut mem = paper_memory();
        // Workload 0 fills FMem, so free a frame by demoting first.
        let w = mtat_tiermem::page::WorkloadId(0);
        let page = mem.region(w).page(0);
        b.iter(|| {
            mem.migrate(page, Tier::SMem).unwrap();
            mem.migrate(page, Tier::FMem).unwrap();
        });
    });

    group.bench_function("exchange_64_pages", |b| {
        let mut mem = paper_memory();
        let lc = mtat_tiermem::page::WorkloadId(0);
        let be = mtat_tiermem::page::WorkloadId(1);
        let demote: Vec<_> = (0..64).map(|r| mem.region(lc).page(r)).collect();
        let promote: Vec<_> = (0..64).map(|r| mem.region(be).page(r)).collect();
        b.iter(|| {
            mem.exchange(&promote, &demote).unwrap();
            mem.exchange(&demote, &promote).unwrap();
        });
    });

    group.bench_function("engine_budget_accounting", |b| {
        let mut engine = MigrationEngine::new(4.0 * GIB as f64, 2 * MIB, 10.0).unwrap();
        b.iter(|| {
            engine.begin_tick(1.0);
            black_box(engine.try_consume_pages(512));
            black_box(engine.remaining_tick_pages());
        });
    });

    group.bench_function("residency_scan_17k", |b| {
        let mem = paper_memory();
        let w = mtat_tiermem::page::WorkloadId(0);
        b.iter(|| black_box(mem.pages_in_tier(w, Tier::FMem).count()));
    });

    group.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
