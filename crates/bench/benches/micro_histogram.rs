//! Micro-benchmarks of the exponential-bin access histogram — the data
//! structure on PP-E's per-tick hot path (§3.3.2). At paper scale one
//! workload has ~17 000 pages of 2 MiB; `add` runs per sampled page per
//! tick, `age` once per partitioning interval, and the hottest/coldest
//! queries drive every promotion decision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_tiermem::histogram::AccessHistogram;
use mtat_tiermem::page::{PageId, PageRegion};

const PAGES: u32 = 17_200; // a 33.6 GiB workload at 2 MiB pages

fn populated() -> AccessHistogram {
    let region = PageRegion {
        base: 0,
        n_pages: PAGES,
    };
    let mut h = AccessHistogram::new(region);
    let mut x = 0x9e3779b97f4a7c15u64;
    for rank in 0..PAGES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.add(PageId(rank), x % 4096);
    }
    h
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");

    group.bench_function("add_rebin", |b| {
        let mut h = populated();
        let mut rank = 0u32;
        b.iter(|| {
            h.add(PageId(rank % PAGES), 17);
            rank = rank.wrapping_add(7919);
        });
    });

    group.bench_function("age_17k_pages", |b| {
        let mut h = populated();
        b.iter(|| h.age());
    });

    group.bench_function("hottest_512", |b| {
        let h = populated();
        b.iter(|| black_box(h.hottest_matching(512, |_| true)));
    });

    group.bench_function("coldest_512", |b| {
        let h = populated();
        b.iter(|| black_box(h.coldest_matching(512, |_| true)));
    });

    group.bench_function("kth_hottest_count", |b| {
        let h = populated();
        b.iter(|| black_box(h.kth_hottest_count(8_192)));
    });

    group.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
