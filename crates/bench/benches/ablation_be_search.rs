//! Ablation: simulated annealing (Algorithm 2) vs alternatives for the
//! BE fairness allocation.
//!
//! DESIGN.md §5.2 asks what the SA search buys over (a) the naive even
//! split and (b) a greedy hill-climb. Criterion measures the search
//! cost; the achieved fairness of each strategy is printed once to
//! stderr so cost and quality can be weighed together.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtat_core::ppm::annealing::{anneal, even_split, AnnealingConfig};
use mtat_core::ppm::be::min_np;
use mtat_core::ppm::profiler::{profile_all, BeProfile};
use mtat_tiermem::{GIB, MIB};
use mtat_workloads::be::BeSpec;

const UNITS: u64 = 16; // 16 GiB residual FMem

fn profiles() -> Vec<BeProfile> {
    profile_all(&BeSpec::all_paper_workloads(), 32 * GIB, 2 * MIB)
}

/// Greedy hill-climb: repeatedly apply the single ±1 GB move that most
/// improves the objective, until no move improves it.
fn greedy(profiles: &[BeProfile], initial: &[u64]) -> (Vec<u64>, f64) {
    let mut alloc = initial.to_vec();
    let mut best = min_np(profiles, &alloc);
    loop {
        let mut improved = false;
        for i in 0..alloc.len() {
            for j in 0..alloc.len() {
                if i == j || alloc[j] == 0 {
                    continue;
                }
                alloc[i] += 1;
                alloc[j] -= 1;
                let score = min_np(profiles, &alloc);
                if score > best {
                    best = score;
                    improved = true;
                } else {
                    alloc[i] -= 1;
                    alloc[j] += 1;
                }
            }
        }
        if !improved {
            return (alloc, best);
        }
    }
}

fn bench_be_search(c: &mut Criterion) {
    let profiles = profiles();
    let initial = even_split(UNITS, profiles.len());

    // Quality report (once).
    let even_score = min_np(&profiles, &initial);
    let (_, greedy_score) = greedy(&profiles, &initial);
    let sa = anneal(
        &initial,
        |a| min_np(&profiles, a),
        &AnnealingConfig::default(),
        7,
    );
    eprintln!(
        "[ablation_be_search] fairness: even={even_score:.3} greedy={greedy_score:.3} sa={:.3} ({} iters)",
        sa.best_score, sa.iterations
    );

    let mut group = c.benchmark_group("be_search");
    group.bench_function("even_split_eval", |b| {
        b.iter(|| black_box(min_np(&profiles, &initial)));
    });
    group.bench_function("greedy_hill_climb", |b| {
        b.iter(|| black_box(greedy(&profiles, &initial)));
    });
    group.bench_function("simulated_annealing_2000", |b| {
        b.iter(|| {
            black_box(anneal(
                &initial,
                |a| min_np(&profiles, a),
                &AnnealingConfig::default(),
                7,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_be_search);
criterion_main!(benches);
