//! Diagnostic probe for the adversarial matrix cells: runs one
//! (scenario, arm) cell with the hardened and naive MTAT policies and
//! dumps a per-tick TSV of the guard state next to the physics, plus
//! the end-of-run guard counters — the data needed to tune the
//! hardening thresholds honestly instead of by folklore.
//!
//! Usage: `adv_probe <scenario> [faulted]`

use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::policy::{Policy, SimState, WorkloadClass, WorkloadObs};
use mtat_core::runner::Experiment;
use mtat_tiermem::memory::{InitialPlacement, TieredMemory};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;
use mtat_workloads::scenario::{adversarial_fault_plan, adversarial_scenarios};

/// Wraps an MTAT policy and snapshots the guard state every tick.
struct Probe {
    inner: MtatPolicy,
    log: Vec<(f64, f64, bool, u32)>,
}

impl Policy for Probe {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn init(&mut self, mem: &TieredMemory, workloads: &[WorkloadObs]) {
        self.inner.init(mem, workloads);
    }
    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        self.inner.on_tick(sim);
        if let Some(h) = self.inner.hardening_state() {
            self.log.push((
                sim.now_secs,
                h.thrash_signal(),
                h.quarantined(),
                h.throttle_shift(),
            ));
        }
    }
    fn initial_placement(&self, class: WorkloadClass) -> InitialPlacement {
        self.inner.initial_placement(class)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = args.get(1).map_or("thrash_rotate", String::as_str);
    let faulted = args.iter().any(|a| a == "faulted");

    let cfg = SimConfig::paper().with_constrained_bandwidth();
    let lc = LcSpec::redis();
    let bes = BeSpec::all_paper_workloads();
    let load = LoadPattern::Steps(vec![(100.0, 0.45), (60.0, 0.9), (80.0, 0.45)]);
    let spec = adversarial_scenarios()
        .into_iter()
        .find(|s| s.name == scenario)
        .unwrap_or_else(|| panic!("unknown scenario {scenario}"));

    let mk_exp = || {
        let mut e = Experiment::new(cfg.clone(), lc.clone(), load.clone(), bes.clone())
            .with_duration(240.0)
            .with_scenario(spec.clone());
        if faulted {
            e = e.with_fault_plan(adversarial_fault_plan());
        }
        e
    };

    let exp = mk_exp();
    let mut hardened = Probe {
        inner: MtatPolicy::new(MtatConfig::full().hardened(), &cfg, &lc, &bes),
        log: Vec::new(),
    };
    let rh = exp.run(&mut hardened);
    let stats = hardened
        .inner
        .hardening_state()
        .map(|h| h.stats())
        .unwrap_or_default();

    let exp = mk_exp();
    let mut naive = MtatPolicy::new(MtatConfig::full().supervised(), &cfg, &lc, &bes);
    let rn = exp.run(&mut naive);

    println!(
        "# t\tsignal\tquar\tthrottle\tmig_bw_h\tmig_bw_n\tp99_h\tp99_n\tbe_h\tbe_n\tfmem_h\tfmem_n"
    );
    for (((t, sig, q, ts), th), tn) in hardened.log.iter().zip(&rh.ticks).zip(&rn.ticks) {
        println!(
            "{t:.0}\t{sig:.3}\t{}\t{ts}\t{:.1}\t{:.1}\t{:.4}\t{:.4}\t{:.0}\t{:.0}\t{}\t{}",
            u8::from(*q),
            th.migration_bw / 1e6,
            tn.migration_bw / 1e6,
            th.lc_p99 * 1e3,
            tn.lc_p99 * 1e3,
            th.be_throughput.iter().sum::<f64>(),
            tn.be_throughput.iter().sum::<f64>(),
            th.fmem_bytes.first().copied().unwrap_or(0) >> 20,
            tn.fmem_bytes.first().copied().unwrap_or(0) >> 20,
        );
    }
    eprintln!(
        "# {scenario}{}: hardened vr {:.4} be {:.1} | naive vr {:.4} be {:.1} | guard stats {stats:?}",
        if faulted { "/faulted" } else { "" },
        rh.violation_rate_after(20.0),
        rh.be_total_throughput(),
        rn.violation_rate_after(20.0),
        rn.be_total_throughput(),
    );
}
