//! Offline analysis of span-trace documents for the `mtat-trace` CLI.
//!
//! A trace document is what [`mtat_obs::Obs::trace_json`] writes (and
//! every `--trace-out` flag produces):
//!
//! ```text
//! {"version":1,"dropped_spans":N,"spans":[...],"provenance":[...]}
//! ```
//!
//! This module parses it back — with the obs crate's own dependency-free
//! JSON parser, so what the exporter writes is exactly what the analyzer
//! accepts — and answers the questions an operator actually asks of a
//! run: where did the time go ([`summary`]), which individual phase
//! executions were pathological ([`slowest_phases`]), and *why* did the
//! controller emit the plan it emitted at a given tick ([`plan_chain`],
//! the full input → decision → enforcement causal chain). The export
//! helpers re-emit the spans in Chrome trace-event JSON (load in
//! Perfetto / `chrome://tracing`) or collapsed-stack text (pipe into
//! inferno/flamegraph.pl).

use std::collections::BTreeMap;

use mtat_obs::json::{self, Value};
use mtat_obs::span::{chrome_trace_json, folded_stacks, SpanRecord};

/// A parsed trace document: spans reconstructed into the live
/// [`SpanRecord`] shape, provenance kept as parsed JSON objects.
#[derive(Debug)]
pub struct TraceDoc {
    pub version: u64,
    pub dropped_spans: u64,
    pub spans: Vec<SpanRecord>,
    pub provenance: Vec<Value>,
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a u64"))
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn span_from_value(v: &Value) -> Result<SpanRecord, String> {
    let parent = match field(v, "parent")? {
        Value::Null => None,
        p => Some(p.as_u64().ok_or("span parent is not a u64")?),
    };
    let label = match field(v, "label")? {
        Value::Null => None,
        l => Some(l.as_str().ok_or("span label is not a string")?.to_string()),
    };
    Ok(SpanRecord {
        id: field_u64(v, "id")?,
        parent,
        name: field(v, "name")?
            .as_str()
            .ok_or("span name is not a string")?
            .to_string(),
        label,
        tid: u32::try_from(field_u64(v, "tid")?).map_err(|_| "span tid overflows u32")?,
        sim_secs: field_f64(v, "sim_secs")?,
        start_ns: field_u64(v, "start_ns")?,
        dur_ns: field_u64(v, "dur_ns")?,
    })
}

/// Parses a trace document.
///
/// # Errors
///
/// Returns a message when the text is not JSON, not a version-1 trace
/// document, or a span/provenance entry is malformed.
pub fn parse_trace(text: &str) -> Result<TraceDoc, String> {
    let doc = json::parse(text)?;
    let version = field_u64(&doc, "version")?;
    if version != 1 {
        return Err(format!("unsupported trace version {version}"));
    }
    let spans = field(&doc, "spans")?
        .as_arr()
        .ok_or("spans is not an array")?
        .iter()
        .map(span_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let provenance = field(&doc, "provenance")?
        .as_arr()
        .ok_or("provenance is not an array")?
        .to_vec();
    Ok(TraceDoc {
        version,
        dropped_spans: field_u64(&doc, "dropped_spans")?,
        spans,
        provenance,
    })
}

/// Reads and parses a trace file.
///
/// # Errors
///
/// Returns a message on I/O or parse failure.
pub fn load_trace(path: &str) -> Result<TraceDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

/// Per-phase aggregate over all spans sharing a display name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotal {
    pub name: String,
    pub count: u64,
    /// Sum of wall durations (children included).
    pub total_ns: u64,
    /// Sum of self times (children's wall time subtracted).
    pub self_ns: u64,
    pub max_ns: u64,
}

/// Aggregates spans by display name, ordered by descending self time
/// (name as tiebreak, so output is deterministic).
#[must_use]
pub fn phase_totals(spans: &[SpanRecord]) -> Vec<PhaseTotal> {
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_insert(0) += s.dur_ns;
        }
    }
    let mut by_name: BTreeMap<String, PhaseTotal> = BTreeMap::new();
    for s in spans {
        let own = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let e = by_name
            .entry(s.display_name())
            .or_insert_with(|| PhaseTotal {
                name: s.display_name(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                max_ns: 0,
            });
        e.count += 1;
        e.total_ns += s.dur_ns;
        e.self_ns += own;
        e.max_ns = e.max_ns.max(s.dur_ns);
    }
    let mut out: Vec<PhaseTotal> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The `summary` report: document stats plus a per-phase table.
#[must_use]
pub fn summary(doc: &TraceDoc) -> String {
    let mut out = String::new();
    let total_self: u64 = phase_totals(&doc.spans).iter().map(|t| t.self_ns).sum();
    out.push_str(&format!(
        "spans: {}  dropped: {}  provenance records: {}\n",
        doc.spans.len(),
        doc.dropped_spans,
        doc.provenance.len()
    ));
    out.push_str("phase\tcount\ttotal\tself\tself%\tmax\n");
    for t in phase_totals(&doc.spans) {
        let pct = if total_self == 0 {
            0.0
        } else {
            t.self_ns as f64 / total_self as f64 * 100.0
        };
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{:.1}%\t{}\n",
            t.name,
            t.count,
            fmt_ns(t.total_ns),
            fmt_ns(t.self_ns),
            pct,
            fmt_ns(t.max_ns)
        ));
    }
    out
}

/// Root-to-leaf display path of span `id` (`…` marks a missing parent,
/// which only happens when the tracer hit its capacity cap).
fn span_path(spans: &[SpanRecord], id: u64) -> String {
    let mut parts = Vec::new();
    let mut cur = Some(id);
    while let Some(c) = cur {
        match spans.iter().find(|s| s.id == c) {
            Some(s) => {
                parts.push(s.display_name());
                cur = s.parent;
            }
            None => {
                parts.push("…".to_string());
                cur = None;
            }
        }
    }
    parts.reverse();
    parts.join(";")
}

/// The `slowest-phases` report: the `n` individual span executions with
/// the largest wall duration, with full paths and sim times.
#[must_use]
pub fn slowest_phases(doc: &TraceDoc, n: usize) -> String {
    let mut idx: Vec<usize> = (0..doc.spans.len()).collect();
    idx.sort_by(|&a, &b| {
        doc.spans[b]
            .dur_ns
            .cmp(&doc.spans[a].dur_ns)
            .then_with(|| doc.spans[a].id.cmp(&doc.spans[b].id))
    });
    let mut out = String::from("dur\tsim_t\tpath\n");
    for &i in idx.iter().take(n) {
        let s = &doc.spans[i];
        out.push_str(&format!(
            "{}\t{:.3}\t{}\n",
            fmt_ns(s.dur_ns),
            s.sim_secs,
            span_path(&doc.spans, s.id)
        ));
    }
    out
}

fn fmt_num(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{n:.0}")
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => s.clone(),
        _ => "?".to_string(),
    }
}

fn kv_line(obj: &Value) -> String {
    match obj.as_obj() {
        Some(pairs) => pairs
            .iter()
            .map(|(k, v)| format!("{k} {}", fmt_num(v)))
            .collect::<Vec<_>>()
            .join("  "),
        None => "(none)".to_string(),
    }
}

/// The `plan <tick>` report: the full causal chain of the provenance
/// record decided at `tick` — observed inputs → supervisor mode → SAC
/// or anneal internals → clamps → emitted plan → enforcement outcome —
/// plus the wall-time spans of that decision (`ppm-plan` and its
/// children at the same sim time).
///
/// # Errors
///
/// Returns a message when the document has no provenance at all or no
/// record at `tick` (listing the ticks that do have one).
pub fn plan_chain(doc: &TraceDoc, tick: u64) -> Result<String, String> {
    if doc.provenance.is_empty() {
        return Err("trace has no provenance records (was it captured with tracing on?)".into());
    }
    let rec = doc
        .provenance
        .iter()
        .find(|r| r.get("tick").and_then(Value::as_u64) == Some(tick))
        .ok_or_else(|| {
            let ticks: Vec<String> = doc
                .provenance
                .iter()
                .filter_map(|r| r.get("tick").and_then(Value::as_u64))
                .map(|t| t.to_string())
                .collect();
            format!(
                "no decision at tick {tick}; decision boundaries: {}",
                ticks.join(", ")
            )
        })?;
    let seq = field_u64(rec, "seq")?;
    let now = field_f64(rec, "now_secs")?;
    let mut out = String::new();
    out.push_str(&format!("plan seq {seq} @ tick {tick} (t={now:.3}s)\n"));
    out.push_str(&format!("  inputs:  {}\n", kv_line(field(rec, "inputs")?)));
    // Scenario phase is absent in traces captured before the adversarial
    // engine existed; print it only when the record carries one.
    if let Some(phase) = rec.get("scenario_phase").and_then(Value::as_u64) {
        let label = if phase == 0 {
            "(baseline — no mutation active)"
        } else {
            "(adversarial mutation active)"
        };
        out.push_str(&format!("  phase:   {phase} {label}\n"));
    }
    out.push_str(&format!(
        "  mode:    {}\n",
        field(rec, "mode")?.as_str().unwrap_or("?")
    ));
    for (key, label) in [("sac", "sac:    "), ("anneal", "anneal: ")] {
        let v = field(rec, key)?;
        let body = match v {
            Value::Null => "(not run)".to_string(),
            other => kv_line(other),
        };
        out.push_str(&format!("  {label} {body}\n"));
    }
    out.push_str(&format!("  clamps:  {}\n", kv_line(field(rec, "clamps")?)));
    out.push_str(&format!("  plan:    {}\n", kv_line(field(rec, "plan")?)));
    let enforce = field(rec, "enforce")?;
    let body = match enforce {
        Value::Null => "(pending — run ended before the next boundary)".to_string(),
        other => kv_line(other),
    };
    out.push_str(&format!("  enforce: {body}\n"));

    // Wall-time view of the same decision: the ppm-plan span opened at
    // this sim time, with its children indented beneath it.
    let decision: Vec<&SpanRecord> = doc
        .spans
        .iter()
        .filter(|s| s.name == "ppm-plan" && s.sim_secs.to_bits() == now.to_bits())
        .collect();
    for plan_span in decision {
        out.push_str(&format!(
            "  spans:   ppm-plan {}\n",
            fmt_ns(plan_span.dur_ns)
        ));
        for child in doc.spans.iter().filter(|s| s.parent == Some(plan_span.id)) {
            out.push_str(&format!(
                "           └ {} {}\n",
                child.display_name(),
                fmt_ns(child.dur_ns)
            ));
        }
    }
    Ok(out)
}

/// Re-emits the spans as Chrome trace-event JSON (Perfetto-viewable).
#[must_use]
pub fn export_chrome(doc: &TraceDoc) -> String {
    chrome_trace_json(&doc.spans)
}

/// Re-emits the spans as collapsed stacks (inferno/flamegraph input).
#[must_use]
pub fn export_folded(doc: &TraceDoc) -> String {
    folded_stacks(&doc.spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_json() -> String {
        let spans = [
            SpanRecord {
                id: 1,
                parent: None,
                name: "tick".into(),
                label: None,
                tid: 0,
                sim_secs: 4.0,
                start_ns: 0,
                dur_ns: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "ppm-plan".into(),
                label: None,
                tid: 0,
                sim_secs: 4.0,
                start_ns: 10,
                dur_ns: 60,
            },
            SpanRecord {
                id: 3,
                parent: Some(2),
                name: "sac-forward".into(),
                label: None,
                tid: 0,
                sim_secs: 4.0,
                start_ns: 20,
                dur_ns: 25,
            },
        ];
        let prov = "{\"seq\":1,\"tick\":40,\"now_secs\":4,\
             \"inputs\":{\"usage_ratio\":0.9,\"access_ratio\":0.75,\
             \"access_count_norm\":1.25,\"p99_secs\":0.000073,\"violated\":false},\
             \"scenario_phase\":2,\"mode\":\"rl\",\"sac\":{\"raw_action\":-1500000,\"alpha\":0.2,\
             \"entropy\":1.42},\"anneal\":null,\
             \"clamps\":{\"sizer_bytes\":1073741824,\"guard_floor_bytes\":0,\
             \"guard_applied\":false,\"fmem_clamped\":false},\
             \"plan\":{\"lc_bytes\":1073741824,\"be_total_bytes\":3221225472},\
             \"enforce\":{\"granted_pages\":100,\"failed_pages\":2,\
             \"retried_pages\":1,\"deferred_pages\":0,\"schedule_done\":true}}";
        let span_json: Vec<String> = spans.iter().map(SpanRecord::to_json).collect();
        format!(
            "{{\"version\":1,\"dropped_spans\":0,\"spans\":[{}],\"provenance\":[{prov}]}}",
            span_json.join(",")
        )
    }

    #[test]
    fn parses_roundtripped_document() {
        let doc = parse_trace(&doc_json()).expect("parses");
        assert_eq!(doc.version, 1);
        assert_eq!(doc.spans.len(), 3);
        assert_eq!(doc.spans[1].parent, Some(1));
        assert_eq!(doc.spans[2].name, "sac-forward");
        assert_eq!(doc.provenance.len(), 1);
    }

    #[test]
    fn rejects_future_versions_and_garbage() {
        assert!(
            parse_trace("{\"version\":2,\"dropped_spans\":0,\"spans\":[],\"provenance\":[]}")
                .is_err()
        );
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"version\":1}").is_err());
    }

    #[test]
    fn phase_totals_subtract_children() {
        let doc = parse_trace(&doc_json()).expect("parses");
        let totals = phase_totals(&doc.spans);
        let get = |n: &str| totals.iter().find(|t| t.name == n).expect("phase exists");
        assert_eq!(get("tick").self_ns, 40); // 100 - 60
        assert_eq!(get("ppm-plan").self_ns, 35); // 60 - 25
        assert_eq!(get("sac-forward").self_ns, 25);
        assert_eq!(get("tick").total_ns, 100);
    }

    #[test]
    fn summary_and_slowest_render_all_phases() {
        let doc = parse_trace(&doc_json()).expect("parses");
        let s = summary(&doc);
        assert!(s.contains("provenance records: 1"));
        for name in ["tick", "ppm-plan", "sac-forward"] {
            assert!(s.contains(name), "{name} missing from summary:\n{s}");
        }
        let slow = slowest_phases(&doc, 2);
        assert!(slow.contains("tick;ppm-plan"), "paths missing:\n{slow}");
        assert_eq!(slow.lines().count(), 3); // header + 2 rows
    }

    #[test]
    fn plan_chain_reconstructs_causal_chain() {
        let doc = parse_trace(&doc_json()).expect("parses");
        let chain = plan_chain(&doc, 40).expect("tick 40 exists");
        for needle in [
            "plan seq 1 @ tick 40",
            "usage_ratio 0.9",
            "phase:   2 (adversarial mutation active)",
            "mode:    rl",
            "raw_action -1500000",
            "alpha 0.2",
            "(not run)", // anneal
            "sizer_bytes 1073741824",
            "lc_bytes 1073741824",
            "granted_pages 100",
            "schedule_done true",
            "ppm-plan",
            "sac-forward",
        ] {
            assert!(chain.contains(needle), "{needle:?} missing:\n{chain}");
        }
    }

    #[test]
    fn plan_chain_lists_boundaries_on_miss() {
        let doc = parse_trace(&doc_json()).expect("parses");
        let err = plan_chain(&doc, 7).expect_err("no tick 7");
        assert!(err.contains("decision boundaries: 40"), "{err}");
    }

    #[test]
    fn exports_delegate_to_obs_exporters() {
        let doc = parse_trace(&doc_json()).expect("parses");
        let chrome = export_chrome(&doc);
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        let folded = export_folded(&doc);
        assert!(folded.contains("tick;ppm-plan;sac-forward 25"));
    }
}
