//! Ablation — the partitioning-interval length.
//!
//! The paper's prototype updates partitions once per minute; this
//! reproduction defaults to 10 s (DESIGN.md §4b). This ablation sweeps
//! the interval and shows the trade-off the choice sits on:
//!
//! * shorter intervals track the Fig.-7 load steps faster (fewer
//!   transient violations) but decide more often;
//! * longer intervals approach the paper's 60 s cadence, where a 240 s
//!   trapezoid only gets four decisions and tracking visibly lags —
//!   while the Eq. (1) action bound `M·t/2` grows with `t`, so each
//!   decision can move more memory.
//!
//! Output: TSV rows `interval_s  violation_pct  mean_lc_fmem_pct
//! decisions  avg_migration_gbps`.

use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    header(&[
        "interval_s",
        "violation_pct",
        "mean_lc_fmem_pct",
        "decisions",
        "avg_migration_gbps",
    ]);
    for interval in [5.0, 10.0, 20.0, 30.0, 60.0] {
        let mut cfg = SimConfig::paper();
        cfg.interval_secs = interval;
        let exp = Experiment::new(
            cfg.clone(),
            LcSpec::redis(),
            LoadPattern::fig7(),
            BeSpec::all_paper_workloads(),
        );
        let mut policy = make_policy("mtat_full", &cfg, &exp.lc, &exp.bes);
        let r = exp.run(policy.as_mut());
        let decisions = (exp.duration_secs / interval).floor() as u64;
        println!(
            "{:.0}\t{:.2}\t{:.1}\t{}\t{:.2}",
            interval,
            r.violation_rate() * 100.0,
            r.mean_lc_fmem_ratio() * 100.0,
            decisions,
            r.avg_migration_bw() / 1e9
        );
    }
    println!("#");
    println!("# The paper's 60 s cadence on a 240 s trapezoid leaves only 4");
    println!("# decisions; the 10 s default keeps transient violations low");
    println!("# without raising the per-second migration bandwidth (the");
    println!("# Eq. (1) bound scales with the interval).");
}
