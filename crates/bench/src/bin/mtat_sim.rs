//! `mtat_sim` — configurable co-location simulator CLI.
//!
//! Runs one experiment with any LC workload, BE set, policy, and load
//! schedule, printing either a summary or the full TSV time series.
//!
//! ```text
//! mtat_sim [--lc redis|memcached|mongodb|silo]
//!          [--policy mtat_full|mtat_lc_only|memtis|tpp|hotset|fmem_all|smem_all]
//!          [--load fig7 | --load 0.8 | --load spike]
//!          [--duration SECS] [--seed N] [--lc-cores N]
//!          [--be sssp,bfs,pr,xsbench] [--timeseries]
//!          [--trace-out PATH] [--serve ADDR]
//! ```
//!
//! Examples:
//!
//! ```sh
//! mtat_sim --lc redis --policy mtat_full --load fig7
//! mtat_sim --lc memcached --policy memtis --load 0.8 --duration 120 --timeseries
//! ```

use std::process::ExitCode;

use mtat_bench::make_policy;
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_obs::alert::AlertRule;
use mtat_obs::serve::{TelemetryHub, TelemetryServer};
use mtat_obs::Obs;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

struct Args {
    lc: String,
    policy: String,
    load: String,
    duration: Option<f64>,
    seed: u64,
    lc_cores: Option<usize>,
    be: Vec<String>,
    timeseries: bool,
    trace_out: Option<String>,
    serve: Option<String>,
}

fn usage() -> &'static str {
    "usage: mtat_sim [--lc NAME] [--policy NAME] [--load fig7|spike|FRAC]\n\
     \x20               [--duration SECS] [--seed N] [--lc-cores N]\n\
     \x20               [--be a,b,c] [--timeseries] [--trace-out PATH]\n\
     \x20               [--serve ADDR]\n\
     \n\
     LC workloads:  redis (default), memcached, mongodb, silo\n\
     policies:      mtat_full (default), mtat_lc_only, memtis, tpp,\n\
     \x20             hotset, fmem_all, smem_all\n\
     BE workloads:  sssp, bfs, pr, xsbench (default: all four)"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lc: "redis".to_string(),
        policy: "mtat_full".to_string(),
        load: "fig7".to_string(),
        duration: None,
        seed: 0xC0FFEE,
        lc_cores: None,
        be: vec!["sssp".into(), "bfs".into(), "pr".into(), "xsbench".into()],
        timeseries: false,
        trace_out: None,
        serve: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--lc" => args.lc = value("--lc")?,
            "--policy" => args.policy = value("--policy")?,
            "--load" => args.load = value("--load")?,
            "--duration" => {
                args.duration = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--lc-cores" => {
                args.lc_cores = Some(
                    value("--lc-cores")?
                        .parse()
                        .map_err(|e| format!("--lc-cores: {e}"))?,
                )
            }
            "--be" => {
                args.be = value("--be")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--timeseries" => args.timeseries = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn lc_by_name(name: &str) -> Result<LcSpec, String> {
    Ok(match name {
        "redis" => LcSpec::redis(),
        "memcached" => LcSpec::memcached(),
        "mongodb" => LcSpec::mongodb(),
        "silo" => LcSpec::silo(),
        other => return Err(format!("unknown LC workload {other}")),
    })
}

fn be_by_name(name: &str) -> Result<BeSpec, String> {
    Ok(match name {
        "sssp" => BeSpec::sssp(),
        "bfs" => BeSpec::bfs(),
        "pr" => BeSpec::pagerank(),
        "xsbench" => BeSpec::xsbench(),
        other => return Err(format!("unknown BE workload {other}")),
    })
}

fn load_by_name(name: &str) -> Result<LoadPattern, String> {
    match name {
        "fig7" => Ok(LoadPattern::fig7()),
        "spike" => Ok(LoadPattern::spike(0.2, 1.0, 80.0, 60.0, 80.0)),
        frac => frac
            .parse::<f64>()
            .map(LoadPattern::Constant)
            .map_err(|_| format!("--load must be fig7, spike, or a fraction; got {frac}")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut lc = lc_by_name(&args.lc)?;
    if let Some(cores) = args.lc_cores {
        lc = lc.with_cores(cores);
    }
    let bes = args
        .be
        .iter()
        .map(|n| be_by_name(n))
        .collect::<Result<Vec<_>, _>>()?;
    let load = load_by_name(&args.load)?;
    let cfg = SimConfig::paper().with_seed(args.seed);

    let mut exp = Experiment::new(cfg.clone(), lc, load, bes);
    if let Some(d) = args.duration {
        exp = exp.with_duration(d);
    }
    // Tracing never perturbs the simulation; attaching a traced handle
    // only when asked keeps the default run allocation-free. Serving
    // needs a live registry for /metrics, so --serve implies at least a
    // metrics-enabled handle.
    let tele = if args.trace_out.is_some() {
        Some(Obs::traced())
    } else if args.serve.is_some() {
        Some(Obs::enabled())
    } else {
        None
    };
    if let Some(t) = &tele {
        exp = exp.with_obs(t.clone());
    }
    // Live telemetry plane: interval snapshots flow to the hub; the
    // server threads only read them, so the run is bit-identical with
    // serving on or off. The SLO burn-rate alert engine rides along so
    // /status shows firing alerts on a struggling run.
    let _server = match args.serve.as_deref() {
        Some(addr) => {
            let hub = TelemetryHub::new();
            let s = TelemetryServer::bind(addr, hub.clone())
                .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
            eprintln!("serving telemetry on http://{}/", s.local_addr());
            exp = exp
                .with_hub(hub)
                .with_alerts(AlertRule::default_rules(0.01));
            Some(s)
        }
        None => None,
    };

    eprintln!(
        "running {} under {} for {:.0}s (ref max {:.1} KRPS, seed {:#x})",
        exp.lc.name,
        args.policy,
        exp.duration_secs,
        exp.lc_max_ref / 1e3,
        args.seed
    );
    let mut policy = make_policy(&args.policy, &cfg, &exp.lc, &exp.bes);
    let result = exp.run(policy.as_mut());

    if let (Some(path), Some(t)) = (&args.trace_out, &tele) {
        let json = t.trace_json().expect("traced handle");
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote span trace to {path} (view: mtat-trace summary {path})");
    }

    if args.timeseries {
        print!("{}", result.to_tsv_string());
    }
    eprintln!("--- summary ---");
    eprintln!("policy:               {}", result.policy);
    eprintln!(
        "SLO violation rate:   {:.2}% (after 30s grace: {:.2}%)",
        result.violation_rate() * 100.0,
        result.violation_rate_after(30.0) * 100.0
    );
    eprintln!(
        "mean LC FMem ratio:   {:.1}%",
        result.mean_lc_fmem_ratio() * 100.0
    );
    eprintln!("BE fairness (min NP): {:.3}", result.fairness());
    eprintln!(
        "BE throughput:        {:.2} Mops/s  (NP {:?})",
        result.be_total_throughput() / 1e6,
        result
            .np()
            .iter()
            .map(|x| (x * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    eprintln!(
        "migration:            {:.1} GiB total, {:.2} GB/s average",
        result.total_migration_bytes as f64 / (1u64 << 30) as f64,
        result.avg_migration_bw() / 1e9
    );
    if args.serve.is_some() {
        let fired = result.alerts.iter().filter(|a| a.to == "firing").count();
        eprintln!(
            "alerts:               {} transitions, {fired} fired",
            result.alerts.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
