//! Extension experiment — response to a sudden demand surge.
//!
//! The paper motivates the RL partitioner with "rapid response to sudden
//! demand surges" (§3.2.1) but evaluates only staircase ramps. This
//! extension drives Redis with an instantaneous 20 % → 100 % load spike
//! and measures, for each adaptive policy:
//!
//! * the SLO violations incurred during the surge window,
//! * the *recovery time* — seconds from surge onset until the P99 is
//!   back under the SLO and stays there, and
//! * the FMem given back after the surge ends.
//!
//! Output: TSV per-policy summary plus a downsampled timeline.

use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const SURGE_START: f64 = 80.0;
const SURGE_SECS: f64 = 60.0;

fn main() {
    let cfg = SimConfig::paper();
    let pattern = LoadPattern::spike(0.2, 1.0, SURGE_START, SURGE_SECS, 80.0);
    let exp = Experiment::new(
        cfg.clone(),
        LcSpec::redis(),
        pattern,
        BeSpec::all_paper_workloads(),
    );

    header(&[
        "policy",
        "surge_violation_pct",
        "recovery_secs",
        "fmem_before_pct",
        "fmem_during_pct",
        "fmem_after_pct",
    ]);
    let mut timelines = Vec::new();
    for policy_name in ["mtat_full", "mtat_full_heuristic", "memtis", "hotset"] {
        let mut policy = make_policy(policy_name, &cfg, &exp.lc, &exp.bes);
        let r = exp.run(policy.as_mut());

        let surge_end = SURGE_START + SURGE_SECS;
        let window = |lo: f64, hi: f64| r.ticks.iter().filter(move |t| t.t >= lo && t.t < hi);
        let surge_requests: f64 = window(SURGE_START, surge_end).map(|t| t.lc_load_rps).sum();
        let surge_violated: f64 = window(SURGE_START, surge_end)
            .filter(|t| t.lc_violated)
            .map(|t| t.lc_load_rps)
            .sum();
        // Recovery: last violating tick within the surge window.
        let recovery = window(SURGE_START, surge_end)
            .filter(|t| t.lc_violated)
            .map(|t| t.t - SURGE_START + 1.0)
            .fold(0.0, f64::max);
        let mean_fmem = |lo: f64, hi: f64| {
            let v: Vec<f64> = window(lo, hi).map(|t| t.lc_fmem_ratio).collect();
            100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        println!(
            "{}\t{:.1}\t{:.0}\t{:.0}\t{:.0}\t{:.0}",
            policy_name,
            100.0 * surge_violated / surge_requests.max(1.0),
            recovery,
            mean_fmem(SURGE_START - 40.0, SURGE_START),
            mean_fmem(surge_end - 30.0, surge_end),
            mean_fmem(surge_end + 30.0, surge_end + 70.0),
        );
        timelines.push((policy_name, r));
    }
    println!("#");
    println!("# timeline: policy  t  p99_ms  fmem_pct");
    for (name, r) in &timelines {
        for tick in r.ticks.iter().step_by(10) {
            let p99_ms = if tick.lc_p99.is_finite() {
                tick.lc_p99 * 1e3
            } else {
                1e3
            };
            println!(
                "# {name}\t{:.0}\t{:.2}\t{:.0}",
                tick.t,
                p99_ms,
                tick.lc_fmem_ratio * 100.0
            );
        }
    }
}
