//! Data-plane microbenchmarks for the SoA arena hot paths.
//!
//! Times the three primitives the adaptive per-tick cost decomposes
//! into, in isolation, so a regression in any one of them is visible
//! before it washes out in the end-to-end ticks/sec number:
//!
//! * **migrate_batch** — owner-run batched tier moves over a candidate
//!   slice (pages/sec, ping-ponging a block between tiers so every call
//!   does real work);
//! * **rebin** — `AccessHistogram::add_rank` calls that each cross a
//!   bin boundary, exercising the swap-remove + segment-push index
//!   maintenance (ops/sec);
//! * **hottest-scan** — `hottest_matching_into` over a populated
//!   histogram with the residency-bitset predicate, the gather step of
//!   every enforcement tick (scans/sec and pages/sec).
//!
//! Writes `BENCH_micro.json` (override with `--out PATH`); CI uploads
//! the file as an artifact next to the span traces. Absolute numbers
//! are machine-dependent — the file is a provenance record, not a gate
//! (the gate is `perf_baseline --check`).

use std::time::Instant;

use mtat_tiermem::histogram::{AccessHistogram, NUM_BINS};
use mtat_tiermem::memory::{InitialPlacement, MemorySpec, TieredMemory};
use mtat_tiermem::page::{PageId, PageRegion, Tier};
use mtat_tiermem::MIB;

/// Minimum wall time per measurement; repeats until exceeded so quick
/// primitives still get a stable rate.
const MIN_SECS: f64 = 0.25;

/// Ping-pongs a 256-page block between tiers and returns pages/sec.
fn bench_migrate_batch() -> f64 {
    let spec = MemorySpec::new(512 * MIB, 8192 * MIB, MIB).unwrap();
    let mut mem = TieredMemory::new(spec);
    let w = mem
        .register_workload(4096 * MIB, InitialPlacement::AllSmem)
        .unwrap();
    let batch: Vec<PageId> = (0..256).map(|r| mem.region(w).page(r)).collect();
    let mut pages = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MIN_SECS {
        pages += mem.migrate_batch(&batch, Tier::FMem);
        pages += mem.migrate_batch(&batch, Tier::SMem);
    }
    assert!(mem.check_invariants().is_ok());
    pages as f64 / start.elapsed().as_secs_f64()
}

/// `add_rank` calls that each double the count — every call rebins
/// until the bin cap, then the histogram is aged back down. Returns
/// rebinning add_rank ops/sec.
fn bench_rebin() -> f64 {
    let n: u32 = 16384;
    let region = PageRegion {
        base: 0,
        n_pages: n,
    };
    let mut h = AccessHistogram::new(region);
    for r in 0..n {
        h.add_rank(r, 1);
    }
    let mut ops = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MIN_SECS {
        // Doubling a nonzero count advances its exponent bin by one.
        for _round in 0..(NUM_BINS - 2) {
            for r in 0..n {
                let c = h.count(PageId(r));
                h.add_rank(r, c);
                ops += 1;
            }
        }
        // Age back to bin 1 so the next pass rebins again.
        for _ in 0..NUM_BINS {
            h.age();
        }
        for r in 0..n {
            if h.count(PageId(r)) == 0 {
                h.add_rank(r, 1);
            }
        }
    }
    assert!(h.check_invariants().is_ok());
    ops as f64 / start.elapsed().as_secs_f64()
}

/// `hottest_matching_into` with the residency-bitset predicate over a
/// zipf-populated histogram. Returns (scans/sec, candidate pages/sec).
fn bench_hottest_scan() -> (f64, f64) {
    let n: u32 = 16384;
    let spec = MemorySpec::new(2048 * MIB, 32768 * MIB, MIB).unwrap();
    let mut mem = TieredMemory::new(spec);
    let w = mem
        .register_workload(n as u64 * MIB, InitialPlacement::AllSmem)
        .unwrap();
    let region = mem.region(w);
    let mut h = AccessHistogram::new(region);
    for r in 0..n {
        // Zipf-ish spread across bins.
        h.add_rank(r, 1 + (n - r) as u64 * 17 / (r as u64 + 3));
    }
    // Promote a quarter so the predicate actually filters.
    let promoted: Vec<PageId> = (0..n / 4).map(|r| region.page(r * 4)).collect();
    mem.migrate_batch(&promoted, Tier::FMem);
    let k = 1024usize;
    let mut out = Vec::with_capacity(k);
    let mut scans = 0u64;
    let mut pages = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < MIN_SECS {
        h.hottest_matching_into(&mut out, k, |p| !mem.is_fmem(p));
        scans += 1;
        pages += out.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    (scans as f64 / secs, pages as f64 / secs)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_micro.json".to_string());

    eprintln!("# microbench: migrate_batch...");
    let migrate = bench_migrate_batch();
    eprintln!("#   {migrate:.0} pages/s");
    eprintln!("# microbench: rebin (bin-crossing add_rank)...");
    let rebin = bench_rebin();
    eprintln!("#   {rebin:.0} ops/s");
    eprintln!("# microbench: hottest-scan (k=1024, bitset predicate)...");
    let (scans, scan_pages) = bench_hottest_scan();
    eprintln!("#   {scans:.0} scans/s, {scan_pages:.0} pages/s");

    let json = format!(
        "{{\n  \"schema\": 1,\n  \
         \"migrate_batch_pages_per_sec\": {migrate:.0},\n  \
         \"rebin_ops_per_sec\": {rebin:.0},\n  \
         \"hottest_scan_per_sec\": {scans:.0},\n  \
         \"hottest_scan_pages_per_sec\": {scan_pages:.0}\n}}\n"
    );
    print!("{json}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("# wrote {out_path}");
}
