//! Chaos matrix — robustness of the MTAT control loop under injected
//! substrate faults.
//!
//! Runs a policy × fault-scenario matrix (sampler blackout, migration
//! stall, telemetry staleness, flaky migrations, bandwidth contention)
//! and reports, per cell:
//!
//! * SLO-violation rates overall, inside the fault window, and during
//!   the post-fault recovery phase;
//! * BE throughput retained relative to the same policy's fault-free
//!   run;
//! * the engine's `failed_moves` / `retried_moves` counters (PP-E
//!   deferred-retry activity);
//! * for supervised policies, the degraded-tick fraction, the
//!   supervisor's transition log, and the time from fault clearance to
//!   re-promotion of the RL sizer.
//!
//! Every run is deterministic: the simulation seed and the fault plan's
//! seed fix the entire trajectory. Output is a JSON document on stdout.

use std::panic::{self, AssertUnwindSafe};

use mtat_bench::{harness, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_core::stats::RunResult;
use mtat_core::HealthConfig;
use mtat_obs::export::{json_f64, json_opt_f64};
use mtat_obs::{obs_enabled, trace_enabled, Obs};
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

/// Simulation-time shape shared by every scenario: the fault arrives
/// during a calm phase (where a blinded sizer can silently mis-size the
/// partition) and persists through the onset of a load surge — the
/// moment the control loop matters most.
const FAULT_START: f64 = 40.0;
const FAULT_SECS: f64 = 95.0;
const DURATION: f64 = 240.0;

const POLICIES: [&str; 2] = ["mtat_full", "mtat_full_supervised"];

fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "sampler_blackout",
            FaultPlan::new(0xB1ACC).with(FaultKind::SamplerBlackout, FAULT_START, FAULT_SECS),
        ),
        (
            // A cascading memory-subsystem brown-out: the PEBS sampler
            // goes dark first, and 50 s later the migration path wedges
            // too (stalled until the whole fault clears). Whatever
            // provisioning the control loop managed in between is frozen
            // in place for the surge.
            "migration_stall",
            FaultPlan::new(0x57A11)
                .with(FaultKind::SamplerBlackout, FAULT_START, FAULT_SECS)
                .with(
                    FaultKind::MigrationStall,
                    FAULT_START + 50.0,
                    FAULT_SECS - 50.0,
                ),
        ),
        (
            "telemetry_stale",
            FaultPlan::new(0x57A1E)
                .with(
                    FaultKind::TelemetryStale { ticks: 5 },
                    FAULT_START,
                    FAULT_SECS,
                )
                .with(
                    FaultKind::TelemetryNoise { amplitude: 0.35 },
                    FAULT_START,
                    FAULT_SECS,
                ),
        ),
        (
            "flaky_migration",
            FaultPlan::new(0xF1A2)
                .with(
                    FaultKind::MigrationFlaky { prob: 0.6 },
                    FAULT_START,
                    FAULT_SECS,
                )
                .with(FaultKind::SamplerBlackout, FAULT_START, FAULT_SECS),
        ),
        (
            "bandwidth_spike",
            FaultPlan::new(0xB0057)
                .with(
                    FaultKind::BandwidthSpike { extra: 0.4 },
                    FAULT_START,
                    FAULT_SECS,
                )
                .with(FaultKind::SamplerBlackout, FAULT_START, FAULT_SECS),
        ),
        (
            // The PP-M daemon itself dies mid-run and stays down through
            // the surge. PP-E keeps enforcing the last plan; the restarted
            // daemon either resumes from its checkpoint (supervised arm)
            // or comes back cold with an untrained sizer (unsupervised).
            "ppm_crash",
            FaultPlan::new(0xDEAD1).with(FaultKind::PpmCrash, FAULT_START, FAULT_SECS),
        ),
        (
            // Crash-loop: three consecutive daemon deaths with short
            // recovery gaps, the last one clearing at the usual fault_end.
            // The first freeze spans the surge onset and the gaps fall
            // inside the surge, so every restart drops the daemon into
            // the worst moment and repeats the checkpoint-vs-cold
            // divergence under pressure.
            "ppm_crash_loop",
            FaultPlan::new(0xDEAD3)
                .with(FaultKind::PpmCrash, 85.0, 15.0)
                .with(FaultKind::PpmCrash, 105.0, 15.0)
                .with(FaultKind::PpmCrash, 125.0, 10.0),
        ),
    ]
}

/// Self-healing scenarios: the fault strikes late in the surge plateau
/// (the plan in force is surge-sized, LC-heavy), so an arm that freezes
/// or pins a conservative partition starves the BE tier for the rest of
/// the run while the self-healing arm rolls back and re-adapts.
const HEAL_POLICY: &str = "mtat_full_supervised";

fn heal_scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            // The learned controller's actor network is poisoned with
            // NaN mid-surge — detection, rollback to the last known-good
            // checkpoint, and re-entry all happen under pressure.
            "ppm_poison",
            FaultPlan::new(0x9015).with(FaultKind::SacPoison, 130.0, 2.0),
        ),
        (
            // The worst correlated failure: sampler thinning, migration
            // throttle + flakiness, telemetry noise, a bandwidth spike,
            // and (at this intensity) an actor poisoning at the rising
            // edge, sustained from late surge into the recovery phase.
            "fault_storm",
            FaultPlan::new(0x5702).with(FaultKind::FaultStorm { intensity: 0.95 }, 125.0, 40.0),
        ),
    ]
}

fn heal_arms() -> Vec<(&'static str, HealthConfig)> {
    vec![
        ("self_heal", HealthConfig::self_heal()),
        ("crash_stop", HealthConfig::crash_stop()),
        ("no_rollback", HealthConfig::no_rollback()),
    ]
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwraps per-cell results, reporting every panicked cell by its
/// (policy, scenario) pair and exiting non-zero if any cell failed —
/// one poisoned cell must not take down the report of the others or,
/// worse, deadlock the matrix.
fn unwrap_cells(labeled: Vec<(String, Result<RunResult, String>)>) -> Vec<RunResult> {
    let mut runs = Vec::with_capacity(labeled.len());
    let mut failed = 0usize;
    for (label, res) in labeled {
        match res {
            Ok(r) => runs.push(r),
            Err(msg) => {
                failed += 1;
                eprintln!("# CELL PANICKED: {label}: {msg}");
            }
        }
    }
    if failed > 0 {
        eprintln!("# {failed} cell(s) panicked; aborting");
        std::process::exit(1);
    }
    runs
}

/// Crash scenarios measure checkpoint/restore, so the supervised arm
/// runs with in-memory checkpointing while the unsupervised arm restarts
/// cold. Non-crash scenarios never restart and run unchanged.
fn arm_experiment(base: &Experiment, scenario: Option<&str>, policy: &str) -> Experiment {
    let crash = scenario.is_some_and(|s| s.starts_with("ppm_crash"));
    if crash && policy.ends_with("_supervised") {
        base.clone().with_checkpoints(CheckpointCfg::in_memory())
    } else {
        base.clone()
    }
}

/// Fraction of ticks inside `[from, to)` that violated the SLO.
fn violation_rate_between(r: &RunResult, from: f64, to: f64) -> f64 {
    let (mut total, mut bad) = (0u64, 0u64);
    for t in &r.ticks {
        if t.t >= from && t.t < to {
            total += 1;
            bad += u64::from(t.lc_violated);
        }
    }
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

/// Seconds from fault clearance until the supervised policy is back on
/// the RL sizer (`None` when it never re-promotes, or was never
/// demoted — distinguished by `degraded_tick_fraction`).
fn repromote_secs(r: &RunResult, fault_end: f64) -> Option<f64> {
    r.first_rl_at_or_after(fault_end).map(|t| t - fault_end)
}

/// First instant at or after fault clearance from which the following
/// `window_ticks` ticks are violation-free — the SLO-level recovery
/// point.
fn slo_recover_secs(r: &RunResult, fault_end: f64, window_ticks: usize) -> Option<f64> {
    let start = r.ticks.iter().position(|t| t.t >= fault_end)?;
    let v: Vec<bool> = r.ticks[start..].iter().map(|t| t.lc_violated).collect();
    for i in 0..v.len() {
        if v[i..].iter().take(window_ticks).all(|&b| !b) {
            return Some(r.ticks[start + i].t - fault_end);
        }
    }
    None
}

/// Cross-checks the shared registry against the runs' own records: the
/// `runner.lc_p99_ns` histogram aggregated over every cell must agree —
/// within its configured relative-error bound — with the exact
/// nearest-rank p99 over all per-tick P99 values, and the tick counter
/// must match exactly. A drift here means the instrumentation and the
/// physics disagree about what happened.
fn assert_registry_consistent(tele: &Obs, runs: &[RunResult]) {
    let mut ns: Vec<u64> = runs
        .iter()
        .flat_map(|r| r.ticks.iter())
        .map(|t| (t.lc_p99 * 1e9).round() as u64)
        .collect();
    let total_ticks = ns.len() as u64;
    assert_eq!(
        tele.counter_value("runner.ticks"),
        Some(total_ticks),
        "registry tick counter disagrees with the runs"
    );
    ns.sort_unstable();
    let rank = ((0.99 * total_ticks as f64).ceil() as usize).clamp(1, ns.len());
    let exact = ns[rank - 1];
    let (approx, bound) = tele
        .with_registry(|reg| {
            let h = reg.histogram("runner.lc_p99_ns").expect("histogram exists");
            assert_eq!(h.count(), total_ticks);
            (h.p99(), h.relative_error_bound())
        })
        .expect("telemetry enabled");
    let err = (approx as f64 - exact as f64).abs() / exact.max(1) as f64;
    assert!(
        err <= bound,
        "metrics p99 {approx} ns vs exact {exact} ns: rel err {err:.6} exceeds bound {bound:.6}"
    );
    eprintln!(
        "# metrics cross-check: p99 {approx} ns vs exact {exact} ns (rel err {err:.2e} <= {bound:.2e}), {total_ticks} ticks"
    );
}

/// Cross-checks the registry against the runs, then emits the snapshot:
/// JSON to `path` and Prometheus text to `path.prom` when a path is
/// given, both to stderr otherwise. No-op when telemetry is disabled.
fn emit_metrics(tele: &Obs, runs: &[RunResult], path: Option<&str>) {
    if !tele.is_enabled() {
        return;
    }
    assert_registry_consistent(tele, runs);
    let json = tele.snapshot_json().expect("telemetry enabled");
    let prom = tele
        .snapshot_prometheus(&[("bench", "chaos_matrix")])
        .expect("telemetry enabled");
    match path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            let prom_path = format!("{path}.prom");
            std::fs::write(&prom_path, &prom)
                .unwrap_or_else(|e| panic!("cannot write {prom_path}: {e}"));
            eprintln!("# wrote metrics snapshot to {path} and {prom_path}");
        }
        None => {
            eprintln!("# metrics snapshot (json):");
            eprintln!("{json}");
            eprintln!("# metrics snapshot (prometheus):");
            eprintln!("{prom}");
        }
    }
}

/// Writes the span-trace document (spans + decision provenance) to
/// `path`. No-op unless the handle traces and a path was given.
fn emit_trace(tele: &Obs, path: Option<&str>) {
    let (Some(path), Some(json)) = (path, tele.trace_json()) else {
        return;
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("# wrote span trace to {path} (view: mtat-trace summary {path})");
}

fn main() {
    // `chaos_matrix --trace <scenario>` dumps the per-tick TSV time
    // series of both policies for one scenario instead of the matrix.
    // `--metrics-out PATH` additionally writes the aggregated metrics
    // registry as JSON (plus `PATH.prom` in Prometheus text format);
    // setting `MTAT_OBS=on` without a path prints both to stderr.
    // `--trace-out PATH` records phase spans + decision provenance for
    // every cell and writes the `mtat-trace` document there (also
    // enabled by `MTAT_TRACE=on`, which prints nothing without a path).
    let args: Vec<String> = std::env::args().collect();
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // One registry shared by every cell: counters and histograms
    // aggregate across the whole matrix. Telemetry never perturbs the
    // simulation, so the report below is byte-identical either way.
    let tele = if trace_out.is_some() || trace_enabled() {
        Obs::traced()
    } else if obs_enabled() || metrics_out.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let cfg = SimConfig::paper();
    let lc = LcSpec::redis();
    let bes = BeSpec::all_paper_workloads();
    // Moderate load through the first 100 s (the fault begins at 40 s,
    // during calm, so a blinded sizer has time to mis-provision), then a
    // surge at 100–160 s while the fault is still active, then back down
    // for the recovery phase.
    let load = LoadPattern::Steps(vec![(100.0, 0.45), (60.0, 0.9), (80.0, 0.45)]);
    let fault_end = FAULT_START + FAULT_SECS;

    let base = Experiment::new(cfg.clone(), lc.clone(), load, bes.clone()).with_duration(DURATION);

    if let Some(scenario) = trace {
        let plan = scenarios()
            .into_iter()
            .find(|(n, _)| *n == scenario)
            .unwrap_or_else(|| panic!("unknown scenario {scenario}"))
            .1;
        let exp = base.with_fault_plan(plan);
        let runs = unwrap_cells(harness::run_matrix(
            &POLICIES,
            harness::worker_count(POLICIES.len()),
            |_, name| {
                let label = format!("{name}/{scenario}");
                let res = panic::catch_unwind(AssertUnwindSafe(|| {
                    let _cell = tele.span_labeled(0.0, "cell", &label);
                    let mut p = make_policy(name, &cfg, &lc, &bes);
                    arm_experiment(&exp, Some(&scenario), name)
                        .with_obs(tele.clone())
                        .run(p.as_mut())
                }))
                .map_err(panic_message);
                (label, res)
            },
        ));
        for (name, r) in POLICIES.iter().zip(&runs) {
            println!("## {name}");
            print!("{}", r.to_tsv_string());
        }
        emit_metrics(&tele, &runs, metrics_out.as_deref());
        emit_trace(&tele, trace_out.as_deref());
        return;
    }

    // The full policy × (fault-free + scenario) matrix runs in parallel:
    // every cell is seeded identically to the serial version, so the
    // JSON below is byte-for-byte what a serial sweep prints.
    let scs = scenarios();
    let mut cells: Vec<(Option<usize>, &str)> = Vec::new();
    for name in &POLICIES {
        cells.push((None, name)); // fault-free reference (BE denominator)
    }
    for si in 0..scs.len() {
        for name in &POLICIES {
            cells.push((Some(si), name));
        }
    }
    let runs = unwrap_cells(harness::run_matrix(
        &cells,
        harness::worker_count(cells.len()),
        |_, cell| {
            let (scenario, name) = *cell;
            let label = format!("{name}/{}", scenario.map_or("clean", |si| scs[si].0));
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                let _cell = tele.span_labeled(0.0, "cell", &label);
                let exp = match scenario {
                    None => base.clone(),
                    Some(si) => {
                        let faulted = base.clone().with_fault_plan(scs[si].1.clone());
                        arm_experiment(&faulted, Some(scs[si].0), name)
                    }
                };
                let mut p = make_policy(name, &cfg, &lc, &bes);
                exp.with_obs(tele.clone()).run(p.as_mut())
            }))
            .map_err(panic_message);
            (label, res)
        },
    ));
    let clean: Vec<(String, RunResult)> = POLICIES
        .iter()
        .zip(&runs)
        .map(|(n, r)| (n.to_string(), r.clone()))
        .collect();

    println!("{{");
    println!("  \"lc\": \"{}\",", lc.name);
    println!(
        "  \"fault_window_secs\": [{FAULT_START:.0}, {fault_end:.0}], \"duration_secs\": {DURATION:.0},"
    );
    println!("  \"policies\": [\"{}\"],", POLICIES.join("\", \""));
    println!("  \"scenarios\": [");

    let mut verdicts = Vec::new();
    for (si, (scenario, _plan)) in scs.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{scenario}\",");
        println!("      \"runs\": [");
        let mut rates = Vec::new();
        let mut retaineds = Vec::new();
        for (pi, name) in POLICIES.iter().enumerate() {
            let r = &runs[POLICIES.len() + si * POLICIES.len() + pi];
            let clean_be = clean
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.be_total_throughput())
                .unwrap_or(f64::NAN);
            let retained = if clean_be > 0.0 {
                r.be_total_throughput() / clean_be
            } else {
                f64::NAN
            };
            let overall = r.violation_rate_after(20.0);
            rates.push(overall);
            retaineds.push(retained);
            println!("        {{");
            println!("          \"policy\": \"{name}\",");
            println!("          \"violation_rate\": {},", json_f64(overall));
            println!(
                "          \"violation_rate_in_fault\": {},",
                json_f64(violation_rate_between(r, FAULT_START, fault_end))
            );
            println!(
                "          \"violation_rate_post_fault\": {},",
                json_f64(violation_rate_between(r, fault_end, DURATION))
            );
            println!(
                "          \"be_throughput_retained\": {},",
                json_f64(retained)
            );
            println!("          \"failed_moves\": {},", r.failed_moves);
            println!("          \"retried_moves\": {},", r.retried_moves);
            println!(
                "          \"degraded_tick_fraction\": {},",
                json_f64(r.degraded_tick_fraction(0.0))
            );
            println!(
                "          \"repromote_secs_after_clearance\": {},",
                json_opt_f64(repromote_secs(r, fault_end))
            );
            println!(
                "          \"slo_recover_secs_after_clearance\": {}",
                json_opt_f64(slo_recover_secs(r, fault_end, 10))
            );
            let comma = if pi + 1 < POLICIES.len() { "," } else { "" };
            println!("        }}{comma}");
        }
        println!("      ],");
        // Fault scenarios are judged on SLO compliance alone. Crash
        // scenarios are judged on the paper's full objective — BE
        // throughput subject to the LC SLO — because a cold-restarted
        // untrained sizer is "safe" in the same way FMEM_ALL is safe:
        // it over-provisions the LC and starves the BE tier. The
        // checkpointed daemon must not regress SLO compliance AND must
        // retain strictly more BE throughput than the cold restart.
        let improved = if scenario.starts_with("ppm_crash") {
            rates[1] <= rates[0] + 1e-9 && retaineds[1] > retaineds[0]
        } else {
            rates[1] < rates[0]
        };
        verdicts.push((*scenario, rates[0], rates[1], improved));
        println!("      \"supervised_improves\": {improved}");
        let comma = if si + 1 < scs.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ],");

    // ---- Self-healing ablation: recovery-mode arms under poison ----
    // Same policy, same fault, three answers: autonomous rollback
    // (self_heal), kill the daemon on first incident (crash_stop), and
    // detect-but-never-restore (no_rollback). The paper's objective —
    // BE throughput subject to the LC SLO — is asserted below: the
    // self-healing arm must strictly beat both ablations on BE
    // throughput at equal-or-better SLO compliance.
    let heal_scs = heal_scenarios();
    let arms = heal_arms();
    let mut heal_cells: Vec<(usize, usize)> = Vec::new();
    for si in 0..heal_scs.len() {
        for ai in 0..arms.len() {
            heal_cells.push((si, ai));
        }
    }
    let heal_runs = unwrap_cells(harness::run_matrix(
        &heal_cells,
        harness::worker_count(heal_cells.len()),
        |_, &(si, ai)| {
            let label = format!("{HEAL_POLICY}/{}/{}", heal_scs[si].0, arms[ai].0);
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                let _cell = tele.span_labeled(0.0, "cell", &label);
                let exp = base
                    .clone()
                    .with_fault_plan(heal_scs[si].1.clone())
                    .with_checkpoints(CheckpointCfg::in_memory())
                    .with_health(arms[ai].1.clone());
                let mut p = make_policy(HEAL_POLICY, &cfg, &lc, &bes);
                exp.with_obs(tele.clone()).run(p.as_mut())
            }))
            .map_err(panic_message);
            (label, res)
        },
    ));

    println!("  \"self_healing\": [");
    let mut heal_verdicts = Vec::new();
    for (si, (scenario, _)) in heal_scs.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{scenario}\",");
        println!("      \"policy\": \"{HEAL_POLICY}\",");
        println!("      \"arms\": [");
        let mut stats = Vec::new();
        for (ai, (arm, _)) in arms.iter().enumerate() {
            let r = &heal_runs[si * arms.len() + ai];
            let h = r.health.as_ref().expect("health arms carry a summary");
            let vr = r.violation_rate_after(20.0);
            let be = r.be_total_throughput();
            stats.push((vr, be));
            println!("        {{");
            println!("          \"arm\": \"{arm}\",");
            println!("          \"violation_rate\": {},", json_f64(vr));
            println!("          \"be_total_throughput\": {},", json_f64(be));
            println!("          \"rollbacks\": {},", h.rollbacks);
            println!("          \"repairs\": {},", h.repairs);
            println!("          \"unrecovered\": {},", h.unrecovered);
            println!("          \"quarantined\": {}", h.quarantined);
            let comma = if ai + 1 < arms.len() { "," } else { "" };
            println!("        }}{comma}");
        }
        println!("      ],");
        let (vr_sh, be_sh) = stats[0];
        let wins = stats[1..]
            .iter()
            .all(|&(vr, be)| be_sh > be && vr_sh <= vr + 1e-9);
        println!("      \"self_heal_wins\": {wins}");
        heal_verdicts.push((*scenario, stats, wins));
        let comma = if si + 1 < heal_scs.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ]");
    println!("}}");

    let all_runs: Vec<RunResult> = runs.iter().chain(&heal_runs).cloned().collect();
    emit_metrics(&tele, &all_runs, metrics_out.as_deref());
    emit_trace(&tele, trace_out.as_deref());

    eprintln!("# heal scenario\tarm\tviolation_rate\tbe_throughput");
    for (s, stats, wins) in &heal_verdicts {
        for ((arm, _), (vr, be)) in arms.iter().zip(stats) {
            eprintln!("# {s}\t{arm}\t{vr:.4}\t{be:.1}");
        }
        let sh = &heal_runs[heal_scs.iter().position(|(n, _)| n == s).expect("known") * arms.len()];
        let h = sh.health.as_ref().expect("summary");
        assert_eq!(
            h.unrecovered, 0,
            "{s}: self-heal must recover every incident: {h:?}"
        );
        assert!(!h.quarantined, "{s}: rollback budget must hold: {h:?}");
        assert!(h.final_audit_ok, "{s}: substrate consistent at end");
        assert!(
            wins,
            "{s}: self-heal must strictly beat crash-stop and no-rollback on BE \
             throughput at equal-or-better SLO compliance: {stats:?}"
        );
    }

    eprintln!("# scenario\tunsupervised\tsupervised\timproved");
    for (s, u, v, ok) in verdicts {
        eprintln!("# {s}\t{u:.4}\t{v:.4}\t{ok}");
        // A supervised+checkpointed restart must beat the cold restart of
        // the unsupervised arm — the whole point of checkpoint/restore.
        if s.starts_with("ppm_crash") {
            assert!(
                ok,
                "{s}: supervised+checkpointed ({v:.4}) must beat unsupervised cold restart ({u:.4})"
            );
        }
    }
}
