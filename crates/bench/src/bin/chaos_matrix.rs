//! Chaos matrix — robustness of the MTAT control loop under injected
//! substrate faults and adversarial workload dynamics.
//!
//! Runs a policy × fault-scenario matrix (sampler blackout, migration
//! stall, telemetry staleness, flaky migrations, bandwidth contention)
//! and reports, per cell:
//!
//! * SLO-violation rates overall, inside the fault window, and during
//!   the post-fault recovery phase;
//! * BE throughput retained relative to the same policy's fault-free
//!   run;
//! * the engine's `failed_moves` / `retried_moves` counters (PP-E
//!   deferred-retry activity);
//! * for supervised policies, the degraded-tick fraction, the
//!   supervisor's transition log, and the time from fault clearance to
//!   re-promotion of the RL sizer.
//!
//! A second matrix crosses policies (hardened MTAT, naive MTAT, and the
//! rival baselines) with the adversarial workload scenarios from
//! `mtat_workloads::scenario` (hot-set thrash, zipf phase shifts,
//! working-set blowups, leak drift, antagonist bursts, flash crowds),
//! each in a nominal and a substrate-faulted arm, and asserts that the
//! hardened arm beats the naive arm and every rival on BE throughput at
//! equal SLO compliance in the thrash and blowup cells.
//!
//! Every run is deterministic: the simulation seed, the scenario seed,
//! and the fault plan's seed fix the entire trajectory. Output is a
//! JSON document on stdout. `--quick` runs only the adversarial
//! assertion cells (the PR-gate mode).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mtat_bench::{harness, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_core::stats::RunResult;
use mtat_core::HealthConfig;
use mtat_obs::export::{json_f64, json_opt_f64};
use mtat_obs::serve::{TelemetryHub, TelemetryServer};
use mtat_obs::{obs_enabled, trace_enabled, Obs};
use mtat_tiermem::faults::FaultPlan;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;
use mtat_workloads::scenario::{
    adversarial_fault_plan, adversarial_scenarios, chaos_fault_scenarios, heal_fault_scenarios,
    ScenarioSpec, FAULT_START_SECS, FAULT_WINDOW_SECS,
};

/// Simulation-time shape shared by every scenario: the fault arrives
/// during a calm phase (where a blinded sizer can silently mis-size the
/// partition) and persists through the onset of a load surge — the
/// moment the control loop matters most. The timings live in the shared
/// scenario registry; these aliases keep the report code readable.
const FAULT_START: f64 = FAULT_START_SECS;
const FAULT_SECS: f64 = FAULT_WINDOW_SECS;
const DURATION: f64 = 240.0;

const POLICIES: [&str; 2] = ["mtat_full", "mtat_full_supervised"];

fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    chaos_fault_scenarios()
}

/// Self-healing scenarios: the fault strikes late in the surge plateau
/// (the plan in force is surge-sized, LC-heavy), so an arm that freezes
/// or pins a conservative partition starves the BE tier for the rest of
/// the run while the self-healing arm rolls back and re-adapts.
const HEAL_POLICY: &str = "mtat_full_supervised";

fn heal_scenarios() -> Vec<(&'static str, FaultPlan)> {
    heal_fault_scenarios()
}

/// The adversarial matrix's policy axis: the hardened arm first (the
/// assertions index it), then its naive ablation (same supervisor, no
/// guards), then the rival baselines.
const ADV_POLICIES: [&str; 5] = [
    "mtat_full_hardened",
    "mtat_full_supervised",
    "memtis",
    "tpp",
    "fmem_all",
];

/// Scenarios whose cells carry the hardened-vs-naive win assertions.
const ADV_ASSERT_SCENARIOS: [&str; 2] = ["thrash_rotate", "ws_blowup"];

/// "Equal SLO compliance" tolerance for the win assertions: the
/// hardened arm's violation rate may exceed a rival's by at most this
/// much while still claiming the BE-throughput win.
const ADV_VR_TOL: f64 = 0.02;

fn heal_arms() -> Vec<(&'static str, HealthConfig)> {
    vec![
        ("self_heal", HealthConfig::self_heal()),
        ("crash_stop", HealthConfig::crash_stop()),
        ("no_rollback", HealthConfig::no_rollback()),
    ]
}

/// Live cell-progress publisher: counts completed matrix cells and,
/// when `--serve` is up, pushes each completion into the hub's event
/// tail and refreshes the `/status` document. Cells finish on worker
/// threads in a nondeterministic order, so the counter is atomic and
/// the published document carries only monotone aggregate state — the
/// matrix results themselves are untouched (serving is read-only).
struct MatrixProgress {
    hub: Option<TelemetryHub>,
    done: AtomicUsize,
    total: AtomicUsize,
}

impl MatrixProgress {
    fn new(hub: Option<TelemetryHub>) -> Self {
        Self {
            hub,
            done: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }

    /// Announces `n` more cells in flight (called once per sub-matrix).
    fn add_cells(&self, n: usize, section: &str) {
        self.total.fetch_add(n, Ordering::Relaxed);
        if let Some(hub) = &self.hub {
            hub.push_event(format!("section {section}: {n} cells queued"));
        }
        self.publish("running");
    }

    fn cell_done(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(hub) = &self.hub {
            hub.push_event(format!(
                "cell done ({done}/{}): {label}",
                self.total.load(Ordering::Relaxed)
            ));
        }
        self.publish("running");
    }

    fn publish(&self, phase: &str) {
        let Some(hub) = &self.hub else { return };
        let done = self.done.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let progress = if total == 0 {
            0.0
        } else {
            done as f64 / total as f64
        };
        hub.publish_status(format!(
            "{{\"harness\":\"chaos_matrix\",\"phase\":\"{phase}\",\"cells_done\":{done},\
             \"cells_total\":{total},\"progress\":{progress:.4}}}"
        ));
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwraps per-cell results, reporting every panicked cell by its
/// (policy, scenario) pair and exiting non-zero if any cell failed —
/// one poisoned cell must not take down the report of the others or,
/// worse, deadlock the matrix.
fn unwrap_cells(labeled: Vec<(String, Result<RunResult, String>)>) -> Vec<RunResult> {
    let mut runs = Vec::with_capacity(labeled.len());
    let mut failed = 0usize;
    for (label, res) in labeled {
        match res {
            Ok(r) => runs.push(r),
            Err(msg) => {
                failed += 1;
                eprintln!("# CELL PANICKED: {label}: {msg}");
            }
        }
    }
    if failed > 0 {
        eprintln!("# {failed} cell(s) panicked; aborting");
        std::process::exit(1);
    }
    runs
}

/// Crash scenarios measure checkpoint/restore, so the supervised arm
/// runs with in-memory checkpointing while the unsupervised arm restarts
/// cold. Non-crash scenarios never restart and run unchanged.
fn arm_experiment(base: &Experiment, scenario: Option<&str>, policy: &str) -> Experiment {
    let crash = scenario.is_some_and(|s| s.starts_with("ppm_crash"));
    if crash && policy.ends_with("_supervised") {
        base.clone().with_checkpoints(CheckpointCfg::in_memory())
    } else {
        base.clone()
    }
}

/// Fraction of ticks inside `[from, to)` that violated the SLO.
fn violation_rate_between(r: &RunResult, from: f64, to: f64) -> f64 {
    let (mut total, mut bad) = (0u64, 0u64);
    for t in &r.ticks {
        if t.t >= from && t.t < to {
            total += 1;
            bad += u64::from(t.lc_violated);
        }
    }
    if total == 0 {
        0.0
    } else {
        bad as f64 / total as f64
    }
}

/// Seconds from fault clearance until the supervised policy is back on
/// the RL sizer (`None` when it never re-promotes, or was never
/// demoted — distinguished by `degraded_tick_fraction`).
fn repromote_secs(r: &RunResult, fault_end: f64) -> Option<f64> {
    r.first_rl_at_or_after(fault_end).map(|t| t - fault_end)
}

/// First instant at or after fault clearance from which the following
/// `window_ticks` ticks are violation-free — the SLO-level recovery
/// point.
fn slo_recover_secs(r: &RunResult, fault_end: f64, window_ticks: usize) -> Option<f64> {
    let start = r.ticks.iter().position(|t| t.t >= fault_end)?;
    let v: Vec<bool> = r.ticks[start..].iter().map(|t| t.lc_violated).collect();
    for i in 0..v.len() {
        if v[i..].iter().take(window_ticks).all(|&b| !b) {
            return Some(r.ticks[start + i].t - fault_end);
        }
    }
    None
}

/// Cross-checks the shared registry against the runs' own records: the
/// `runner.lc_p99_ns` histogram aggregated over every cell must agree —
/// within its configured relative-error bound — with the exact
/// nearest-rank p99 over all per-tick P99 values, and the tick counter
/// must match exactly. A drift here means the instrumentation and the
/// physics disagree about what happened.
fn assert_registry_consistent(tele: &Obs, runs: &[RunResult]) {
    let mut ns: Vec<u64> = runs
        .iter()
        .flat_map(|r| r.ticks.iter())
        .map(|t| (t.lc_p99 * 1e9).round() as u64)
        .collect();
    let total_ticks = ns.len() as u64;
    assert_eq!(
        tele.counter_value("runner.ticks"),
        Some(total_ticks),
        "registry tick counter disagrees with the runs"
    );
    ns.sort_unstable();
    let rank = ((0.99 * total_ticks as f64).ceil() as usize).clamp(1, ns.len());
    let exact = ns[rank - 1];
    let (approx, bound) = tele
        .with_registry(|reg| {
            let h = reg.histogram("runner.lc_p99_ns").expect("histogram exists");
            assert_eq!(h.count(), total_ticks);
            (h.p99(), h.relative_error_bound())
        })
        .expect("telemetry enabled");
    let err = (approx as f64 - exact as f64).abs() / exact.max(1) as f64;
    assert!(
        err <= bound,
        "metrics p99 {approx} ns vs exact {exact} ns: rel err {err:.6} exceeds bound {bound:.6}"
    );
    eprintln!(
        "# metrics cross-check: p99 {approx} ns vs exact {exact} ns (rel err {err:.2e} <= {bound:.2e}), {total_ticks} ticks"
    );
}

/// Cross-checks the registry against the runs, then emits the snapshot:
/// JSON to `path` and Prometheus text to `path.prom` when a path is
/// given, both to stderr otherwise. No-op when telemetry is disabled.
fn emit_metrics(tele: &Obs, runs: &[RunResult], path: Option<&str>) {
    if !tele.is_enabled() {
        return;
    }
    assert_registry_consistent(tele, runs);
    // Record the execution shape in the snapshot itself, so determinism
    // claims ("byte-identical at any worker count") are auditable from
    // the artifact alone.
    tele.gauge("harness.workers", harness::worker_count(runs.len()) as f64);
    tele.gauge("harness.cells", runs.len() as f64);
    let json = tele.snapshot_json().expect("telemetry enabled");
    let prom = tele
        .snapshot_prometheus(&[("bench", "chaos_matrix")])
        .expect("telemetry enabled");
    match path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            let prom_path = format!("{path}.prom");
            std::fs::write(&prom_path, &prom)
                .unwrap_or_else(|e| panic!("cannot write {prom_path}: {e}"));
            eprintln!("# wrote metrics snapshot to {path} and {prom_path}");
        }
        None => {
            eprintln!("# metrics snapshot (json):");
            eprintln!("{json}");
            eprintln!("# metrics snapshot (prometheus):");
            eprintln!("{prom}");
        }
    }
}

/// Runs the adversarial policy × scenario × {nominal, faulted} matrix,
/// prints its JSON section (the value of the `"adversarial"` key —
/// caller prints the key), verifies the hardened-vs-naive win
/// assertions in the thrash and blowup cells, and returns every run
/// for the metrics cross-check. `quick` restricts the scenario axis to
/// the assertion cells (the PR-gate mode).
#[allow(clippy::too_many_lines)]
fn run_adversarial(
    quick: bool,
    tele: &Obs,
    cfg: &SimConfig,
    lc: &LcSpec,
    bes: &[BeSpec],
    base: &Experiment,
    progress: &MatrixProgress,
) -> Vec<RunResult> {
    // The adversarial matrix runs in the §7 bandwidth-constrained regime
    // (25.6 GB/s FMem, 12 GB/s SMem) instead of the paper-scale one. At
    // paper-scale capacities contention is negligible, so the sustained
    // ~1.3 GB/s of futile hot-set chasing these scenarios provoke is
    // essentially free and the thrash guard has nothing real to save;
    // under the constrained model migration traffic competes with demand
    // traffic for the same channels, which is exactly the waste the
    // hardening exists to prevent. The knee reference (`lc_max_ref`)
    // depends only on capacity and burstiness, so reusing the base
    // experiment with a swapped bandwidth model changes nothing else.
    let cfg = cfg.clone().with_constrained_bandwidth();
    let base = {
        let mut b = base.clone();
        b.cfg = cfg.clone();
        b
    };
    let scs: Vec<ScenarioSpec> = adversarial_scenarios()
        .into_iter()
        .filter(|s| !quick || ADV_ASSERT_SCENARIOS.contains(&s.name))
        .collect();
    const ARMS: [&str; 2] = ["nominal", "faulted"];
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for si in 0..scs.len() {
        for (ai, _) in ARMS.iter().enumerate() {
            for pi in 0..ADV_POLICIES.len() {
                cells.push((si, ai, pi));
            }
        }
    }
    progress.add_cells(cells.len(), "adversarial");
    let runs = unwrap_cells(harness::run_matrix(
        &cells,
        harness::worker_count(cells.len()),
        |_, &(si, ai, pi)| {
            let label = format!("{}/{}/{}", ADV_POLICIES[pi], scs[si].name, ARMS[ai]);
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                let _cell = tele.span_labeled(0.0, "cell", &label);
                let mut exp = base.clone().with_scenario(scs[si].clone());
                if ARMS[ai] == "faulted" {
                    exp = exp.with_fault_plan(adversarial_fault_plan());
                }
                let mut p = make_policy(ADV_POLICIES[pi], &cfg, lc, bes);
                exp.with_obs(tele.clone()).run(p.as_mut())
            }))
            .map_err(panic_message);
            progress.cell_done(&label);
            (label, res)
        },
    ));
    let cell = |si: usize, ai: usize, pi: usize| {
        &runs[si * ARMS.len() * ADV_POLICIES.len() + ai * ADV_POLICIES.len() + pi]
    };

    println!("[");
    let mut failures: Vec<String> = Vec::new();
    for (si, spec) in scs.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{}\",", spec.name);
        println!("      \"arms\": [");
        for (ai, arm) in ARMS.iter().enumerate() {
            println!("        {{");
            println!("          \"arm\": \"{arm}\",");
            println!("          \"runs\": [");
            let mut stats = Vec::new();
            for (pi, name) in ADV_POLICIES.iter().enumerate() {
                let r = cell(si, ai, pi);
                let vr = r.violation_rate_after(20.0);
                let be = r.be_total_throughput();
                stats.push((vr, be));
                println!("            {{");
                println!("              \"policy\": \"{name}\",");
                println!("              \"violation_rate\": {},", json_f64(vr));
                println!("              \"be_total_throughput\": {},", json_f64(be));
                println!(
                    "              \"degraded_tick_fraction\": {}",
                    json_f64(r.degraded_tick_fraction(0.0))
                );
                let comma = if pi + 1 < ADV_POLICIES.len() { "," } else { "" };
                println!("            }}{comma}");
            }
            // The win predicate follows the paper's objective — maximize
            // BE throughput *subject to* the LC SLO. Hardening must not
            // buy its throughput by busting the SLO (the hardened arm,
            // index 0, stays within ADV_VR_TOL of its naive ablation,
            // index 1), and it must retain at least as much BE
            // throughput as every policy inside the same compliance
            // band. A rival whose violation rate exceeds the hardened
            // arm's by more than the tolerance forfeited the SLO
            // constraint and is excluded from the throughput comparison
            // (MEMTIS-style policies post high BE numbers at 40 %+
            // violation rates). Asserted only in the thrash/blowup
            // cells; reported everywhere.
            let (vr_h, be_h) = stats[0];
            let wins = vr_h <= stats[1].0 + ADV_VR_TOL
                && stats[1..]
                    .iter()
                    .all(|&(vr, be)| vr > vr_h + ADV_VR_TOL || be_h >= be);
            println!("          ],");
            println!("          \"hardened_wins\": {wins}");
            if ADV_ASSERT_SCENARIOS.contains(&spec.name) && !wins {
                failures.push(format!(
                    "{}/{arm}: hardened (vr {vr_h:.4}, be {be_h:.1}) vs {:?}",
                    spec.name,
                    ADV_POLICIES[1..]
                        .iter()
                        .zip(&stats[1..])
                        .collect::<Vec<_>>()
                ));
            }
            let comma = if ai + 1 < ARMS.len() { "," } else { "" };
            println!("        }}{comma}");
        }
        println!("      ]");
        let comma = if si + 1 < scs.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ]");

    eprintln!("# adversarial scenario\tarm\tpolicy\tviolation_rate\tbe_throughput");
    for (si, spec) in scs.iter().enumerate() {
        for (ai, arm) in ARMS.iter().enumerate() {
            for (pi, name) in ADV_POLICIES.iter().enumerate() {
                let r = cell(si, ai, pi);
                eprintln!(
                    "# {}\t{arm}\t{name}\t{:.4}\t{:.1}",
                    spec.name,
                    r.violation_rate_after(20.0),
                    r.be_total_throughput()
                );
            }
        }
    }
    assert!(
        failures.is_empty(),
        "hardened MTAT must beat naive MTAT and every rival on BE throughput at \
         equal SLO compliance in the thrash/blowup cells:\n{}",
        failures.join("\n")
    );
    runs
}

/// Final serving state: the aggregated registry lands on `/metrics`,
/// `/status` flips to done, and the listener shuts down. No-op when
/// `--serve` was not given.
fn finish_serving(
    tele: &Obs,
    hub: &TelemetryHub,
    server: Option<TelemetryServer>,
    progress: &MatrixProgress,
) {
    if server.is_none() {
        return;
    }
    if let Some(prom) = tele.snapshot_prometheus(&[("bench", "chaos_matrix")]) {
        hub.publish_metrics(prom);
    }
    progress.publish("done");
    hub.publish_health("done", true);
    drop(server);
}

/// Writes the span-trace document (spans + decision provenance) to
/// `path`. No-op unless the handle traces and a path was given.
fn emit_trace(tele: &Obs, path: Option<&str>) {
    let (Some(path), Some(json)) = (path, tele.trace_json()) else {
        return;
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("# wrote span trace to {path} (view: mtat-trace summary {path})");
}

fn main() {
    // `chaos_matrix --trace <scenario>` dumps the per-tick TSV time
    // series of both policies for one scenario instead of the matrix.
    // `--metrics-out PATH` additionally writes the aggregated metrics
    // registry as JSON (plus `PATH.prom` in Prometheus text format);
    // setting `MTAT_OBS=on` without a path prints both to stderr.
    // `--trace-out PATH` records phase spans + decision provenance for
    // every cell and writes the `mtat-trace` document there (also
    // enabled by `MTAT_TRACE=on`, which prints nothing without a path).
    // `--quick` runs only the adversarial assertion cells (thrash and
    // blowup scenarios, both arms, all policies) — the PR-gate mode.
    // `--serve ADDR` exposes the matrix live over HTTP: `/status`
    // tracks cell completion, `/events` tails one line per finished
    // cell, and `/metrics` carries the aggregated registry once the
    // matrix is done.
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let serve = args
        .iter()
        .position(|a| a == "--serve")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // One registry shared by every cell: counters and histograms
    // aggregate across the whole matrix. Telemetry never perturbs the
    // simulation, so the report below is byte-identical either way.
    // Serving needs the registry for /metrics, so --serve implies it.
    let tele = if trace_out.is_some() || trace_enabled() {
        Obs::traced()
    } else if obs_enabled() || metrics_out.is_some() || serve.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let hub = TelemetryHub::new();
    let server: Option<TelemetryServer> = serve.as_deref().map(|addr| {
        let s = TelemetryServer::bind(addr, hub.clone())
            .unwrap_or_else(|e| panic!("cannot serve on {addr}: {e}"));
        eprintln!("# serving telemetry on http://{}/", s.local_addr());
        s
    });
    let progress = MatrixProgress::new(server.as_ref().map(|_| hub.clone()));
    if server.is_some() {
        hub.publish_health("running", true);
    }

    let cfg = SimConfig::paper();
    let lc = LcSpec::redis();
    let bes = BeSpec::all_paper_workloads();
    // Moderate load through the first 100 s (the fault begins at 40 s,
    // during calm, so a blinded sizer has time to mis-provision), then a
    // surge at 100–160 s while the fault is still active, then back down
    // for the recovery phase.
    let load = LoadPattern::Steps(vec![(100.0, 0.45), (60.0, 0.9), (80.0, 0.45)]);
    let fault_end = FAULT_START + FAULT_SECS;

    let base = Experiment::new(cfg.clone(), lc.clone(), load, bes.clone()).with_duration(DURATION);

    if quick {
        println!("{{");
        println!("  \"lc\": \"{}\",", lc.name);
        print!("  \"adversarial\": ");
        let runs = run_adversarial(true, &tele, &cfg, &lc, &bes, &base, &progress);
        println!(
            "  ,\"workers\": {}, \"cells\": {}",
            harness::worker_count(runs.len()),
            runs.len()
        );
        println!("}}");
        emit_metrics(&tele, &runs, metrics_out.as_deref());
        emit_trace(&tele, trace_out.as_deref());
        finish_serving(&tele, &hub, server, &progress);
        return;
    }

    if let Some(scenario) = trace {
        let plan = scenarios()
            .into_iter()
            .find(|(n, _)| *n == scenario)
            .unwrap_or_else(|| panic!("unknown scenario {scenario}"))
            .1;
        let exp = base.with_fault_plan(plan);
        progress.add_cells(POLICIES.len(), "trace");
        let runs = unwrap_cells(harness::run_matrix(
            &POLICIES,
            harness::worker_count(POLICIES.len()),
            |_, name| {
                let label = format!("{name}/{scenario}");
                let res = panic::catch_unwind(AssertUnwindSafe(|| {
                    let _cell = tele.span_labeled(0.0, "cell", &label);
                    let mut p = make_policy(name, &cfg, &lc, &bes);
                    arm_experiment(&exp, Some(&scenario), name)
                        .with_obs(tele.clone())
                        .run(p.as_mut())
                }))
                .map_err(panic_message);
                progress.cell_done(&label);
                (label, res)
            },
        ));
        for (name, r) in POLICIES.iter().zip(&runs) {
            println!("## {name}");
            print!("{}", r.to_tsv_string());
        }
        emit_metrics(&tele, &runs, metrics_out.as_deref());
        emit_trace(&tele, trace_out.as_deref());
        finish_serving(&tele, &hub, server, &progress);
        return;
    }

    // The full policy × (fault-free + scenario) matrix runs in parallel:
    // every cell is seeded identically to the serial version, so the
    // JSON below is byte-for-byte what a serial sweep prints.
    let scs = scenarios();
    let mut cells: Vec<(Option<usize>, &str)> = Vec::new();
    for name in &POLICIES {
        cells.push((None, name)); // fault-free reference (BE denominator)
    }
    for si in 0..scs.len() {
        for name in &POLICIES {
            cells.push((Some(si), name));
        }
    }
    progress.add_cells(cells.len(), "faults");
    let runs = unwrap_cells(harness::run_matrix(
        &cells,
        harness::worker_count(cells.len()),
        |_, cell| {
            let (scenario, name) = *cell;
            let label = format!("{name}/{}", scenario.map_or("clean", |si| scs[si].0));
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                let _cell = tele.span_labeled(0.0, "cell", &label);
                let exp = match scenario {
                    None => base.clone(),
                    Some(si) => {
                        let faulted = base.clone().with_fault_plan(scs[si].1.clone());
                        arm_experiment(&faulted, Some(scs[si].0), name)
                    }
                };
                let mut p = make_policy(name, &cfg, &lc, &bes);
                exp.with_obs(tele.clone()).run(p.as_mut())
            }))
            .map_err(panic_message);
            progress.cell_done(&label);
            (label, res)
        },
    ));
    let clean: Vec<(String, RunResult)> = POLICIES
        .iter()
        .zip(&runs)
        .map(|(n, r)| (n.to_string(), r.clone()))
        .collect();

    println!("{{");
    println!("  \"lc\": \"{}\",", lc.name);
    println!(
        "  \"fault_window_secs\": [{FAULT_START:.0}, {fault_end:.0}], \"duration_secs\": {DURATION:.0},"
    );
    println!("  \"policies\": [\"{}\"],", POLICIES.join("\", \""));
    println!("  \"scenarios\": [");

    let mut verdicts = Vec::new();
    for (si, (scenario, _plan)) in scs.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{scenario}\",");
        println!("      \"runs\": [");
        let mut rates = Vec::new();
        let mut retaineds = Vec::new();
        for (pi, name) in POLICIES.iter().enumerate() {
            let r = &runs[POLICIES.len() + si * POLICIES.len() + pi];
            let clean_be = clean
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.be_total_throughput())
                .unwrap_or(f64::NAN);
            let retained = if clean_be > 0.0 {
                r.be_total_throughput() / clean_be
            } else {
                f64::NAN
            };
            let overall = r.violation_rate_after(20.0);
            rates.push(overall);
            retaineds.push(retained);
            println!("        {{");
            println!("          \"policy\": \"{name}\",");
            println!("          \"violation_rate\": {},", json_f64(overall));
            println!(
                "          \"violation_rate_in_fault\": {},",
                json_f64(violation_rate_between(r, FAULT_START, fault_end))
            );
            println!(
                "          \"violation_rate_post_fault\": {},",
                json_f64(violation_rate_between(r, fault_end, DURATION))
            );
            println!(
                "          \"be_throughput_retained\": {},",
                json_f64(retained)
            );
            println!("          \"failed_moves\": {},", r.failed_moves);
            println!("          \"retried_moves\": {},", r.retried_moves);
            println!(
                "          \"degraded_tick_fraction\": {},",
                json_f64(r.degraded_tick_fraction(0.0))
            );
            println!(
                "          \"repromote_secs_after_clearance\": {},",
                json_opt_f64(repromote_secs(r, fault_end))
            );
            println!(
                "          \"slo_recover_secs_after_clearance\": {}",
                json_opt_f64(slo_recover_secs(r, fault_end, 10))
            );
            let comma = if pi + 1 < POLICIES.len() { "," } else { "" };
            println!("        }}{comma}");
        }
        println!("      ],");
        // Fault scenarios are judged on SLO compliance alone. Crash
        // scenarios are judged on the paper's full objective — BE
        // throughput subject to the LC SLO — because a cold-restarted
        // untrained sizer is "safe" in the same way FMEM_ALL is safe:
        // it over-provisions the LC and starves the BE tier. The
        // checkpointed daemon must not regress SLO compliance AND must
        // retain strictly more BE throughput than the cold restart.
        let improved = if scenario.starts_with("ppm_crash") {
            rates[1] <= rates[0] + 1e-9 && retaineds[1] > retaineds[0]
        } else {
            rates[1] < rates[0]
        };
        verdicts.push((*scenario, rates[0], rates[1], improved));
        println!("      \"supervised_improves\": {improved}");
        let comma = if si + 1 < scs.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ],");

    // ---- Self-healing ablation: recovery-mode arms under poison ----
    // Same policy, same fault, three answers: autonomous rollback
    // (self_heal), kill the daemon on first incident (crash_stop), and
    // detect-but-never-restore (no_rollback). The paper's objective —
    // BE throughput subject to the LC SLO — is asserted below: the
    // self-healing arm must strictly beat both ablations on BE
    // throughput at equal-or-better SLO compliance.
    let heal_scs = heal_scenarios();
    let arms = heal_arms();
    let mut heal_cells: Vec<(usize, usize)> = Vec::new();
    for si in 0..heal_scs.len() {
        for ai in 0..arms.len() {
            heal_cells.push((si, ai));
        }
    }
    progress.add_cells(heal_cells.len(), "self_healing");
    let heal_runs = unwrap_cells(harness::run_matrix(
        &heal_cells,
        harness::worker_count(heal_cells.len()),
        |_, &(si, ai)| {
            let label = format!("{HEAL_POLICY}/{}/{}", heal_scs[si].0, arms[ai].0);
            let res = panic::catch_unwind(AssertUnwindSafe(|| {
                let _cell = tele.span_labeled(0.0, "cell", &label);
                let exp = base
                    .clone()
                    .with_fault_plan(heal_scs[si].1.clone())
                    .with_checkpoints(CheckpointCfg::in_memory())
                    .with_health(arms[ai].1.clone());
                let mut p = make_policy(HEAL_POLICY, &cfg, &lc, &bes);
                exp.with_obs(tele.clone()).run(p.as_mut())
            }))
            .map_err(panic_message);
            progress.cell_done(&label);
            (label, res)
        },
    ));

    println!("  \"self_healing\": [");
    let mut heal_verdicts = Vec::new();
    for (si, (scenario, _)) in heal_scs.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{scenario}\",");
        println!("      \"policy\": \"{HEAL_POLICY}\",");
        println!("      \"arms\": [");
        let mut stats = Vec::new();
        for (ai, (arm, _)) in arms.iter().enumerate() {
            let r = &heal_runs[si * arms.len() + ai];
            let h = r.health.as_ref().expect("health arms carry a summary");
            let vr = r.violation_rate_after(20.0);
            let be = r.be_total_throughput();
            stats.push((vr, be));
            println!("        {{");
            println!("          \"arm\": \"{arm}\",");
            println!("          \"violation_rate\": {},", json_f64(vr));
            println!("          \"be_total_throughput\": {},", json_f64(be));
            println!("          \"rollbacks\": {},", h.rollbacks);
            println!("          \"repairs\": {},", h.repairs);
            println!("          \"unrecovered\": {},", h.unrecovered);
            println!("          \"quarantined\": {}", h.quarantined);
            let comma = if ai + 1 < arms.len() { "," } else { "" };
            println!("        }}{comma}");
        }
        println!("      ],");
        let (vr_sh, be_sh) = stats[0];
        let wins = stats[1..]
            .iter()
            .all(|&(vr, be)| be_sh > be && vr_sh <= vr + 1e-9);
        println!("      \"self_heal_wins\": {wins}");
        heal_verdicts.push((*scenario, stats, wins));
        let comma = if si + 1 < heal_scs.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ],");

    // ---- Adversarial workload dynamics: hardened vs naive vs rivals ----
    print!("  \"adversarial\": ");
    let adv_runs = run_adversarial(false, &tele, &cfg, &lc, &bes, &base, &progress);

    let all_runs: Vec<RunResult> = runs
        .iter()
        .chain(&heal_runs)
        .chain(&adv_runs)
        .cloned()
        .collect();
    println!(
        "  ,\"workers\": {}, \"cells\": {}",
        harness::worker_count(all_runs.len()),
        all_runs.len()
    );
    println!("}}");
    emit_metrics(&tele, &all_runs, metrics_out.as_deref());
    emit_trace(&tele, trace_out.as_deref());
    finish_serving(&tele, &hub, server, &progress);

    eprintln!("# heal scenario\tarm\tviolation_rate\tbe_throughput");
    for (s, stats, wins) in &heal_verdicts {
        for ((arm, _), (vr, be)) in arms.iter().zip(stats) {
            eprintln!("# {s}\t{arm}\t{vr:.4}\t{be:.1}");
        }
        let sh = &heal_runs[heal_scs.iter().position(|(n, _)| n == s).expect("known") * arms.len()];
        let h = sh.health.as_ref().expect("summary");
        assert_eq!(
            h.unrecovered, 0,
            "{s}: self-heal must recover every incident: {h:?}"
        );
        assert!(!h.quarantined, "{s}: rollback budget must hold: {h:?}");
        assert!(h.final_audit_ok, "{s}: substrate consistent at end");
        assert!(
            wins,
            "{s}: self-heal must strictly beat crash-stop and no-rollback on BE \
             throughput at equal-or-better SLO compliance: {stats:?}"
        );
    }

    eprintln!("# scenario\tunsupervised\tsupervised\timproved");
    for (s, u, v, ok) in verdicts {
        eprintln!("# {s}\t{u:.4}\t{v:.4}\t{ok}");
        // A supervised+checkpointed restart must beat the cold restart of
        // the unsupervised arm — the whole point of checkpoint/restore.
        if s.starts_with("ppm_crash") {
            assert!(
                ok,
                "{s}: supervised+checkpointed ({v:.4}) must beat unsupervised cold restart ({u:.4})"
            );
        }
    }
}
