//! Extension experiment — diurnal load.
//!
//! Production LC services follow day/night cycles. This extension
//! drives Redis with two compressed diurnal periods (trough 15 %, peak
//! 95 % of max load) and measures how much FMem each policy returns to
//! the BE workloads during the troughs — the consolidation benefit MTAT
//! exists to unlock — alongside SLO compliance at the peaks.
//!
//! Output: TSV per-policy summary
//! `policy  violation_pct  trough_lc_fmem_pct  peak_lc_fmem_pct  be_mops`.

use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::trace::LoadTrace;

const PERIOD: f64 = 200.0;

fn main() {
    let cfg = SimConfig::paper();
    let trace = LoadTrace::diurnal(0.15, 0.95, PERIOD, 40, 2);
    let pattern = trace.to_pattern(5.0);
    let exp = Experiment::new(
        cfg.clone(),
        LcSpec::redis(),
        pattern,
        BeSpec::all_paper_workloads(),
    );

    header(&[
        "policy",
        "violation_pct",
        "trough_lc_fmem_pct",
        "peak_lc_fmem_pct",
        "be_mops",
    ]);
    for policy_name in ["mtat_full", "mtat_lc_only", "memtis", "hotset", "fmem_all"] {
        let mut policy = make_policy(policy_name, &cfg, &exp.lc, &exp.bes);
        let r = exp.run(policy.as_mut());
        // Troughs: the first and last eighth of each period; peaks: the
        // middle quarter.
        let mut trough = (0.0, 0usize);
        let mut peak = (0.0, 0usize);
        for tick in &r.ticks {
            let phase = (tick.t % PERIOD) / PERIOD;
            if !(0.125..=0.875).contains(&phase) {
                trough.0 += tick.lc_fmem_ratio;
                trough.1 += 1;
            } else if (0.375..=0.625).contains(&phase) {
                peak.0 += tick.lc_fmem_ratio;
                peak.1 += 1;
            }
        }
        println!(
            "{}\t{:.2}\t{:.0}\t{:.0}\t{:.1}",
            policy_name,
            r.violation_rate() * 100.0,
            100.0 * trough.0 / trough.1.max(1) as f64,
            100.0 * peak.0 / peak.1.max(1) as f64,
            r.be_total_throughput() / 1e6
        );
    }
    println!("#");
    println!("# MTAT should show a large trough-to-peak FMem swing (memory");
    println!("# handed back at night) with near-zero violations; FMEM_ALL");
    println!("# holds everything forever; MEMTIS/hotset never give the LC");
    println!("# workload enough at the peaks.");
}
