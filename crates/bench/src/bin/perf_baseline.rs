//! Simulator hot-path performance baseline.
//!
//! Times the paper-scale co-location run (Redis + the four BE
//! workloads, ~10⁵ 2-MiB pages), legacy accounting vs. the incremental
//! path, for two canonical policies:
//!
//! * **reference** — FMEM_ALL, the static placement every paper figure
//!   normalizes against. The incremental path turns its tick into pure
//!   O(1) work: hit ratios are resident-popularity counter reads, and
//!   the PEBS pass is skipped outright because the policy declares no
//!   sampled-count consumer (`Policy::wants_page_samples`). This is the
//!   headline `speedup` figure.
//! * **adaptive** — MEMTIS, which consumes full per-page telemetry every
//!   tick; its speedup isolates the batched sampler + incremental
//!   hit-ratio gains when sampling cannot be skipped.
//!
//! **legacy** means the pre-optimization per-tick accounting: a full
//! FMem rescan per BE hit-ratio and one Poisson draw per page
//! (`Experiment::with_legacy_accounting`). A third section times a
//! 4-policy matrix on the `bench::harness` worker pool, serial vs.
//! `MTAT_BENCH_THREADS`/all-core, to measure harness scaling on this
//! machine (with a bit-identical per-cell cross-check).
//!
//! The measurements are written as `BENCH_perf.json` (schema below) so
//! CI can smoke-test against the committed baseline:
//!
//! ```text
//! perf_baseline                # full paper-scale measurement, writes BENCH_perf.json
//! perf_baseline --quick        # shorter run (CI), same ticks/sec scale
//! perf_baseline --quick --check  # additionally fail (exit 1) on a >10 %
//!                                # adaptive ticks/sec regression vs the
//!                                # committed file, a >30 % speedup-ratio
//!                                # drop, or an adaptive path slower than
//!                                # 2x the frozen PR-2 legacy anchor
//! perf_baseline --out PATH     # write elsewhere (--check reads PATH too)
//! ```
//!
//! ticks/sec is duration-invariant (per-tick cost does not depend on
//! run length), so `--quick` results are comparable with a full-run
//! baseline. The check uses the *legacy→incremental speedup ratio* as a
//! secondary, machine-independent guard: absolute ticks/sec varies with
//! hardware, the ratio only with the code.

use std::time::Instant;

use mtat_bench::{harness, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_obs::registry::Registry;
use mtat_obs::{obs_enabled, Obs};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

/// Fraction of the baseline's incremental ticks/sec below which
/// `--check` fails the build (speedup-ratio guard; hardware-independent
/// so it keeps a wide tolerance).
const REGRESSION_FLOOR: f64 = 0.70;

/// Fraction of the committed adaptive incremental ticks/sec below which
/// `--check` fails: the adaptive hot path may not regress more than
/// 10 % against the committed same-machine baseline.
const ADAPTIVE_TPS_FLOOR: f64 = 0.90;

/// The adaptive (memtis) *legacy* ticks/sec committed in BENCH_perf.json
/// at PR-2, before the SoA arena + batched-migration work. Frozen here
/// so every later run reports its cumulative speedup against the same
/// anchor; `--check` asserts the multiple stays above
/// [`SPEEDUP_VS_PR2_FLOOR`]. Same-machine guard, like the absolute
/// ticks/sec check.
const PR2_ADAPTIVE_LEGACY_TPS: f64 = 164.5;

/// Minimum accepted `adaptive.incremental / PR-2 legacy` multiple.
/// The SoA + batching work lands ~2.7x on the reference box; the gate
/// sits below that with headroom for quick-mode noise.
const SPEEDUP_VS_PR2_FLOOR: f64 = 2.0;

struct Timed {
    wall_secs: f64,
    ticks: usize,
}

impl Timed {
    fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 / self.wall_secs.max(1e-9)
    }

    /// Lands this measurement in the metrics registry under
    /// `perf.<section>.<arm>_*`. The registry is the single store the
    /// report and the `--check` guard both read from.
    fn record(&self, reg: &mut Registry, section: &str, arm: &str) {
        reg.gauge_set(&format!("perf.{section}.{arm}_wall_secs"), self.wall_secs);
        reg.counter_add(&format!("perf.{section}.{arm}_ticks"), self.ticks as u64);
        reg.gauge_set(
            &format!("perf.{section}.{arm}_ticks_per_sec"),
            self.ticks_per_sec(),
        );
    }
}

fn paper_exp(duration: f64) -> Experiment {
    Experiment::new(
        SimConfig::paper(),
        LcSpec::redis(),
        LoadPattern::Constant(0.5),
        BeSpec::all_paper_workloads(),
    )
    .with_duration(duration)
}

/// Runs `exp` under a fresh policy (no pretraining, so the timing
/// isolates the runner's per-tick accounting) and times it.
///
/// The wall time is read from the span profiler — the runner's root
/// `run` span — rather than an ad-hoc `Instant` pair around the call:
/// one timing source for benches and traces, and the measurement stays
/// honest because tracing provably never perturbs the physics (the
/// bit-identity regression tests pin that down).
fn time_run(exp: &Experiment, policy_name: &str) -> Timed {
    let cfg = &exp.cfg;
    let mut policy = make_policy(policy_name, cfg, &exp.lc, &exp.bes);
    let tele = Obs::traced();
    let r = exp.clone().with_obs(tele.clone()).run(policy.as_mut());
    let run_ns: u64 = tele
        .with_tracer(|t| {
            t.spans()
                .iter()
                .filter(|s| s.name == "run")
                .map(|s| s.dur_ns)
                .sum()
        })
        .expect("traced handle has a tracer");
    assert!(run_ns > 0, "runner must emit a root run span");
    Timed {
        wall_secs: run_ns as f64 / 1e9,
        ticks: r.ticks.len(),
    }
}

/// Times one policy legacy vs. incremental and returns
/// (legacy, incremental, speedup).
fn time_pair(exp: &Experiment, policy_name: &str) -> (Timed, Timed, f64) {
    eprintln!("# timing {policy_name}: legacy accounting...");
    let legacy = time_run(&exp.clone().with_legacy_accounting(), policy_name);
    eprintln!(
        "#   {:.2} s wall, {:.0} ticks/s",
        legacy.wall_secs,
        legacy.ticks_per_sec()
    );
    eprintln!("# timing {policy_name}: incremental accounting...");
    let incr = time_run(exp, policy_name);
    eprintln!(
        "#   {:.2} s wall, {:.0} ticks/s",
        incr.wall_secs,
        incr.ticks_per_sec()
    );
    let speedup = incr.ticks_per_sec() / legacy.ticks_per_sec().max(1e-9);
    (legacy, incr, speedup)
}

/// Times the 4-cell cheap-policy matrix at the given worker count and
/// returns (wall seconds, per-cell SLO-violation counts for the
/// bit-identical cross-check).
fn time_matrix(exp: &Experiment, workers: usize) -> (f64, Vec<u64>) {
    let cells: [&str; 4] = ["memtis", "tpp", "fmem_all", "smem_all"];
    let cfg = &exp.cfg;
    let start = Instant::now();
    let counts = harness::run_matrix(&cells, workers, |_, name| {
        let mut p = make_policy(name, cfg, &exp.lc, &exp.bes);
        let r = exp.run(p.as_mut());
        r.ticks.iter().map(|t| u64::from(t.lc_violated)).sum()
    });
    (start.elapsed().as_secs_f64(), counts)
}

/// Extracts the number following the last key of `path`, where each
/// path element is located in sequence (a poor man's nested-object
/// lookup over our own fixed output shape). Hand-rolled because
/// serde_json is not vendored.
fn json_number(doc: &str, path: &[&str]) -> Option<f64> {
    let mut scoped = doc;
    for key in path {
        let k = scoped.find(&format!("\"{key}\""))?;
        scoped = &scoped[k + key.len() + 2..];
    }
    let colon = scoped.find(':')?;
    let rest = scoped[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());

    let duration = if quick { 30.0 } else { 120.0 };
    let exp = paper_exp(duration);

    eprintln!("# paper-scale co-location run, {duration:.0} s sim");
    let (ref_legacy, ref_incr, ref_speedup) = time_pair(&exp, "fmem_all");
    let (ad_legacy, ad_incr, ad_speedup) = time_pair(&exp, "memtis");

    let matrix_exp = paper_exp(if quick { 15.0 } else { 60.0 });
    // The parallel cell must actually exercise the pool: at least 4
    // workers even on small machines (oversubscription is harmless for
    // a scaling probe, and the bit-identical cross-check below still
    // holds), and the *actual* count is what lands in the report.
    let pool = harness::worker_count(4).max(4);
    eprintln!("# timing 4-cell matrix serial vs {pool} worker(s)...");
    let (serial_secs, serial_counts) = time_matrix(&matrix_exp, 1);
    let (parallel_secs, parallel_counts) = time_matrix(&matrix_exp, pool);
    assert_eq!(
        serial_counts, parallel_counts,
        "parallel harness changed per-cell results"
    );
    let scaling = serial_secs / parallel_secs.max(1e-9);

    // Every measurement lands in one registry; the JSON report, the
    // optional Prometheus export, and the --check guard all read from
    // it rather than from scattered locals.
    let mut reg = Registry::new();
    for (name, legacy, incr, speedup) in [
        ("reference", &ref_legacy, &ref_incr, ref_speedup),
        ("adaptive", &ad_legacy, &ad_incr, ad_speedup),
    ] {
        legacy.record(&mut reg, name, "legacy");
        incr.record(&mut reg, name, "incremental");
        reg.gauge_set(&format!("perf.{name}.speedup"), speedup);
    }
    let speedup_vs_pr2 = ad_incr.ticks_per_sec() / PR2_ADAPTIVE_LEGACY_TPS;
    reg.gauge_set("perf.adaptive.speedup_vs_pr2", speedup_vs_pr2);
    reg.gauge_set("perf.matrix.workers", pool as f64);
    reg.gauge_set("perf.matrix.serial_secs", serial_secs);
    reg.gauge_set("perf.matrix.parallel_secs", parallel_secs);
    reg.gauge_set("perf.matrix.scaling", scaling);

    let mode = if quick { "quick" } else { "full" };
    let g = |reg: &Registry, key: &str| reg.gauge(key).unwrap_or(f64::NAN);
    let c = |reg: &Registry, key: &str| reg.counter(key);
    let section = |reg: &Registry, name: &str, policy: &str| {
        format!(
            "  \"{name}\": {{\n    \"policy\": \"{policy}\",\n    \
             \"legacy\": {{ \"wall_secs\": {:.3}, \"ticks\": {}, \"ticks_per_sec\": {:.1} }},\n    \
             \"incremental\": {{ \"wall_secs\": {:.3}, \"ticks\": {}, \"ticks_per_sec\": {:.1} }},\n    \
             \"speedup\": {:.2}\n  }}",
            g(reg, &format!("perf.{name}.legacy_wall_secs")),
            c(reg, &format!("perf.{name}.legacy_ticks")),
            g(reg, &format!("perf.{name}.legacy_ticks_per_sec")),
            g(reg, &format!("perf.{name}.incremental_wall_secs")),
            c(reg, &format!("perf.{name}.incremental_ticks")),
            g(reg, &format!("perf.{name}.incremental_ticks_per_sec")),
            g(reg, &format!("perf.{name}.speedup")),
        )
    };
    let json = format!(
        "{{\n  \"schema\": 3,\n  \"mode\": \"{mode}\",\n  \"sim_secs\": {duration:.0},\n\
         {},\n{},\n  \"speedup\": {ref_speedup:.2},\n  \
         \"speedup_vs_pr2\": {speedup_vs_pr2:.2},\n  \
         \"parallel\": {{ \"cells\": 4, \"workers\": {pool}, \"serial_secs\": {serial_secs:.3}, \
         \"parallel_secs\": {parallel_secs:.3}, \"scaling\": {scaling:.2} }}\n}}\n",
        section(&reg, "reference", "fmem_all"),
        section(&reg, "adaptive", "memtis"),
    );
    print!("{json}");

    if obs_enabled() {
        // MTAT_OBS=on: also expose the measurements in Prometheus text
        // format on stderr (scrape-friendly without a second run).
        eprint!("{}", reg.to_prometheus(&[("bench", "perf_baseline")]));
    }

    if check {
        let baseline = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("--check: cannot read baseline {out_path}: {e}"));
        let base_tps = json_number(&baseline, &["adaptive", "incremental", "ticks_per_sec"])
            .expect("--check: baseline lacks adaptive.incremental.ticks_per_sec");
        let base_speedup = json_number(&baseline, &["adaptive", "speedup"]).unwrap_or(1.0);
        // The guard watches the *adaptive* section: it exercises the
        // whole hot path (batched sampler, tracker, hotness competition)
        // every tick, whereas the reference run is O(1)/tick and its
        // quick-mode timing is noise-dominated.
        let tps = g(&reg, "perf.adaptive.incremental_ticks_per_sec");
        let speedup = g(&reg, "perf.adaptive.speedup");
        eprintln!(
            "# check: {tps:.0} ticks/s vs baseline {base_tps:.0} (floor {:.0}, {:.0}% of baseline)",
            base_tps * ADAPTIVE_TPS_FLOOR,
            ADAPTIVE_TPS_FLOOR * 100.0
        );
        eprintln!("# check: speedup {speedup:.2}x vs baseline {base_speedup:.2}x");
        eprintln!(
            "# check: {speedup_vs_pr2:.2}x vs PR-2 adaptive legacy \
             ({PR2_ADAPTIVE_LEGACY_TPS:.1} ticks/s, floor {SPEEDUP_VS_PR2_FLOOR:.1}x)"
        );
        // The absolute ticks/sec guard catches same-machine regressions
        // within 10 %; the ratio guard catches "the optimization got
        // reverted" even on different hardware; the PR-2 anchor guard
        // keeps the cumulative SoA + batching speedup from eroding one
        // tolerated regression at a time.
        let tps_ok = tps >= base_tps * ADAPTIVE_TPS_FLOOR;
        let ratio_ok = speedup >= base_speedup * REGRESSION_FLOOR;
        let anchor_ok = speedup_vs_pr2 >= SPEEDUP_VS_PR2_FLOOR;
        if !(tps_ok && ratio_ok && anchor_ok) {
            eprintln!(
                "# PERF REGRESSION: ticks/sec ok={tps_ok} speedup ok={ratio_ok} \
                 vs-pr2 ok={anchor_ok}"
            );
            std::process::exit(1);
        }
        eprintln!("# perf smoke passed");
    } else {
        std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!("# wrote {out_path}");
    }
}
