//! Figure 9 + Table 4 — BE fairness, throughput, FMem distribution, and
//! SLO violation rates at 20/50/80 % of max load.
//!
//! Redis serves as the LC workload under uniform (constant) load while
//! the four BE workloads run concurrently. At each load level the
//! harness reports, per policy: BE fairness (min NP), summed BE
//! throughput, the average FMem distribution across all five workloads
//! (the stacked colors of Fig. 9's bars), and the LC SLO violation rate
//! (Table 4).
//!
//! The 3 × 4 (load × policy) matrix runs on the parallel harness: every
//! cell is an independent deterministic simulation, results are
//! collected in cell order, and rows print exactly as the serial
//! version did.
//!
//! Output: TSV rows
//! `load_pct  policy  fairness  be_mops  violation_pct  fmem_lc  fmem_sssp  fmem_bfs  fmem_pr  fmem_xs`.

use mtat_bench::{harness, header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const POLICIES: [&str; 4] = ["mtat_full", "mtat_lc_only", "memtis", "tpp"];
/// Steady-state window start: excludes policy convergence, matching the
/// measurement methodology of `find_max_load`.
const GRACE_SECS: f64 = 30.0;
const RUN_SECS: f64 = 120.0;

fn main() {
    let cfg = SimConfig::paper();
    header(&[
        "load_pct",
        "policy",
        "fairness",
        "be_mops",
        "violation_pct",
        "fmem_lc_gb",
        "fmem_sssp_gb",
        "fmem_bfs_gb",
        "fmem_pr_gb",
        "fmem_xs_gb",
    ]);

    let cells: Vec<(u32, &str)> = [20u32, 50, 80]
        .iter()
        .flat_map(|&load| POLICIES.iter().map(move |&p| (load, p)))
        .collect();

    let rows = harness::run_matrix(&cells, harness::worker_count(cells.len()), |_, cell| {
        let (load_pct, policy_name) = *cell;
        let exp = Experiment::new(
            cfg.clone(),
            LcSpec::redis(),
            LoadPattern::Constant(load_pct as f64 / 100.0),
            BeSpec::all_paper_workloads(),
        )
        .with_duration(RUN_SECS);
        let mut policy = make_policy(policy_name, &cfg, &exp.lc, &exp.bes);
        let r = exp.run(policy.as_mut());
        // Average FMem distribution over the steady-state window.
        let steady: Vec<_> = r.ticks.iter().filter(|t| t.t >= GRACE_SECS).collect();
        let n = steady.len().max(1) as f64;
        let mut fmem_gb = [0.0; 5];
        for tick in &steady {
            for (i, &b) in tick.fmem_bytes.iter().enumerate() {
                fmem_gb[i] += b as f64 / GIB as f64 / n;
            }
        }
        format!(
            "{}\t{}\t{:.3}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            load_pct,
            policy_name,
            r.fairness(),
            r.be_total_throughput() / 1e6,
            r.violation_rate_after(GRACE_SECS) * 100.0,
            fmem_gb[0],
            fmem_gb[1],
            fmem_gb[2],
            fmem_gb[3],
            fmem_gb[4]
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("#");
    println!("# Table 4 is the violation_pct column (paper: MTAT 0/0/0,");
    println!("# MEMTIS 0/11.6/99, TPP 0/30.7/100 at 20/50/80 % load).");
}
