//! §5.5 — MTAT overhead.
//!
//! Runs the Fig.-5 Redis experiment under MTAT (Full) and reports the
//! two overhead channels the paper measures:
//!
//! * **PP-M CPU overhead** — wall-clock time spent inside the policy's
//!   decision/learning path, as a fraction of one core over the
//!   simulated duration (paper: < 7 % of a single core);
//! * **PP-E bandwidth overhead** — migration bandwidth consumed during
//!   partition replacement (paper: ~4 GB/s average against a 25.6 GB/s
//!   channel).
//!
//! All timing comes from the span profiler (a traced [`Obs`] handle)
//! rather than ad-hoc `Instant` pairs: the same spans that `--trace-out`
//! records are the measurement, so the per-phase breakdown below is the
//! `mtat-trace summary` of this run. Tracing never perturbs the
//! simulation (bit-identity is regression-tested), so the physics rows
//! are identical to an untraced run.
//!
//! Output: a short TSV report.

use mtat_bench::trace::phase_totals;
use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_obs::Obs;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    let cfg = SimConfig::paper();
    let exp = Experiment::new(
        cfg.clone(),
        LcSpec::redis(),
        LoadPattern::fig7(),
        BeSpec::all_paper_workloads(),
    );

    let tele = Obs::traced();

    // Pretraining happens at construction; measure it separately since
    // the paper's daemon amortizes it over its whole uptime.
    let pretrain_span = tele.span(0.0, "pretrain");
    let mut policy = make_policy("mtat_full", &cfg, &exp.lc, &exp.bes);
    drop(pretrain_span);

    let r = exp.with_obs(tele.clone()).run(policy.as_mut());

    let spans = tele
        .with_tracer(|t| t.spans().to_vec())
        .expect("traced handle has a tracer");
    let totals = phase_totals(&spans);
    // Wall seconds spent in a phase, children included (so sac-forward
    // is also part of ppm-plan, exactly as the call tree nests).
    let phase_secs = |name: &str| {
        totals
            .iter()
            .find(|t| t.name == name)
            .map_or(0.0, |t| t.total_ns as f64 / 1e9)
    };
    let pretrain_secs = phase_secs("pretrain");
    let run_wall = phase_secs("run");
    assert!(run_wall > 0.0, "runner must emit a root run span");
    // Fraction of one core over the simulated duration.
    let cpu_pct = |name: &str| phase_secs(name) / r.duration_secs * 100.0;

    let peak_bw = r
        .ticks
        .iter()
        .map(|t| t.migration_bw)
        .fold(0.0f64, f64::max);

    header(&["metric", "value", "paper"]);
    println!(
        "ppm_pretrain_wall_s\t{:.1}\t(offline; amortized over daemon uptime)",
        pretrain_secs
    );
    println!(
        "ppm_ppe_cpu_equivalent_pct\t{:.2}\t<7% of one core",
        // Wall time of the entire policy+simulation loop per simulated
        // second, as a fraction of one core. The simulator itself is
        // included, so this is an upper bound on the daemon's share.
        run_wall / r.duration_secs * 100.0
    );
    // Per-phase breakdown of that upper bound, straight from the span
    // profiler (phase wall time, children included, as % of one core).
    for (row, phase) in [
        ("ppm_plan_cpu_pct", "ppm-plan"),
        ("sac_forward_cpu_pct", "sac-forward"),
        ("anneal_cpu_pct", "anneal"),
        ("ppe_enforce_cpu_pct", "ppe-enforce"),
        ("track_cpu_pct", "track"),
        ("sample_cpu_pct", "sample"),
        ("migrate_cpu_pct", "migrate"),
    ] {
        println!("{row}\t{:.3}\t(span profiler)", cpu_pct(phase));
    }
    println!(
        "ppe_avg_migration_gbps\t{:.2}\t~4 GB/s during replacement",
        r.avg_migration_bw() / GIB as f64
    );
    println!(
        "ppe_peak_migration_gbps\t{:.2}\tbounded by M = 4 GB/s",
        peak_bw / GIB as f64
    );
    println!(
        "ppe_total_migrated_gb\t{:.1}\t-",
        r.total_migration_bytes as f64 / GIB as f64
    );
    println!("lc_violation_rate\t{:.4}\t0 for MTAT", r.violation_rate());
}
