//! §5.5 — MTAT overhead.
//!
//! Runs the Fig.-5 Redis experiment under MTAT (Full) and reports the
//! two overhead channels the paper measures:
//!
//! * **PP-M CPU overhead** — wall-clock time spent inside the policy's
//!   decision/learning path, as a fraction of one core over the
//!   simulated duration (paper: < 7 % of a single core);
//! * **PP-E bandwidth overhead** — migration bandwidth consumed during
//!   partition replacement (paper: ~4 GB/s average against a 25.6 GB/s
//!   channel).
//!
//! Output: a short TSV report.

use std::time::Instant;

use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    let cfg = SimConfig::paper();
    let exp = Experiment::new(
        cfg.clone(),
        LcSpec::redis(),
        LoadPattern::fig7(),
        BeSpec::all_paper_workloads(),
    );

    // Pretraining happens at construction; measure it separately since
    // the paper's daemon amortizes it over its whole uptime.
    let t0 = Instant::now();
    let mut policy = make_policy("mtat_full", &cfg, &exp.lc, &exp.bes);
    let pretrain_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let r = exp.run(policy.as_mut());
    let run_wall = t1.elapsed().as_secs_f64();

    let peak_bw = r
        .ticks
        .iter()
        .map(|t| t.migration_bw)
        .fold(0.0f64, f64::max);

    header(&["metric", "value", "paper"]);
    println!(
        "ppm_pretrain_wall_s\t{:.1}\t(offline; amortized over daemon uptime)",
        pretrain_secs
    );
    println!(
        "ppm_ppe_cpu_equivalent_pct\t{:.2}\t<7% of one core",
        // Wall time of the entire policy+simulation loop per simulated
        // second, as a fraction of one core. The simulator itself is
        // included, so this is an upper bound on the daemon's share.
        run_wall / r.duration_secs * 100.0
    );
    println!(
        "ppe_avg_migration_gbps\t{:.2}\t~4 GB/s during replacement",
        r.avg_migration_bw() / GIB as f64
    );
    println!(
        "ppe_peak_migration_gbps\t{:.2}\tbounded by M = 4 GB/s",
        peak_bw / GIB as f64
    );
    println!(
        "ppe_total_migrated_gb\t{:.1}\t-",
        r.total_migration_bytes as f64 / GIB as f64
    );
    println!("lc_violation_rate\t{:.4}\t0 for MTAT", r.violation_rate());
}
