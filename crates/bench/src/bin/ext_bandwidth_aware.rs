//! Extension experiment — bandwidth-aware placement (§7).
//!
//! The paper defers bandwidth-aware policies to future work, arguing
//! MTAT composes with them. This extension exercises that claim on a
//! bandwidth-starved configuration (one DDR4-3200 channel, per §5.5's
//! discussion): workload traffic plus placement churn can saturate the
//! fast tier, inflating its effective latency. MTAT with the
//! `bandwidth_freeze` extension pauses placement churn whenever FMem
//! bandwidth utilization crosses a threshold.
//!
//! Output: per-policy TSV comparing LC violations, BE throughput, and
//! observed FMem bandwidth utilization, on both the uncontended and the
//! constrained memory system.

use mtat_bench::header;
use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::runner::Experiment;
use mtat_tiermem::bandwidth::BandwidthModel;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    header(&[
        "memory",
        "policy",
        "violation_pct",
        "be_mops",
        "avg_fmem_util",
        "peak_fmem_util",
    ]);
    let mut starved = SimConfig::paper();
    // A severely bandwidth-starved fast tier: placement churn (up to
    // 4 GB/s) is a substantial fraction of the 8 GB/s channel.
    starved.bandwidth = BandwidthModel::new(8e9, 12e9, 10.0).expect("valid");
    for (label, cfg) in [
        ("uncontended", SimConfig::paper()),
        (
            "constrained",
            SimConfig::paper().with_constrained_bandwidth(),
        ),
        ("starved", starved),
    ] {
        let exp = Experiment::new(
            cfg.clone(),
            LcSpec::redis(),
            LoadPattern::fig7(),
            BeSpec::all_paper_workloads(),
        );
        for (name, mtat_cfg) in [
            ("mtat_full", MtatConfig::full()),
            (
                "mtat_bw_aware",
                MtatConfig::full().with_bandwidth_awareness(0.5),
            ),
        ] {
            let mut policy = MtatPolicy::new(mtat_cfg, &cfg, &exp.lc, &exp.bes);
            let r = exp.run(&mut policy);
            let avg_util: f64 =
                r.ticks.iter().map(|t| t.fmem_bw_util).sum::<f64>() / r.ticks.len() as f64;
            let peak_util = r.ticks.iter().map(|t| t.fmem_bw_util).fold(0.0, f64::max);
            println!(
                "{}\t{}\t{:.1}\t{:.2}\t{:.3}\t{:.3}",
                label,
                name,
                r.violation_rate() * 100.0,
                r.be_total_throughput() / 1e6,
                avg_util,
                peak_util
            );
        }
    }
    println!("#");
    println!("# On the uncontended system both variants behave identically");
    println!("# (utilization never reaches the threshold); on the constrained");
    println!("# one the bandwidth-aware variant trades placement churn for");
    println!("# lower effective FMem latency under saturation.");
}
