//! Figure 1 — Tail latency of LC workloads as load increases, at FMem
//! allocations of 0/25/50/75/100 %.
//!
//! For each of the four LC workloads, sweeps the offered load and prints
//! the P99 response time at each FMem share, plus the resulting maximum
//! sustainable load (the knee, where the SLO line crosses the curve).
//!
//! Output: TSV rows `workload  fmem_pct  krps  p99_ms`, followed by a
//! `# knee` summary block.

use mtat_bench::header;
use mtat_tiermem::GIB;
use mtat_workloads::lc::LcSpec;

fn main() {
    let fmem_total = 32 * GIB;
    let shares = [0.0, 0.25, 0.5, 0.75, 1.0];

    header(&["workload", "fmem_pct", "krps", "p99_ms"]);
    for spec in LcSpec::all_paper_workloads() {
        for &share in &shares {
            let h = spec.full_fmem_hit_ratio((share * fmem_total as f64) as u64);
            let knee = spec.max_load(h);
            // Sweep to slightly past the knee so the hockey stick is visible.
            for step in 1..=30 {
                let load = knee * 1.08 * step as f64 / 30.0;
                let p99 = spec.p99(load, h);
                let p99_ms = if p99.is_finite() { p99 * 1e3 } else { 1e3 };
                println!(
                    "{}\t{}\t{:.2}\t{:.4}",
                    spec.name,
                    (share * 100.0) as u32,
                    load / 1e3,
                    p99_ms
                );
            }
        }
    }

    println!("#");
    println!("# knee (max sustainable KRPS without exceeding the SLO)");
    println!("# workload\tslo_ms\t0%\t25%\t50%\t75%\t100%");
    for spec in LcSpec::all_paper_workloads() {
        let knees: Vec<String> = shares
            .iter()
            .map(|&share| {
                let h = spec.full_fmem_hit_ratio((share * fmem_total as f64) as u64);
                format!("{:.1}", spec.max_load(h) / 1e3)
            })
            .collect();
        println!(
            "# {}\t{:.0}\t{}",
            spec.name,
            spec.slo_secs * 1e3,
            knees.join("\t")
        );
    }
}
