//! Table 1 — LC benchmark characteristics.
//!
//! Prints, for each LC workload, the configured resident set size and
//! SLO alongside the *model-derived* maximum load (the latency knee at
//! FMEM_ALL), so the calibration against the paper's Table 1 can be
//! verified at a glance.
//!
//! Output: TSV rows `workload  rss_gb  slo_ms  max_krps  paper_max_krps`.

use mtat_bench::header;
use mtat_tiermem::GIB;
use mtat_workloads::lc::LcSpec;

fn main() {
    let paper_max = [80.0, 1220.0, 125.0, 11.0];
    header(&[
        "workload",
        "rss_gb",
        "slo_ms",
        "max_krps",
        "paper_max_krps",
        "smem_only_ratio",
    ]);
    for (spec, paper) in LcSpec::all_paper_workloads().into_iter().zip(paper_max) {
        let max = spec.nominal_max_load();
        println!(
            "{}\t{:.1}\t{:.0}\t{:.1}\t{:.0}\t{:.3}",
            spec.name,
            spec.rss_bytes as f64 / GIB as f64,
            spec.slo_secs * 1e3,
            max / 1e3,
            paper,
            spec.max_load(0.0) / max
        );
    }
}
