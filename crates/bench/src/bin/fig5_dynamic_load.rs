//! Figure 5 — Performance under dynamic load.
//!
//! For each LC workload (Redis, Memcached, MongoDB, Silo) co-located
//! with the four BE workloads, drives the Fig.-7 trapezoid load under
//! each policy and prints the per-policy P99 latency and FMem-ratio time
//! series, plus a violation summary.
//!
//! Output: TSV rows
//! `lc  policy  t  load_frac  p99_ms  violated  lc_fmem_ratio`.

use mtat_bench::{header, make_policy, MAIN_POLICIES};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    let cfg = SimConfig::paper();
    header(&[
        "lc",
        "policy",
        "t",
        "load_frac",
        "p99_ms",
        "violated",
        "lc_fmem_ratio",
    ]);
    let mut summaries = Vec::new();
    for lc in LcSpec::all_paper_workloads() {
        let exp = Experiment::new(
            cfg.clone(),
            lc.clone(),
            LoadPattern::fig7(),
            BeSpec::all_paper_workloads(),
        );
        for policy_name in MAIN_POLICIES {
            let mut policy = make_policy(policy_name, &cfg, &exp.lc, &exp.bes);
            let r = exp.run(policy.as_mut());
            for tick in r.ticks.iter().step_by(5) {
                let p99_ms = if tick.lc_p99.is_finite() {
                    tick.lc_p99 * 1e3
                } else {
                    1e3
                };
                println!(
                    "{}\t{}\t{:.0}\t{:.2}\t{:.3}\t{}\t{:.3}",
                    lc.name,
                    policy_name,
                    tick.t,
                    tick.lc_load_rps / exp.lc_max_ref,
                    p99_ms,
                    tick.lc_violated as u8,
                    tick.lc_fmem_ratio
                );
            }
            summaries.push((
                lc.name.clone(),
                policy_name,
                r.violation_rate(),
                r.worst_p99_after(0.0),
                r.mean_lc_fmem_ratio(),
            ));
        }
    }
    println!("#");
    println!("# summary: lc  policy  violation_rate  worst_p99_ms  mean_lc_fmem_ratio");
    for (lc, policy, viol, worst, fmem) in summaries {
        let worst_ms = if worst.is_finite() { worst * 1e3 } else { 1e3 };
        println!("# {lc}\t{policy}\t{viol:.4}\t{worst_ms:.2}\t{fmem:.3}");
    }
}
