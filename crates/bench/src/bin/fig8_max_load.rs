//! Figure 8 — Maximum LC load without SLO violation, normalized to
//! FMEM_ALL.
//!
//! For each LC workload co-located with the four BE workloads, binary-
//! searches the largest constant load each policy sustains with a
//! violation rate ≤ 1 % (after a convergence grace window), and prints
//! it normalized to FMEM_ALL — the paper's Fig. 8 bars plus the
//! geometric-mean column.
//!
//! Output: TSV rows `lc  policy  max_krps  normalized`, then a geomean
//! block.

use std::collections::HashMap;

use mtat_bench::{geomean, header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{Experiment, MaxLoadSearch};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const POLICIES: [&str; 6] = [
    "fmem_all",
    "mtat_full",
    "mtat_lc_only",
    "memtis",
    "tpp",
    "smem_all",
];

fn main() {
    let cfg = SimConfig::paper();
    let opts = MaxLoadSearch::default();
    header(&["lc", "policy", "max_krps", "normalized_to_fmem_all"]);
    let mut normalized: HashMap<&str, Vec<f64>> = HashMap::new();
    for lc in LcSpec::all_paper_workloads() {
        let exp = Experiment::new(
            cfg.clone(),
            lc.clone(),
            LoadPattern::Constant(1.0),
            BeSpec::all_paper_workloads(),
        );
        let mut maxes: Vec<(&str, f64)> = Vec::new();
        for policy_name in POLICIES {
            let max = exp.find_max_load(
                &mut || make_policy(policy_name, &cfg, &exp.lc, &exp.bes),
                &opts,
            );
            maxes.push((policy_name, max));
        }
        let fmem_all_max = maxes
            .iter()
            .find(|(n, _)| *n == "fmem_all")
            .expect("fmem_all present")
            .1;
        for (policy_name, max) in maxes {
            let norm = if fmem_all_max > 0.0 {
                max / fmem_all_max
            } else {
                0.0
            };
            println!(
                "{}\t{}\t{:.1}\t{:.3}",
                lc.name,
                policy_name,
                max / 1e3,
                norm
            );
            normalized.entry(policy_name).or_default().push(norm);
        }
    }
    println!("#");
    println!(
        "# geomean normalized max load (paper: MTAT ~0.99, MEMTIS ~0.85, TPP ~0.70 of FMEM_ALL)"
    );
    for policy_name in POLICIES {
        println!("# {policy_name}\t{:.3}", geomean(&normalized[policy_name]));
    }
}
