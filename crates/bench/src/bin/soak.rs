//! Long-horizon soak harness for the self-healing runtime.
//!
//! Drives a simulated multi-day co-location run — diurnal LC load,
//! periodic correlated fault storms, and scattered poison / drift /
//! clock-skew / checkpoint-corruption windows — under the self-healing
//! health subsystem, then asserts the robustness contract:
//!
//! * the run completes with **zero unrecovered incidents**;
//! * rollbacks stay within the per-window budget (no quarantine) and
//!   are bounded by the number of injected fault windows;
//! * the final full audit of the memory substrate passes;
//! * a second run of the identical configuration replays
//!   **bit-identically** (FNV-1a-64 digest over every tick record) —
//!   detection, rollback, and re-learning are all part of the
//!   deterministic simulation.
//!
//! Usage: `soak [--hours N] [--quick] [--seed S] [--out DIR] [--serve ADDR]`
//!
//! `--quick` is the PR-gate variant (~2 simulated hours, every fault
//! kind exercised once). The default 48 simulated hours is the nightly
//! soak; `--out DIR` writes the health event log (JSONL), the SLO
//! alert log (JSONL), the final flight-recorder dump, and a metrics
//! snapshot for CI artifacts.
//!
//! `--serve ADDR` exposes the instrumented pass live over HTTP
//! (`/metrics`, `/healthz`, `/status`, `/events`); both passes run the
//! SLO burn-rate alert engine either way, and the contract asserts the
//! two passes' alert transition logs are identical — alerting is part
//! of the deterministic replay.

use mtat_bench::make_policy;
use mtat_core::config::SimConfig;
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_core::{HealthConfig, HealthState};
use mtat_obs::alert::AlertRule;
use mtat_obs::serve::{TelemetryHub, TelemetryServer};
use mtat_obs::Obs;
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const POLICY: &str = "mtat_full_supervised";
const STORM_PERIOD_HOURS: f64 = 6.0;

/// SLO error budget fed to the burn-rate alert rules: 1 % of requests
/// may violate — the conventional "two nines and a half" starting
/// point. A healthy soak fires nothing (the self-healing runtime keeps
/// the violation rate at zero through every fault storm — that silence
/// is itself part of the contract); the alert log artifact is the
/// evidence, and the replay assert pins its determinism either way.
const SLO_BUDGET: f64 = 0.01;

/// Diurnal load: one-hour steps tracing a smooth day curve — trough
/// 0.35 at midnight, peak 0.75 midday. Purely a function of the hour,
/// so the schedule is reproducible from the duration alone.
fn diurnal_load(hours: f64) -> LoadPattern {
    let n = hours.ceil() as usize;
    let mut steps = Vec::with_capacity(n);
    for h in 0..n {
        let frac = (h % 24) as f64 / 24.0;
        let s = (std::f64::consts::PI * frac).sin();
        steps.push((3600.0, 0.35 + 0.4 * s * s));
    }
    LoadPattern::Steps(steps)
}

/// The fault schedule, plus the number of windows that can raise
/// incidents (the rollback bound asserted after the run). Every window
/// starts 1 s past the hour mark so fault edges never coincide with a
/// partitioning-interval boundary.
fn fault_schedule(hours: f64, seed: u64) -> (FaultPlan, u32) {
    let mut plan = FaultPlan::new(seed);
    let mut incident_windows = 0u32;
    let end = hours * 3600.0;
    let mut add = |plan: &mut FaultPlan, kind: FaultKind, at: f64, dur: f64, incident: bool| {
        if at + dur <= end {
            *plan = plan.clone().with(kind, at, dur);
            if incident {
                incident_windows += 1;
            }
        }
    };

    // Correlated storms every 6 h (intensity 0.95 poisons the actor at
    // the rising edge), starting 45 min in.
    let mut t = 0.75 * 3600.0;
    while t < end {
        add(
            &mut plan,
            FaultKind::FaultStorm { intensity: 0.95 },
            t + 1.0,
            180.0,
            true,
        );
        t += STORM_PERIOD_HOURS * 3600.0;
    }

    // Daily scattered faults: actor poisoning, accumulator drift,
    // controller clock skew (watchdog food), and checkpoint corruption
    // (generation-fallback food; raises no incident by itself).
    let mut day = 0.0;
    while day < end {
        add(
            &mut plan,
            FaultKind::SacPoison,
            day + 0.25 * 3600.0 + 1.0,
            2.0,
            true,
        );
        add(
            &mut plan,
            FaultKind::AccumulatorDrift { delta: 5e-4 },
            day + 3600.0 + 1.0,
            10.0,
            true,
        );
        add(
            &mut plan,
            FaultKind::ClockSkew { factor: 4.0 },
            day + 1.25 * 3600.0 + 1.0,
            10.0,
            true,
        );
        add(
            &mut plan,
            FaultKind::CheckpointCorrupt,
            day + 1.5 * 3600.0 + 1.0,
            120.0,
            false,
        );
        day += 24.0 * 3600.0;
    }
    (plan, incident_windows)
}

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_be() -> BeSpec {
    let mut s = BeSpec::sssp();
    s.rss_bytes = 2 * GIB;
    s
}

fn build_experiment(hours: f64, seed: u64) -> (Experiment, u32) {
    let cfg = SimConfig::small_test().with_seed(seed);
    let (plan, incident_windows) = fault_schedule(hours, seed ^ 0x50AC);
    let exp = Experiment::new(cfg, small_lc(), diurnal_load(hours), vec![small_be()])
        .with_duration(hours * 3600.0)
        .with_fault_plan(plan)
        // Capture every 12th interval (once per simulated minute):
        // frequent enough that a rollback loses less than a minute of
        // learning, cheap enough for a multi-day run.
        .with_checkpoints(CheckpointCfg::in_memory().with_every(12))
        .with_health(HealthConfig::self_heal());
    (exp, incident_windows)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let hours: f64 = if flag("--quick") {
        2.0
    } else {
        opt("--hours").map_or(48.0, |v| v.parse().expect("--hours takes a number"))
    };
    let seed: u64 = opt("--seed").map_or(7, |v| v.parse().expect("--seed takes a number"));
    let out = opt("--out");
    let serve = opt("--serve");

    let (exp, incident_windows) = build_experiment(hours, seed);
    eprintln!(
        "# soak: {hours} simulated hours, {} fault windows ({} incident-capable), seed {seed}",
        exp.fault_plan.windows.len(),
        incident_windows
    );

    // Live telemetry plane: the hub receives interval snapshots from
    // the instrumented pass; server threads only ever read them, so the
    // replay contract below covers serving too (pass 2 runs with no hub
    // attached and must still be bit-identical).
    let hub = TelemetryHub::new();
    let server: Option<TelemetryServer> = serve.as_deref().map(|addr| {
        let s = TelemetryServer::bind(addr, hub.clone())
            .unwrap_or_else(|e| panic!("cannot serve on {addr}: {e}"));
        eprintln!("# serving telemetry on http://{}/", s.local_addr());
        s
    });

    // Pass 1: instrumented run — health events, the flight recorder,
    // and the SLO alert log come from here.
    let tele = Obs::enabled();
    let t0 = std::time::Instant::now();
    let r1 = {
        let mut exp = exp
            .clone()
            .with_obs(tele.clone())
            .with_alerts(AlertRule::default_rules(SLO_BUDGET));
        if server.is_some() {
            exp = exp.with_hub(hub.clone());
        }
        let mut p = make_policy(POLICY, &exp.cfg, &exp.lc, &exp.bes);
        exp.run(p.as_mut())
    };
    eprintln!(
        "# pass 1: {} ticks in {:.1}s wall, {} alert transitions",
        r1.ticks.len(),
        t0.elapsed().as_secs_f64(),
        r1.alerts.len()
    );

    // Pass 2: telemetry and serving off — physics must not notice, and
    // the whole run (detection, rollback, re-learning, alerting) must
    // replay bit-for-bit.
    let r2 = {
        let exp = exp
            .clone()
            .with_alerts(AlertRule::default_rules(SLO_BUDGET));
        let mut p = make_policy(POLICY, &exp.cfg, &exp.lc, &exp.bes);
        exp.run(p.as_mut())
    };
    let (d1, d2) = (r1.digest(), r2.digest());

    let h = r1.health.as_ref().expect("health summary present");
    println!("{{");
    // A soak is a single-host, single-threaded run (two serial passes);
    // the worker/shard counts are recorded anyway so every harness
    // artifact is audit-uniform with chaos_matrix and fleet_sim.
    println!("  \"workers\": 1, \"shards\": 1,");
    println!("  \"sim_hours\": {hours}, \"ticks\": {},", r1.ticks.len());
    println!(
        "  \"rollbacks\": {}, \"repairs\": {}, \"unrecovered\": {},",
        h.rollbacks, h.repairs, h.unrecovered
    );
    println!(
        "  \"poison_incidents\": {}, \"audit_incidents\": {}, \"watchdog_overruns\": {},",
        h.poison_incidents, h.audit_incidents, h.watchdog_overruns
    );
    println!(
        "  \"quarantined\": {}, \"final_state\": \"{}\", \"final_audit_ok\": {},",
        h.quarantined,
        h.final_state.label(),
        h.final_audit_ok
    );
    println!(
        "  \"violation_rate\": {:.6}, \"be_total_throughput\": {:.1},",
        r1.violation_rate_after(20.0),
        r1.be_total_throughput()
    );
    let fired = r1.alerts.iter().filter(|a| a.to == "firing").count();
    println!(
        "  \"alert_transitions\": {}, \"alerts_fired\": {fired},",
        r1.alerts.len()
    );
    println!("  \"digest\": \"{d1:016x}\", \"replay_digest\": \"{d2:016x}\"");
    println!("}}");

    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir}: {e}"));
        let events: String = h.events.iter().map(|e| e.jsonl() + "\n").collect();
        let ev_path = format!("{dir}/health_events.jsonl");
        std::fs::write(&ev_path, events).unwrap_or_else(|e| panic!("write {ev_path}: {e}"));
        let al_path = format!("{dir}/alerts.jsonl");
        std::fs::write(&al_path, r1.alerts_jsonl())
            .unwrap_or_else(|e| panic!("write {al_path}: {e}"));
        let dump = tele
            .dump_flight_recorder("soak end")
            .unwrap_or_else(|| "(flight recorder empty)".to_string());
        let fr_path = format!("{dir}/flight_recorder.txt");
        std::fs::write(&fr_path, dump).unwrap_or_else(|e| panic!("write {fr_path}: {e}"));
        if let Some(json) = tele.snapshot_json() {
            let m_path = format!("{dir}/metrics.json");
            std::fs::write(&m_path, json).unwrap_or_else(|e| panic!("write {m_path}: {e}"));
        }
        eprintln!("# wrote {ev_path}, {al_path}, {fr_path}");
    }

    // ---- The soak contract ----
    assert_eq!(
        r1.ticks.len(),
        (hours * 3600.0).round() as usize,
        "the run must complete every tick"
    );
    assert_eq!(h.unrecovered, 0, "every incident must be recovered: {h:?}");
    assert!(!h.quarantined, "rollback budget must hold: {h:?}");
    assert!(
        h.rollbacks <= incident_windows,
        "rollbacks ({}) exceed the incident-capable fault windows ({incident_windows})",
        h.rollbacks
    );
    assert!(
        h.rollbacks >= 1,
        "the schedule must actually exercise recovery: {h:?}"
    );
    assert!(h.final_audit_ok, "final full audit must pass");
    assert!(
        matches!(h.final_state, HealthState::Healthy | HealthState::Degraded),
        "run must end out of containment, got {:?}",
        h.final_state
    );
    assert_eq!(d1, d2, "soak replay must be bit-identical");
    // Alert transitions — rule, sim-time timestamp, states, and burn
    // rates — are part of the deterministic replay, served or not.
    assert_eq!(
        r1.alerts, r2.alerts,
        "alert transition log must replay bit-identically"
    );
    drop(server);
    eprintln!(
        "# soak OK: {} rollbacks, {} repairs, {} alert transitions, digest {d1:016x}",
        h.rollbacks,
        h.repairs,
        r1.alerts.len()
    );
}
