//! Figure 6 — BE fairness and throughput under dynamic LC load.
//!
//! Runs the same co-locations as Fig. 5 (each LC workload with the four
//! BE workloads under the Fig.-7 trapezoid) and reports, per policy:
//! the fairness metric (the smallest normalized performance `NP` of
//! Eq. 3) and the summed BE throughput, both absolute and normalized to
//! MEMTIS and TPP as the paper quotes them ("3.3× over TPP, 1.4× over
//! MEMTIS", "at most 19 % throughput penalty").
//!
//! Output: TSV rows `lc  policy  fairness  be_throughput_mops  np_sssp
//! np_bfs np_pr np_xsbench`, then normalized summary rows.

use std::collections::HashMap;

use mtat_bench::{geomean, header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::Experiment;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const POLICIES: [&str; 4] = ["mtat_full", "mtat_lc_only", "memtis", "tpp"];

fn main() {
    let cfg = SimConfig::paper();
    header(&[
        "lc",
        "policy",
        "fairness",
        "be_throughput_mops",
        "np_sssp",
        "np_bfs",
        "np_pr",
        "np_xsbench",
    ]);
    let mut fairness: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut throughput: HashMap<&str, Vec<f64>> = HashMap::new();
    for lc in LcSpec::all_paper_workloads() {
        let exp = Experiment::new(
            cfg.clone(),
            lc.clone(),
            LoadPattern::fig7(),
            BeSpec::all_paper_workloads(),
        );
        for policy_name in POLICIES {
            let mut policy = make_policy(policy_name, &cfg, &exp.lc, &exp.bes);
            let r = exp.run(policy.as_mut());
            let np = r.np();
            println!(
                "{}\t{}\t{:.3}\t{:.2}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                lc.name,
                policy_name,
                r.fairness(),
                r.be_total_throughput() / 1e6,
                np[0],
                np[1],
                np[2],
                np[3]
            );
            fairness.entry(policy_name).or_default().push(r.fairness());
            throughput
                .entry(policy_name)
                .or_default()
                .push(r.be_total_throughput());
        }
    }

    println!("#");
    println!("# geomean across the four LC co-locations, normalized:");
    println!("# policy\tfairness\tvs_memtis\tvs_tpp\tthroughput\tvs_memtis");
    let f_memtis = geomean(&fairness["memtis"]);
    let f_tpp = geomean(&fairness["tpp"]);
    let t_memtis = geomean(&throughput["memtis"]);
    for policy_name in POLICIES {
        let f = geomean(&fairness[policy_name]);
        let t = geomean(&throughput[policy_name]);
        println!(
            "# {policy_name}\t{f:.3}\t{:.2}\t{:.2}\t{:.2}M\t{:.2}",
            f / f_memtis,
            f / f_tpp,
            t / 1e6,
            t / t_memtis
        );
    }
}
