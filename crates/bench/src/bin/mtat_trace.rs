//! `mtat-trace` — offline analyzer for span-trace documents.
//!
//! Every `--trace-out PATH` flag (`mtat_sim`, `chaos_matrix`) and every
//! [`mtat_obs::Obs::trace_json`] call writes the same document; this
//! tool reads it back and answers where the time went and why each
//! partition plan looked the way it did.
//!
//! ```text
//! mtat-trace summary        FILE          per-phase time table
//! mtat-trace slowest-phases FILE [-n N]   N slowest individual spans
//! mtat-trace plan TICK      FILE          causal chain of the decision
//!                                         at TICK (inputs → mode →
//!                                         SAC/anneal → clamps → plan →
//!                                         enforcement)
//! mtat-trace export --chrome FILE         Chrome trace-event JSON
//!                                         (open in Perfetto)
//! mtat-trace export --folded FILE         collapsed stacks (inferno)
//! mtat-trace promlint FILE|-              lint a Prometheus scrape
//!                                         (a `/metrics` response or
//!                                         `--metrics-out` file; `-`
//!                                         reads stdin)
//! ```

use std::io::Write;
use std::process::ExitCode;

use mtat_bench::trace;

fn usage() -> &'static str {
    "usage: mtat-trace summary FILE\n\
     \x20      mtat-trace slowest-phases FILE [-n N]\n\
     \x20      mtat-trace plan TICK FILE\n\
     \x20      mtat-trace export --chrome|--folded FILE\n\
     \x20      mtat-trace promlint FILE|-\n\
     \n\
     promlint checks a Prometheus text-format scrape (a /metrics\n\
     response, or a --metrics-out file) the way `promtool check\n\
     metrics` would: parse errors and structural lint issues are\n\
     reported one per line and exit nonzero.\n\
     \n\
     FILE is a trace document produced by --trace-out (mtat_sim,\n\
     chaos_matrix) or Obs::trace_json. Chrome exports load directly in\n\
     Perfetto (ui.perfetto.dev) or chrome://tracing; folded exports are\n\
     flamegraph.pl / inferno input."
}

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "summary" => {
            let path = args.get(1).ok_or("summary needs FILE")?;
            Ok(trace::summary(&trace::load_trace(path)?))
        }
        "slowest-phases" => {
            let path = args.get(1).ok_or("slowest-phases needs FILE")?;
            let n = match args.get(2).map(String::as_str) {
                Some("-n") => args
                    .get(3)
                    .ok_or("-n needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("-n: {e}"))?,
                Some(other) => return Err(format!("unknown flag {other}")),
                None => 20,
            };
            Ok(trace::slowest_phases(&trace::load_trace(path)?, n))
        }
        "plan" => {
            let tick = args
                .get(1)
                .ok_or("plan needs TICK")?
                .parse::<u64>()
                .map_err(|e| format!("TICK: {e}"))?;
            let path = args.get(2).ok_or("plan needs FILE")?;
            trace::plan_chain(&trace::load_trace(path)?, tick)
        }
        "export" => {
            let format = args.get(1).ok_or("export needs --chrome or --folded")?;
            let path = args.get(2).ok_or("export needs FILE")?;
            let doc = trace::load_trace(path)?;
            match format.as_str() {
                "--chrome" => Ok(trace::export_chrome(&doc)),
                "--folded" => Ok(trace::export_folded(&doc)),
                other => Err(format!("unknown export format {other}")),
            }
        }
        "promlint" => {
            let path = args.get(1).ok_or("promlint needs FILE (or - for stdin)")?;
            let text = if path == "-" {
                let mut buf = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                    .map_err(|e| format!("stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
            };
            let samples = mtat_obs::promlint::parse(&text).map_err(|e| format!("parse: {e}"))?;
            let issues = mtat_obs::promlint::lint(&text);
            if issues.is_empty() {
                Ok(format!("OK: {} samples, 0 lint issues\n", samples.len()))
            } else {
                Err(issues.join("\n"))
            }
        }
        "--help" | "-h" => Err(String::new()),
        other => Err(format!("unknown command {other}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            // Tolerate a closed pipe (`mtat-trace export ... | head`).
            let _ = std::io::stdout().write_all(out.as_bytes());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
