//! Table 3 — MTAT across varying core/BE-count settings.
//!
//! Each setting `(x, y, z)` gives the LC workload (Memcached) `x` cores
//! and shares `y` cores among `z` BE workloads ({SSSP, PR} for z = 2,
//! the full four-workload set for z = 4). For each setting and MTAT
//! variant the harness measures:
//!
//! * the LC max load, normalized to FMEM_ALL under the same setting, and
//! * BE fairness and throughput at 20/50/80 % of that max, normalized to
//!   MEMTIS at the same load level.
//!
//! Output: TSV rows
//! `setting  config  lc_max_norm  f20  t20  f50  t50  f80  t80`.

use mtat_bench::{header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{Experiment, MaxLoadSearch};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const SETTINGS: [(usize, usize, usize); 6] = [
    (4, 20, 2),
    (4, 20, 4),
    (10, 14, 2),
    (10, 14, 4),
    (16, 8, 2),
    (16, 8, 4),
];
const RUN_SECS: f64 = 120.0;
const GRACE_SECS: f64 = 30.0;

fn be_set(z: usize, cores_each: usize) -> Vec<BeSpec> {
    let base = if z == 2 {
        BeSpec::two_workload_set()
    } else {
        BeSpec::all_paper_workloads()
    };
    base.into_iter().map(|b| b.with_cores(cores_each)).collect()
}

fn main() {
    header(&[
        "setting",
        "config",
        "lc_max_norm",
        "be_fair_20",
        "be_thr_20",
        "be_fair_50",
        "be_thr_50",
        "be_fair_80",
        "be_thr_80",
    ]);
    let opts = MaxLoadSearch::default();
    for (x, y, z) in SETTINGS {
        let cfg = SimConfig::paper();
        let lc = LcSpec::memcached().with_cores(x);
        let bes = be_set(z, y / z);
        let exp = Experiment::new(cfg.clone(), lc, LoadPattern::Constant(1.0), bes);

        let fmem_all_max = exp.find_max_load(
            &mut || make_policy("fmem_all", &cfg, &exp.lc, &exp.bes),
            &opts,
        );

        for variant in ["mtat_full", "mtat_lc_only"] {
            let max =
                exp.find_max_load(&mut || make_policy(variant, &cfg, &exp.lc, &exp.bes), &opts);
            let lc_max_norm = if fmem_all_max > 0.0 {
                max / fmem_all_max
            } else {
                0.0
            };

            let mut cells = Vec::new();
            for load_pct in [0.2, 0.5, 0.8] {
                // Load levels are fractions of *this setting's* MTAT max.
                let frac = load_pct * max / exp.lc_max_ref;
                let level_exp = exp.clone().with_duration(RUN_SECS);
                let run_at = |policy_name: &str| {
                    let mut e = level_exp.clone();
                    e.load = LoadPattern::Constant(frac);
                    let mut p = make_policy(policy_name, &cfg, &e.lc, &e.bes);
                    e.run(p.as_mut())
                };
                let r_mtat = run_at(variant);
                let r_memtis = run_at("memtis");
                let fair = r_mtat.fairness() / r_memtis.fairness().max(1e-12);
                let thr = r_mtat.be_total_throughput() / r_memtis.be_total_throughput().max(1e-12);
                let _ = GRACE_SECS; // steady-state handled by fairness averaging
                cells.push((fair, thr));
            }
            println!(
                "({x},{y},{z})\t{variant}\t{lc_max_norm:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
                cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
            );
        }
    }
    println!("#");
    println!("# paper: LC max 0.98-0.99 everywhere; BE fairness >= 1.0 (up to 1.76");
    println!("# at 80 % load); BE throughput 0.83-1.02 at low load, 0.51-0.73 at 80 %.");
}
