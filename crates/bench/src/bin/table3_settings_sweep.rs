//! Table 3 — MTAT across varying core/BE-count settings.
//!
//! Each setting `(x, y, z)` gives the LC workload (Memcached) `x` cores
//! and shares `y` cores among `z` BE workloads ({SSSP, PR} for z = 2,
//! the full four-workload set for z = 4). For each setting and MTAT
//! variant the harness measures:
//!
//! * the LC max load, normalized to FMEM_ALL under the same setting, and
//! * BE fairness and throughput at 20/50/80 % of that max, normalized to
//!   MEMTIS at the same load level.
//!
//! The sweep runs in two parallel phases on the matrix harness: first
//! every (setting × policy) max-load search — these are independent
//! bisection loops — then every (setting × variant × load-level ×
//! {variant, memtis}) measurement run, whose load fractions depend on
//! the phase-1 maxima. Cell results come back in submission order, so
//! the TSV is identical to a serial sweep's.
//!
//! Output: TSV rows
//! `setting  config  lc_max_norm  f20  t20  f50  t50  f80  t80`.

use mtat_bench::{harness, header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{Experiment, MaxLoadSearch};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

const SETTINGS: [(usize, usize, usize); 6] = [
    (4, 20, 2),
    (4, 20, 4),
    (10, 14, 2),
    (10, 14, 4),
    (16, 8, 2),
    (16, 8, 4),
];
const VARIANTS: [&str; 2] = ["mtat_full", "mtat_lc_only"];
const LOAD_PCTS: [f64; 3] = [0.2, 0.5, 0.8];
const RUN_SECS: f64 = 120.0;
const GRACE_SECS: f64 = 30.0;

fn be_set(z: usize, cores_each: usize) -> Vec<BeSpec> {
    let base = if z == 2 {
        BeSpec::two_workload_set()
    } else {
        BeSpec::all_paper_workloads()
    };
    base.into_iter().map(|b| b.with_cores(cores_each)).collect()
}

fn main() {
    header(&[
        "setting",
        "config",
        "lc_max_norm",
        "be_fair_20",
        "be_thr_20",
        "be_fair_50",
        "be_thr_50",
        "be_fair_80",
        "be_thr_80",
    ]);
    let opts = MaxLoadSearch::default();
    let cfg = SimConfig::paper();
    let exps: Vec<Experiment> = SETTINGS
        .iter()
        .map(|&(x, y, z)| {
            Experiment::new(
                cfg.clone(),
                LcSpec::memcached().with_cores(x),
                LoadPattern::Constant(1.0),
                be_set(z, y / z),
            )
        })
        .collect();

    // Phase 1: every max-load bisection, in parallel. Cell order is
    // (setting-major, policy ∈ [fmem_all, mtat_full, mtat_lc_only]).
    let search_names: [&str; 3] = ["fmem_all", VARIANTS[0], VARIANTS[1]];
    let search_cells: Vec<(usize, &str)> = (0..SETTINGS.len())
        .flat_map(|si| search_names.iter().map(move |&n| (si, n)))
        .collect();
    let maxima = harness::run_matrix(
        &search_cells,
        harness::worker_count(search_cells.len()),
        |_, &(si, name)| {
            let exp = &exps[si];
            exp.find_max_load(&mut || make_policy(name, &cfg, &exp.lc, &exp.bes), &opts)
        },
    );
    let max_of = |si: usize, name: &str| {
        let pi = search_names.iter().position(|&n| n == name).unwrap();
        maxima[si * search_names.len() + pi]
    };

    // Phase 2: every load-level measurement run, in parallel. Cell order
    // is (setting, variant, load-level, {variant, memtis}).
    let level_cells: Vec<(usize, &str, f64, &str)> = (0..SETTINGS.len())
        .flat_map(|si| {
            VARIANTS.iter().flat_map(move |&variant| {
                LOAD_PCTS.iter().flat_map(move |&pct| {
                    [variant, "memtis"].map(|policy| (si, variant, pct, policy))
                })
            })
        })
        .collect();
    let level_runs = harness::run_matrix(
        &level_cells,
        harness::worker_count(level_cells.len()),
        |_, &(si, variant, load_pct, policy_name)| {
            let exp = &exps[si];
            // Load levels are fractions of *this setting's* MTAT max.
            let frac = load_pct * max_of(si, variant) / exp.lc_max_ref;
            let mut e = exp.clone().with_duration(RUN_SECS);
            e.load = LoadPattern::Constant(frac);
            let mut p = make_policy(policy_name, &cfg, &e.lc, &e.bes);
            let r = e.run(p.as_mut());
            (r.fairness(), r.be_total_throughput())
        },
    );

    let mut level_iter = level_runs.into_iter();
    for (si, &(x, y, z)) in SETTINGS.iter().enumerate() {
        let fmem_all_max = max_of(si, "fmem_all");
        for variant in VARIANTS {
            let max = max_of(si, variant);
            let lc_max_norm = if fmem_all_max > 0.0 {
                max / fmem_all_max
            } else {
                0.0
            };
            let mut cells = Vec::new();
            for _load_pct in LOAD_PCTS {
                let (fair_mtat, thr_mtat) = level_iter.next().expect("cell count mismatch");
                let (fair_memtis, thr_memtis) = level_iter.next().expect("cell count mismatch");
                let fair = fair_mtat / fair_memtis.max(1e-12);
                let thr = thr_mtat / thr_memtis.max(1e-12);
                let _ = GRACE_SECS; // steady-state handled by fairness averaging
                cells.push((fair, thr));
            }
            println!(
                "({x},{y},{z})\t{variant}\t{lc_max_norm:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
                cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
            );
        }
    }
    println!("#");
    println!("# paper: LC max 0.98-0.99 everywhere; BE fairness >= 1.0 (up to 1.76");
    println!("# at 80 % load); BE throughput 0.83-1.02 at low load, 0.51-0.73 at 80 %.");
}
