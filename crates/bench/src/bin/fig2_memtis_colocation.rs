//! Figure 2 — Redis co-located with SSSP under MEMTIS-managed tiered
//! memory.
//!
//! Redis starts with 100 % of FMem, then receives a staircase of loads
//! equal to the maximum throughputs at FMem allocations of
//! {0, 25, 50, 75, 100} % (per Fig. 1). The output shows, per second,
//! the imposed load, the P99 latency against the SLO, and the fraction
//! of Redis data resident in FMem — reproducing the collapse of Redis's
//! residency once MEMTIS fills FMem with the SSSP working set and the
//! SLO violation once the load passes the 25 %-FMem knee.
//!
//! Output: TSV rows `t  load_krps  p99_ms  slo_ms  violated  redis_fmem_ratio`.

use mtat_bench::{harness, header, make_policy};
use mtat_core::config::SimConfig;
use mtat_core::runner::{burst_headroom, Experiment};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn main() {
    let cfg = SimConfig::paper();
    let redis = LcSpec::redis();
    let fmem_total = cfg.mem.fmem_bytes();

    // Staircase levels: the knees at each FMem share (Fig. 1), as
    // fractions of the FMEM_ALL reference used by the runner.
    let knee_full = redis.max_load(redis.full_fmem_hit_ratio(fmem_total));
    let ref_load = knee_full / burst_headroom(cfg.burst_sigma);
    let levels: Vec<f64> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&share| {
            let h = redis.full_fmem_hit_ratio((share * fmem_total as f64) as u64);
            (redis.max_load(h) / burst_headroom(cfg.burst_sigma)) / ref_load
        })
        .collect();
    let dwell = 60.0;
    let pattern = LoadPattern::staircase(&levels, dwell);

    let exp = Experiment::new(cfg.clone(), redis, pattern, vec![BeSpec::sssp()]);
    // A single time-series run, but routed through the matrix harness so
    // every figure binary shares one execution path (a one-cell matrix
    // degenerates to a serial run on the calling thread).
    let cells = ["memtis"];
    let result = harness::run_matrix(&cells, harness::worker_count(cells.len()), |_, name| {
        let mut policy = make_policy(name, &cfg, &exp.lc, &exp.bes);
        exp.run(policy.as_mut())
    })
    .pop()
    .expect("one cell in, one result out");

    println!("# Fig. 2: Redis + SSSP under MEMTIS; staircase of Fig.-1 knees");
    println!(
        "# levels (fraction of FMEM_ALL max): {:?}",
        levels
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    header(&[
        "t",
        "load_krps",
        "p99_ms",
        "slo_ms",
        "violated",
        "redis_fmem_ratio",
    ]);
    for tick in result.ticks.iter().step_by(2) {
        let p99_ms = if tick.lc_p99.is_finite() {
            tick.lc_p99 * 1e3
        } else {
            1e3
        };
        println!(
            "{:.0}\t{:.2}\t{:.3}\t{:.0}\t{}\t{:.3}",
            tick.t,
            tick.lc_load_rps / 1e3,
            p99_ms,
            exp.lc.slo_secs * 1e3,
            tick.lc_violated as u8,
            tick.lc_fmem_ratio
        );
    }
    println!("#");
    println!(
        "# summary: violation_rate={:.3} mean_redis_fmem_ratio={:.3}",
        result.violation_rate(),
        result.mean_lc_fmem_ratio()
    );
}
