//! Parallel experiment-matrix harness.
//!
//! Every figure/table binary ultimately evaluates a matrix of
//! independent cells — (policy × scenario × load-level × seed) — where
//! each cell is a full deterministic simulation run. The cells share no
//! mutable state, so they parallelize embarrassingly; what must NOT
//! change is the *output*: each cell's result has to be bit-identical
//! to a serial run, and results must come back in submission order so
//! the TSV/JSON printing code stays byte-for-byte stable.
//!
//! [`run_matrix`] provides exactly that contract on a
//! `std::thread::scope` worker pool (no rayon — the build is fully
//! vendored). Workers claim cell indices from a shared atomic counter
//! and write each result into its own pre-allocated slot, so the
//! returned `Vec` is ordered by cell index regardless of which worker
//! finished when. Determinism therefore reduces to the per-cell closure
//! being a pure function of `(index, cell)` — which holds for every
//! simulation here because all randomness is seeded per-run (see
//! [`cell_seed`] for matrices that need a distinct stream per cell).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-pool size.
pub const THREADS_ENV: &str = "MTAT_BENCH_THREADS";

/// Number of worker threads to use for a matrix of `cells` cells:
/// `MTAT_BENCH_THREADS` when set (clamped to ≥ 1; garbage values warn
/// via [`mtat_obs::env::env_usize`] and fall back), otherwise
/// [`std::thread::available_parallelism`], and never more threads than
/// cells.
pub fn worker_count(cells: usize) -> usize {
    let configured = mtat_obs::env::env_usize(THREADS_ENV)
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    configured.clamp(1, cells.max(1))
}

/// Deterministic per-cell seed: a SplitMix64 step of `base` keyed by the
/// cell index. Distinct indices give decorrelated streams; the same
/// `(base, index)` always gives the same seed, independent of worker
/// count or scheduling.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates `f(index, &cells[index])` for every cell on a scoped
/// worker pool and returns the results **in cell order**.
///
/// * `workers` is the pool size (use [`worker_count`]); `workers <= 1`
///   or a single cell degenerates to a plain serial loop on the calling
///   thread, with identical results.
/// * Workers pull indices from a shared [`AtomicUsize`], so cells are
///   load-balanced dynamically (long max-load searches don't serialize
///   behind each other).
/// * Each result lands in its own pre-allocated slot — ordered
///   collection without contention on a shared result vector.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first, so no cell is silently dropped).
pub fn run_matrix<K, R, F>(cells: &[K], workers: usize, f: F) -> Vec<R>
where
    K: Sync,
    R: Send,
    F: Fn(usize, &K) -> R + Sync,
{
    run_matrix_chunked(cells, workers, 1, f)
}

/// [`run_matrix`] with workers claiming *contiguous chunks* of `chunk`
/// cell indices per atomic fetch — the scaling generalization for
/// fleet-sized matrices (thousands of short cells), where per-cell
/// claiming would put one `fetch_add` plus one cold `Mutex` handoff on
/// every few milliseconds of work. Results are still returned in cell
/// order and each cell still sees the same `(index, cell)` pair, so
/// the bit-identity contract is unchanged; only the claim granularity
/// (and therefore tail-end load balance) differs. `chunk` is clamped
/// to ≥ 1; `chunk == 1` is exactly [`run_matrix`].
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first, so no cell is silently dropped).
pub fn run_matrix_chunked<K, R, F>(cells: &[K], workers: usize, chunk: usize, f: F) -> Vec<R>
where
    K: Sync,
    R: Send,
    F: Fn(usize, &K) -> R + Sync,
{
    if cells.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, cells.len());
    if workers == 1 {
        return cells.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let chunk = chunk.max(1);

    let slots: Vec<Mutex<Option<R>>> = (0..cells.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= cells.len() {
                    break;
                }
                for i in start..(start + chunk).min(cells.len()) {
                    let r = f(i, &cells[i]);
                    let prev = slots[i].lock().expect("slot poisoned").replace(r);
                    assert!(prev.is_none(), "cell {i} claimed twice");
                }
            });
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.into_inner()
                .expect("slot poisoned")
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

/// Default claim-chunk size for a fleet of `cells` cells on `workers`
/// workers: large enough to amortize claiming (~8 claims per worker
/// over the matrix), small enough that the tail imbalance stays under
/// ~2 % of the run.
#[must_use]
pub fn chunk_for(cells: usize, workers: usize) -> usize {
    (cells / (workers.max(1) * 8)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_ordered_and_complete() {
        let cells: Vec<usize> = (0..257).collect();
        let out = run_matrix(&cells, 8, |i, &c| {
            assert_eq!(i, c);
            c * 3 + 1
        });
        assert_eq!(out.len(), cells.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3 + 1);
        }
    }

    #[test]
    fn parallel_matches_serial_for_seeded_work() {
        // A cell function that is a pure function of (index, cell) must
        // give bit-identical results at any worker count.
        let cells: Vec<u64> = (0..64).map(|i| 0xACE1u64 + i).collect();
        let f = |i: usize, &c: &u64| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(cell_seed(c, i));
            (0..100).map(|_| rng.gen_range(0..1u64 << 32)).sum::<u64>()
        };
        let serial = run_matrix(&cells, 1, f);
        let parallel = run_matrix(&cells, 7, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let cells: Vec<u32> = (0..100).collect();
        run_matrix(&cells, 5, |i, _| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 100);
        let unique: HashSet<_> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn empty_and_single_cell_edges() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_matrix(&empty, 4, |_, &c| c).is_empty());
        assert_eq!(run_matrix(&[9u8], 4, |_, &c| c + 1), vec![10]);
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let base = 42;
        let seeds: Vec<u64> = (0..1000).map(|i| cell_seed(base, i)).collect();
        let unique: HashSet<_> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        assert_eq!(cell_seed(base, 7), cell_seed(base, 7));
        assert_ne!(cell_seed(base, 7), cell_seed(base + 1, 7));
    }

    #[test]
    fn chunked_matches_per_cell_claiming() {
        let cells: Vec<u64> = (0..1000).map(|i| 0xFEEDu64 + i).collect();
        let f = |i: usize, &c: &u64| cell_seed(c, i);
        let serial = run_matrix_chunked(&cells, 1, 64, f);
        for chunk in [1, 3, 16, 64, 1000, 5000] {
            assert_eq!(
                run_matrix_chunked(&cells, 7, chunk, f),
                serial,
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn chunked_runs_every_cell_exactly_once() {
        let seen = Mutex::new(Vec::new());
        let cells: Vec<u32> = (0..501).collect();
        run_matrix_chunked(&cells, 5, 7, |i, _| {
            seen.lock().unwrap().push(i);
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 501);
        let unique: HashSet<_> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 501);
    }

    #[test]
    fn chunk_for_is_sane() {
        assert_eq!(chunk_for(0, 8), 1);
        assert_eq!(chunk_for(7, 8), 1);
        assert_eq!(chunk_for(1024, 8), 16);
        assert!(chunk_for(1000, 0) >= 1);
    }

    #[test]
    fn worker_count_respects_env_and_cells() {
        // Don't mutate the process env (other tests run concurrently);
        // exercise the clamping logic through the public contract only.
        assert!(worker_count(1) == 1);
        assert!(worker_count(0) >= 1);
        assert!(worker_count(usize::MAX) >= 1);
    }
}
