//! Experiment harness for regenerating every table and figure of the
//! MTAT paper (Middleware '25).
//!
//! Each binary in `src/bin/` reproduces one table or figure and prints
//! the same rows/series the paper reports, as tab-separated values
//! suitable for plotting:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_latency_curves` | Fig. 1 — P99 vs load at FMem {0,25,50,75,100} % |
//! | `fig2_memtis_colocation` | Fig. 2 — Redis + SSSP under MEMTIS over time |
//! | `fig5_dynamic_load` | Fig. 5 — dynamic-load P99 + FMem ratio per policy |
//! | `fig6_be_summary` | Fig. 6 — BE fairness and throughput summary |
//! | `fig8_max_load` | Fig. 8 — max LC load normalized to FMEM_ALL |
//! | `fig9_load_levels` | Fig. 9 + Table 4 — BE metrics & SLO violations at 20/50/80 % load |
//! | `table1_lc_calibration` | Table 1 — LC benchmark characteristics |
//! | `table3_settings_sweep` | Table 3 — core/BE-count settings sweep |
//! | `sec55_overhead` | §5.5 — PP-M/PP-E overhead accounting |
//! | `chaos_matrix` | robustness: policy × fault-scenario matrix (not in the paper) |
//!
//! The Criterion benches in `benches/` cover data-structure micro-costs
//! and the DESIGN.md ablations.

pub mod harness;
pub mod trace;

use mtat_core::config::SimConfig;
use mtat_core::policy::memtis::MemtisPolicy;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::policy::statics::StaticPolicy;
use mtat_core::policy::tpp::TppPolicy;
use mtat_core::Policy;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;

/// The policy names evaluated in the paper's main comparisons.
pub const MAIN_POLICIES: [&str; 6] = [
    "mtat_full",
    "mtat_lc_only",
    "memtis",
    "tpp",
    "fmem_all",
    "smem_all",
];

/// Builds a policy by name for the given co-location. MTAT variants
/// pretrain (or fetch the cached agent for) the LC workload.
///
/// # Panics
///
/// Panics on an unknown policy name.
pub fn make_policy(name: &str, cfg: &SimConfig, lc: &LcSpec, bes: &[BeSpec]) -> Box<dyn Policy> {
    match name {
        "mtat_full" => Box::new(MtatPolicy::new(MtatConfig::full(), cfg, lc, bes)),
        "mtat_lc_only" => Box::new(MtatPolicy::new(MtatConfig::lc_only(), cfg, lc, bes)),
        "mtat_full_supervised" => Box::new(MtatPolicy::new(
            MtatConfig::full().supervised(),
            cfg,
            lc,
            bes,
        )),
        "mtat_lc_only_supervised" => Box::new(MtatPolicy::new(
            MtatConfig::lc_only().supervised(),
            cfg,
            lc,
            bes,
        )),
        "mtat_full_heuristic" => Box::new(MtatPolicy::new(
            MtatConfig::full().with_heuristic_sizer(),
            cfg,
            lc,
            bes,
        )),
        "mtat_full_hardened" => {
            Box::new(MtatPolicy::new(MtatConfig::full().hardened(), cfg, lc, bes))
        }
        "memtis" => Box::new(MemtisPolicy::new()),
        "hotset" => Box::new(mtat_core::HotsetPolicy::new()),
        "tpp" => Box::new(TppPolicy::new()),
        "fmem_all" => Box::new(StaticPolicy::fmem_all()),
        "smem_all" => Box::new(StaticPolicy::smem_all()),
        other => panic!("unknown policy {other}"),
    }
}

/// Geometric mean of a slice.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a TSV header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn make_policy_covers_main_names() {
        let cfg = SimConfig::small_test();
        let mut lc = LcSpec::redis();
        lc.rss_bytes = 1 << 30;
        let bes: Vec<BeSpec> = vec![];
        // Only the non-pretraining policies here (MTAT covered elsewhere).
        for name in ["memtis", "tpp", "fmem_all", "smem_all"] {
            let p = make_policy(name, &cfg, &lc, &bes);
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let cfg = SimConfig::small_test();
        let lc = LcSpec::redis();
        let _ = make_policy("nope", &cfg, &lc, &[]);
    }
}
