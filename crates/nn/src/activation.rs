//! Element-wise activation functions.

use serde::{Deserialize, Serialize};

/// An element-wise activation applied between [`crate::linear::Linear`]
/// layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit: `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No-op (used for output layers).
    Identity,
}

impl Activation {
    /// Applies the activation to `pre` (the pre-activation values),
    /// returning the activated output.
    pub fn forward(&self, pre: &[f64]) -> Vec<f64> {
        match self {
            Activation::Relu => pre.iter().map(|&x| x.max(0.0)).collect(),
            Activation::Tanh => pre.iter().map(|&x| x.tanh()).collect(),
            Activation::Identity => pre.to_vec(),
        }
    }

    /// Multiplies `grad_out` by the activation's derivative evaluated at
    /// pre-activation `pre`, producing the gradient with respect to the
    /// pre-activation values.
    pub fn backward(&self, pre: &[f64], grad_out: &[f64]) -> Vec<f64> {
        debug_assert_eq!(pre.len(), grad_out.len());
        match self {
            Activation::Relu => pre
                .iter()
                .zip(grad_out)
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
            Activation::Tanh => pre
                .iter()
                .zip(grad_out)
                .map(|(&x, &g)| {
                    let t = x.tanh();
                    g * (1.0 - t * t)
                })
                .collect(),
            Activation::Identity => grad_out.to_vec(),
        }
    }
}

impl mtat_snapshot::Snap for Activation {
    fn snap(&self, w: &mut mtat_snapshot::SnapWriter) {
        w.put_u8(match self {
            Activation::Relu => 0,
            Activation::Tanh => 1,
            Activation::Identity => 2,
        });
    }

    fn unsnap(r: &mut mtat_snapshot::SnapReader<'_>) -> Result<Self, mtat_snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(Activation::Relu),
            1 => Ok(Activation::Tanh),
            2 => Ok(Activation::Identity),
            _ => Err(mtat_snapshot::SnapError::Malformed("activation tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let pre = [-1.0, 0.0, 2.0];
        let out = Activation::Relu.forward(&pre);
        assert_eq!(out, vec![0.0, 0.0, 2.0]);
        let grad = Activation::Relu.backward(&pre, &[1.0, 1.0, 1.0]);
        assert_eq!(grad, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_forward_backward() {
        let pre = [0.0, 1.0];
        let out = Activation::Tanh.forward(&pre);
        assert!((out[0] - 0.0).abs() < 1e-12);
        assert!((out[1] - 1.0_f64.tanh()).abs() < 1e-12);
        let grad = Activation::Tanh.backward(&pre, &[1.0, 1.0]);
        assert!((grad[0] - 1.0).abs() < 1e-12);
        let t = 1.0_f64.tanh();
        assert!((grad[1] - (1.0 - t * t)).abs() < 1e-12);
    }

    #[test]
    fn identity_passthrough() {
        let pre = [3.0, -4.0];
        assert_eq!(Activation::Identity.forward(&pre), vec![3.0, -4.0]);
        assert_eq!(
            Activation::Identity.backward(&pre, &[0.5, 0.25]),
            vec![0.5, 0.25]
        );
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            for &x in &[-0.7, 0.3, 1.5] {
                let f = |v: f64| act.forward(&[v])[0];
                let numeric = (f(x + eps) - f(x - eps)) / (2.0 * eps);
                let analytic = act.backward(&[x], &[1.0])[0];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }
}
