//! Loss functions.

/// Mean-squared error between `pred` and `target`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    assert!(!pred.is_empty(), "mse of empty slices");
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Gradient of [`mse`] with respect to `pred`: `2(pred − target)/n`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    assert!(!pred.is_empty(), "mse of empty slices");
    let n = pred.len() as f64;
    pred.iter()
        .zip(target)
        .map(|(&p, &t)| 2.0 * (p - t) / n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let pred = [0.5, -1.0, 2.0];
        let target = [0.0, 0.0, 1.0];
        let g = mse_grad(&pred, &target);
        let eps = 1e-6;
        for i in 0..3 {
            let mut p = pred;
            p[i] += eps;
            let fp = mse(&p, &target);
            p[i] -= 2.0 * eps;
            let fm = mse(&p, &target);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - g[i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
