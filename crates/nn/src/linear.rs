//! Fully-connected layer with gradient accumulation and Adam moments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::optim::Adam;

/// A dense layer `y = W·x + b` with `W ∈ R^{out×in}` stored row-major.
///
/// The layer owns its gradient accumulators and Adam first/second
/// moments, so a whole network can be stepped by iterating its layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    #[serde(skip)]
    gw: Vec<f64>,
    #[serde(skip)]
    gb: Vec<f64>,
    #[serde(skip)]
    mw: Vec<f64>,
    #[serde(skip)]
    vw: Vec<f64>,
    #[serde(skip)]
    mb: Vec<f64>,
    #[serde(skip)]
    vb: Vec<f64>,
}

impl Linear {
    /// Creates a layer with He-uniform initialization (suitable for ReLU
    /// and tanh hidden layers at these scales) and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be nonzero"
        );
        let bound = (6.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    /// Convenience constructor seeding its own RNG.
    pub fn with_seed(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(in_dim, out_dim, &mut rng)
    }

    /// Input dimension.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    #[inline]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Computes `W·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f64>();
        }
        y
    }

    /// Accumulates parameter gradients for one sample and returns the
    /// gradient with respect to the input.
    ///
    /// `x` must be the same input passed to the corresponding
    /// [`Self::forward`] call, and `grad_y` the gradient of the loss with
    /// respect to that call's output.
    pub fn backward(&mut self, x: &[f64], grad_y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim);
        assert_eq!(grad_y.len(), self.out_dim);
        let mut grad_x = vec![0.0; self.in_dim];
        for (o, &gy) in grad_y.iter().enumerate() {
            self.gb[o] += gy;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row_start + i] += gy * x[i];
                grad_x[i] += gy * self.w[row_start + i];
            }
        }
        grad_x
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Applies one Adam update with the currently accumulated gradients,
    /// scaled by `1/batch` (pass `batch = 1` for per-sample updates).
    pub fn adam_step(&mut self, adam: &Adam, batch: usize) {
        let scale = 1.0 / batch.max(1) as f64;
        adam.update(&mut self.w, &mut self.gw, &mut self.mw, &mut self.vw, scale);
        adam.update(&mut self.b, &mut self.gb, &mut self.mb, &mut self.vb, scale);
    }

    /// Soft-updates this layer's parameters toward `source`:
    /// `θ ← τ·θ_src + (1−τ)·θ`. Used for SAC target networks.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn soft_update_from(&mut self, source: &Linear, tau: f64) {
        assert_eq!(self.in_dim, source.in_dim);
        assert_eq!(self.out_dim, source.out_dim);
        for (t, &s) in self.w.iter_mut().zip(&source.w) {
            *t = tau * s + (1.0 - tau) * *t;
        }
        for (t, &s) in self.b.iter_mut().zip(&source.b) {
            *t = tau * s + (1.0 - tau) * *t;
        }
    }

    /// Ensures transient buffers (skipped by serde) match parameter
    /// shapes after deserialization.
    pub fn restore_buffers(&mut self) {
        let nw = self.in_dim * self.out_dim;
        for buf in [&mut self.gw, &mut self.mw, &mut self.vw] {
            buf.resize(nw, 0.0);
        }
        for buf in [&mut self.gb, &mut self.mb, &mut self.vb] {
            buf.resize(self.out_dim, 0.0);
        }
    }

    /// Immutable view of the weight matrix (row-major, `out×in`). For
    /// tests and diagnostics.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Immutable view of the bias vector.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }

    /// Overwrites every weight and bias with `v`. Fault-injection
    /// support: writing a non-finite value models a corrupted gradient
    /// round or a bad parameter load, the poison the health sentinel
    /// must detect and contain.
    pub fn fill_params(&mut self, v: f64) {
        self.w.fill(v);
        self.b.fill(v);
    }
}

/// Checkpoints the parameters *and* the Adam moments — a resumed update
/// with stale or zeroed moments would diverge from the uninterrupted
/// run on the very next optimizer step. Gradient accumulators are
/// transient (always zeroed before use) and are rebuilt as zeros.
impl mtat_snapshot::Snap for Linear {
    fn snap(&self, w: &mut mtat_snapshot::SnapWriter) {
        self.in_dim.snap(w);
        self.out_dim.snap(w);
        self.w.snap(w);
        self.b.snap(w);
        self.mw.snap(w);
        self.vw.snap(w);
        self.mb.snap(w);
        self.vb.snap(w);
    }

    fn unsnap(r: &mut mtat_snapshot::SnapReader<'_>) -> Result<Self, mtat_snapshot::SnapError> {
        use mtat_snapshot::SnapError;
        let in_dim = usize::unsnap(r)?;
        let out_dim = usize::unsnap(r)?;
        let w = Vec::<f64>::unsnap(r)?;
        let b = Vec::<f64>::unsnap(r)?;
        let mw = Vec::<f64>::unsnap(r)?;
        let vw = Vec::<f64>::unsnap(r)?;
        let mb = Vec::<f64>::unsnap(r)?;
        let vb = Vec::<f64>::unsnap(r)?;
        let nw = in_dim
            .checked_mul(out_dim)
            .ok_or(SnapError::Malformed("layer shape overflow"))?;
        if in_dim == 0
            || out_dim == 0
            || w.len() != nw
            || mw.len() != nw
            || vw.len() != nw
            || b.len() != out_dim
            || mb.len() != out_dim
            || vb.len() != out_dim
        {
            return Err(SnapError::Malformed("layer shape mismatch"));
        }
        Ok(Self {
            in_dim,
            out_dim,
            w,
            b,
            gw: vec![0.0; nw],
            gb: vec![0.0; out_dim],
            mw,
            vw,
            mb,
            vb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::with_seed(2, 2, 0);
        // Overwrite parameters with known values.
        l.w = vec![1.0, 2.0, 3.0, 4.0]; // rows: [1,2], [3,4]
        l.b = vec![0.5, -0.5];
        let y = l.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut l = Linear::with_seed(3, 2, 7);
        let x = [0.3, -0.8, 1.2];
        // Scalar loss: sum of outputs.
        let grad_y = [1.0, 1.0];
        l.zero_grad();
        let grad_x = l.backward(&x, &grad_y);

        let eps = 1e-6;
        // Check input gradient.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f64 = l.forward(&xp).iter().sum();
            let fm: f64 = l.forward(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad_x[i]).abs() < 1e-6, "input {i}");
        }
        // Check one weight gradient: dL/dw[0][1] = x[1].
        assert!((l.gw[1] - x[1]).abs() < 1e-12);
        // Bias gradient is 1 for each output.
        assert!((l.gb[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adam_step_reduces_simple_loss() {
        let mut l = Linear::with_seed(1, 1, 3);
        let adam = Adam::new(0.05);
        // Minimize (y - 2)^2 for input 1: w + b -> 2.
        for _ in 0..300 {
            let y = l.forward(&[1.0])[0];
            let g = 2.0 * (y - 2.0);
            l.zero_grad();
            l.backward(&[1.0], &[g]);
            l.adam_step(&adam, 1);
        }
        let y = l.forward(&[1.0])[0];
        assert!((y - 2.0).abs() < 0.05, "{y}");
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = Linear::with_seed(2, 2, 1);
        let b = Linear::with_seed(2, 2, 2);
        let before = a.w.clone();
        a.soft_update_from(&b, 0.5);
        for (i, &prev) in before.iter().enumerate() {
            let want = 0.5 * b.w[i] + 0.5 * prev;
            assert!((a.w[i] - want).abs() < 1e-12);
        }
        // tau = 1 copies the source exactly.
        a.soft_update_from(&b, 1.0);
        assert_eq!(a.w, b.w);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = Linear::with_seed(1, 1, 5);
        l.backward(&[1.0], &[1.0]);
        l.backward(&[1.0], &[1.0]);
        assert!((l.gb[0] - 2.0).abs() < 1e-12);
        l.zero_grad();
        assert_eq!(l.gb[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dim_panics() {
        let _ = Linear::with_seed(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_wrong_dim_panics() {
        let l = Linear::with_seed(2, 1, 0);
        let _ = l.forward(&[1.0]);
    }

    #[test]
    fn restore_buffers_resizes_transients() {
        let l = Linear::with_seed(4, 3, 9);
        let mut copy = l.clone();
        copy.gw.clear();
        copy.mb.clear();
        copy.restore_buffers();
        assert_eq!(copy.gw.len(), 12);
        assert_eq!(copy.mb.len(), 3);
    }
}
