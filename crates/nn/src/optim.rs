//! The Adam optimizer.

use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Adam optimizer state shared across a network's layers.
///
/// The time step `t` advances once per [`Adam::tick`] (one optimizer step
/// over the whole network), not per parameter tensor, so bias correction
/// is consistent across layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: Cell<u64>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: Cell::new(1),
        }
    }

    /// Advances the shared time step; call once after all layers of a
    /// network have been updated for the current optimizer step.
    pub fn tick(&self) {
        self.t.set(self.t.get() + 1);
    }

    /// Current time step (starts at 1).
    pub fn step_count(&self) -> u64 {
        self.t.get()
    }

    /// Restores the time step from a checkpoint. Bias correction uses
    /// `t` directly, so a resumed optimizer must continue from the exact
    /// step the snapshot captured to stay bit-identical.
    pub fn set_step_count(&self, t: u64) {
        self.t.set(t);
    }

    /// Applies one Adam update to `params` given accumulated `grads`
    /// (scaled by `grad_scale`, e.g. `1/batch`), maintaining first and
    /// second moments `m` and `v` in place.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if slice lengths differ.
    pub fn update(
        &self,
        params: &mut [f64],
        grads: &mut [f64],
        m: &mut [f64],
        v: &mut [f64],
        grad_scale: f64,
    ) {
        debug_assert_eq!(params.len(), grads.len());
        debug_assert_eq!(params.len(), m.len());
        debug_assert_eq!(params.len(), v.len());
        let t = self.t.get() as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for i in 0..params.len() {
            let g = grads[i] * grad_scale;
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

impl mtat_snapshot::Snap for Adam {
    fn snap(&self, w: &mut mtat_snapshot::SnapWriter) {
        w.put_f64(self.lr);
        w.put_f64(self.beta1);
        w.put_f64(self.beta2);
        w.put_f64(self.eps);
        w.put_u64(self.t.get());
    }

    fn unsnap(r: &mut mtat_snapshot::SnapReader<'_>) -> Result<Self, mtat_snapshot::SnapError> {
        Ok(Self {
            lr: r.get_f64()?,
            beta1: r.get_f64()?,
            beta2: r.get_f64()?,
            eps: r.get_f64()?,
            t: Cell::new(r.get_u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2.
        let adam = Adam::new(0.1);
        let mut x = vec![0.0];
        let mut m = vec![0.0];
        let mut v = vec![0.0];
        for _ in 0..500 {
            let mut g = vec![2.0 * (x[0] - 3.0)];
            adam.update(&mut x, &mut g, &mut m, &mut v, 1.0);
            adam.tick();
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "{}", x[0]);
    }

    #[test]
    fn grad_scale_divides() {
        let adam = Adam::new(0.1);
        let mut x1 = vec![0.0];
        let mut x2 = vec![0.0];
        let (mut m1, mut v1) = (vec![0.0], vec![0.0]);
        let (mut m2, mut v2) = (vec![0.0], vec![0.0]);
        // A gradient of 4 at scale 0.25 equals a gradient of 1 at scale 1.
        adam.update(&mut x1, &mut [4.0], &mut m1, &mut v1, 0.25);
        adam.update(&mut x2, &mut [1.0], &mut m2, &mut v2, 1.0);
        assert!((x1[0] - x2[0]).abs() < 1e-15);
    }

    #[test]
    fn tick_advances_step() {
        let adam = Adam::new(0.01);
        assert_eq!(adam.step_count(), 1);
        adam.tick();
        adam.tick();
        assert_eq!(adam.step_count(), 3);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_panics() {
        let _ = Adam::new(0.0);
    }
}
