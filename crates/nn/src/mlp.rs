//! Multi-layer perceptron with explicit forward caches.
//!
//! SAC needs three things from its networks beyond plain inference:
//! parameter gradients (critic regression), gradients *with respect to
//! inputs* (the actor update differentiates Q(s, a) with respect to a),
//! and soft target-network updates. [`Mlp`] provides all three.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::linear::Linear;
use crate::optim::Adam;

/// A feed-forward network: `Linear → act → … → Linear` with the hidden
/// activation applied between layers and an identity output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
}

/// Intermediate values saved by [`Mlp::forward_cached`], needed to run
/// [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input to each layer (`inputs[0]` is the network input).
    inputs: Vec<Vec<f64>>,
    /// Pre-activation output of each layer.
    pre_acts: Vec<Vec<f64>>,
}

impl Mlp {
    /// Builds an MLP with the given layer `dims` (at least input and
    /// output) and hidden activation, deterministically initialized from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` or any dimension is zero.
    pub fn new(dims: &[usize], hidden_act: Activation, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Self { layers, hidden_act }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("nonempty").in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// L2 norm of all parameters (weights and biases across layers).
    ///
    /// A cheap divergence diagnostic for telemetry: SAC training that
    /// is blowing up shows as an exploding parameter norm long before
    /// actions saturate, and a healthy run keeps it bounded.
    pub fn param_l2(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| {
                l.weights().iter().map(|w| w * w).sum::<f64>()
                    + l.biases().iter().map(|b| b * b).sum::<f64>()
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Overwrites every parameter in every layer with `v` (see
    /// [`Linear::fill_params`]). Fault-injection support.
    pub fn fill_params(&mut self, v: f64) {
        for layer in &mut self.layers {
            layer.fill_params(v);
        }
    }

    /// Inference-only forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&cur);
            cur = if i < last {
                self.hidden_act.forward(&pre)
            } else {
                pre
            };
        }
        cur
    }

    /// Forward pass that records the per-layer inputs and pre-activations
    /// needed by [`Self::backward`]. Returns `(output, cache)`.
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, ForwardCache) {
        let mut cache = ForwardCache {
            inputs: Vec::with_capacity(self.layers.len()),
            pre_acts: Vec::with_capacity(self.layers.len()),
        };
        let mut cur = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            cache.inputs.push(cur.clone());
            let pre = layer.forward(&cur);
            cache.pre_acts.push(pre.clone());
            cur = if i < last {
                self.hidden_act.forward(&pre)
            } else {
                pre
            };
        }
        (cur, cache)
    }

    /// Back-propagates `grad_out` through the cached forward pass,
    /// accumulating parameter gradients and returning the gradient with
    /// respect to the network input.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match this network's shape.
    pub fn backward(&mut self, cache: &ForwardCache, grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(
            cache.inputs.len(),
            self.layers.len(),
            "cache depth mismatch"
        );
        let last = self.layers.len() - 1;
        let mut grad = grad_out.to_vec();
        for i in (0..self.layers.len()).rev() {
            // Undo the hidden activation (output layer is identity).
            if i < last {
                grad = self.hidden_act.backward(&cache.pre_acts[i], &grad);
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    /// Zeroes all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Applies one Adam step to every layer (gradient scale 1) and
    /// advances the optimizer clock.
    pub fn adam_step(&mut self, adam: &mut Adam) {
        self.adam_step_batch(adam, 1);
    }

    /// Applies one Adam step with gradients averaged over `batch`
    /// samples, then advances the optimizer clock.
    pub fn adam_step_batch(&mut self, adam: &mut Adam, batch: usize) {
        for l in &mut self.layers {
            l.adam_step(adam, batch);
        }
        adam.tick();
    }

    /// Soft-updates all parameters toward `source`
    /// (`θ ← τ·θ_src + (1−τ)·θ`), the SAC target-network rule.
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), source.layers.len(), "depth mismatch");
        for (t, s) in self.layers.iter_mut().zip(&source.layers) {
            t.soft_update_from(s, tau);
        }
    }

    /// Re-creates transient buffers after deserialization.
    pub fn restore_buffers(&mut self) {
        for l in &mut self.layers {
            l.restore_buffers();
        }
    }
}

impl mtat_snapshot::Snap for Mlp {
    fn snap(&self, w: &mut mtat_snapshot::SnapWriter) {
        self.layers.snap(w);
        self.hidden_act.snap(w);
    }

    fn unsnap(r: &mut mtat_snapshot::SnapReader<'_>) -> Result<Self, mtat_snapshot::SnapError> {
        use mtat_snapshot::SnapError;
        let layers = Vec::<Linear>::unsnap(r)?;
        let hidden_act = Activation::unsnap(r)?;
        if layers.is_empty() {
            return Err(SnapError::Malformed("MLP with no layers"));
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(SnapError::Malformed("MLP layer dims do not chain"));
            }
        }
        Ok(Self { layers, hidden_act })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;

    #[test]
    fn shapes() {
        let net = Mlp::new(&[3, 8, 8, 2], Activation::Relu, 0);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(net.depth(), 3);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn forward_and_forward_cached_agree() {
        let net = Mlp::new(&[2, 5, 1], Activation::Tanh, 11);
        let x = [0.4, -0.9];
        let y1 = net.forward(&x);
        let (y2, _) = net.forward_cached(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn parameter_gradients_match_finite_difference() {
        // Scalar-output net; loss = output itself.
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, 3);
        let x = [0.7, -0.2];
        let (_, cache) = net.forward_cached(&x);
        net.zero_grad();
        let grad_in = net.backward(&cache, &[1.0]);

        // Finite-difference the *input* gradient.
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let numeric = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 1e-5,
                "input grad {i}: {numeric} vs {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn relu_network_input_gradient_check() {
        let mut net = Mlp::new(&[3, 6, 1], Activation::Relu, 17);
        let x = [0.5, 0.25, -0.75];
        let (_, cache) = net.forward_cached(&x);
        net.zero_grad();
        let grad_in = net.backward(&cache, &[1.0]);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let numeric = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * eps);
            assert!((numeric - grad_in[i]).abs() < 1e-5, "input grad {i}");
        }
    }

    #[test]
    fn learns_linear_function() {
        let mut net = Mlp::new(&[1, 16, 1], Activation::Relu, 42);
        let mut adam = Adam::new(1e-2);
        for step in 0..600 {
            let x = [((step % 10) as f64) / 10.0];
            let target = [2.0 * x[0] + 0.5];
            let (y, cache) = net.forward_cached(&x);
            let grad = loss::mse_grad(&y, &target);
            net.zero_grad();
            net.backward(&cache, &grad);
            net.adam_step(&mut adam);
        }
        for x in [0.15, 0.55, 0.85] {
            let y = net.forward(&[x])[0];
            assert!((y - (2.0 * x + 0.5)).abs() < 0.15, "f({x}) = {y}");
        }
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x^2 on [-1, 1] — requires the hidden layers to do real
        // work. Full-batch gradient accumulation keeps training stable.
        let mut net = Mlp::new(&[1, 32, 32, 1], Activation::Tanh, 5);
        let mut adam = Adam::new(1e-2);
        let xs: Vec<f64> = (0..41).map(|i| -1.0 + 2.0 * i as f64 / 40.0).collect();
        for _ in 0..800 {
            net.zero_grad();
            for &x in &xs {
                let (y, cache) = net.forward_cached(&[x]);
                let grad = loss::mse_grad(&y, &[x * x]);
                net.backward(&cache, &grad);
            }
            net.adam_step_batch(&mut adam, xs.len());
        }
        let mut worst: f64 = 0.0;
        for &x in &xs {
            worst = worst.max((net.forward(&[x])[0] - x * x).abs());
        }
        assert!(worst < 0.1, "worst error {worst}");
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut target = Mlp::new(&[2, 4, 1], Activation::Relu, 1);
        let source = Mlp::new(&[2, 4, 1], Activation::Relu, 2);
        for _ in 0..2000 {
            target.soft_update_from(&source, 0.01);
        }
        let x = [0.3, 0.3];
        assert!((target.forward(&x)[0] - source.forward(&x)[0]).abs() < 1e-3);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        let b = Mlp::new(&[2, 4, 1], Activation::Relu, 77);
        assert_eq!(a.forward(&[0.1, 0.9]), b.forward(&[0.1, 0.9]));
        let c = Mlp::new(&[2, 4, 1], Activation::Relu, 78);
        assert_ne!(a.forward(&[0.1, 0.9]), c.forward(&[0.1, 0.9]));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_dims_panics() {
        let _ = Mlp::new(&[3], Activation::Relu, 0);
    }

    #[test]
    fn snapshot_roundtrip_resumes_training_bit_identically() {
        use mtat_snapshot::{Snap, SnapReader, SnapWriter};

        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, 21);
        let mut adam = Adam::new(1e-2);
        let step = |net: &mut Mlp, adam: &mut Adam, x: f64| {
            let (y, cache) = net.forward_cached(&[x]);
            let grad = loss::mse_grad(&y, &[2.0 * x]);
            net.zero_grad();
            net.backward(&cache, &grad);
            net.adam_step(adam);
        };
        for i in 0..50 {
            step(&mut net, &mut adam, (i % 7) as f64 / 7.0);
        }

        let mut w = SnapWriter::new();
        net.snap(&mut w);
        adam.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut net2 = Mlp::unsnap(&mut r).unwrap();
        let mut adam2 = Adam::unsnap(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(adam2.step_count(), adam.step_count());

        // Training both copies further must stay bit-identical: the Adam
        // moments and step count travelled with the snapshot.
        for i in 0..50 {
            let x = (i % 7) as f64 / 7.0;
            step(&mut net, &mut adam, x);
            step(&mut net2, &mut adam2, x);
        }
        for (a, b) in net.layers.iter().zip(&net2.layers) {
            assert_eq!(a.weights(), b.weights());
            assert_eq!(a.biases(), b.biases());
        }
    }

    #[test]
    fn snapshot_rejects_malformed_shapes() {
        use mtat_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

        let net = Mlp::new(&[2, 3, 1], Activation::Relu, 4);
        let mut w = SnapWriter::new();
        net.snap(&mut w);
        let mut bytes = w.into_bytes();
        // The first field is the layer count; claim zero layers.
        bytes[0] = 0;
        let got = Mlp::unsnap(&mut SnapReader::new(&bytes[..9]));
        assert!(matches!(got, Err(SnapError::Malformed(_))));
    }
}
