//! # mtat-nn — a minimal dense neural-network library
//!
//! MTAT's Partition Policy Maker trains a Soft Actor-Critic agent whose
//! actor and critics are small multi-layer perceptrons (3-dimensional
//! state, 1-dimensional action). Rather than pulling in an ML framework,
//! this crate implements the required pieces from scratch:
//!
//! * [`linear::Linear`] — a fully-connected layer with gradient
//!   accumulation and per-parameter Adam moments.
//! * [`activation::Activation`] — ReLU / tanh / identity.
//! * [`mlp::Mlp`] — a feed-forward stack with explicit forward caches so
//!   gradients can flow back to the *inputs* (SAC's actor update needs
//!   ∂Q/∂action).
//! * [`optim::Adam`] — the Adam optimizer.
//! * [`loss`] — mean-squared error.
//!
//! Everything is `f64`, deterministic under a seeded RNG, and unit-tested
//! against finite-difference gradients.
//!
//! ## Example
//!
//! ```
//! use mtat_nn::mlp::Mlp;
//! use mtat_nn::activation::Activation;
//! use mtat_nn::optim::Adam;
//! use mtat_nn::loss;
//!
//! // Learn y = 2x on a tiny net.
//! let mut net = Mlp::new(&[1, 16, 1], Activation::Relu, 42);
//! let mut adam = Adam::new(1e-2);
//! for step in 0..400 {
//!     let x = [((step % 10) as f64) / 10.0];
//!     let target = [2.0 * x[0]];
//!     let (y, cache) = net.forward_cached(&x);
//!     let grad = loss::mse_grad(&y, &target);
//!     net.zero_grad();
//!     net.backward(&cache, &grad);
//!     net.adam_step(&mut adam);
//! }
//! let y = net.forward(&[0.35]);
//! assert!((y[0] - 0.7).abs() < 0.1, "got {}", y[0]);
//! ```

pub mod activation;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use linear::Linear;
pub use mlp::Mlp;
pub use optim::Adam;
