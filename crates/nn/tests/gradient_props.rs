//! Property-based gradient checks: for random network shapes, inputs,
//! and output gradients, analytic backprop must match central finite
//! differences — on parameters reachable through the input gradient and
//! on the input itself.

use proptest::prelude::*;

use mtat_nn::activation::Activation;
use mtat_nn::loss;
use mtat_nn::mlp::Mlp;
use mtat_nn::optim::Adam;

fn scalar_net(hidden: usize, act: Activation, seed: u64) -> Mlp {
    Mlp::new(&[3, hidden, 1], act, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Input gradients match finite differences for random nets/points.
    #[test]
    fn input_gradient_matches_finite_difference(
        hidden in 1usize..12,
        seed in 0u64..1000,
        x0 in -1.0f64..1.0,
        x1 in -1.0f64..1.0,
        x2 in -1.0f64..1.0,
        use_tanh in prop::bool::ANY,
    ) {
        let act = if use_tanh { Activation::Tanh } else { Activation::Relu };
        let mut net = scalar_net(hidden, act, seed);
        let x = [x0, x1, x2];
        let (_, cache) = net.forward_cached(&x);
        net.zero_grad();
        let grad = net.backward(&cache, &[1.0]);

        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let numeric = (net.forward(&xp)[0] - net.forward(&xm)[0]) / (2.0 * eps);
            // ReLU kinks can make the FD estimate locally wrong; allow a
            // loose bound for ReLU, tight for tanh.
            let tol: f64 = if use_tanh { 1e-5 } else { 1e-3 };
            prop_assert!(
                (numeric - grad[i]).abs() < tol.max(numeric.abs() * tol),
                "dim {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    /// MSE loss + gradient are consistent: a small step against the
    /// gradient reduces the loss.
    #[test]
    fn gradient_step_reduces_loss(
        seed in 0u64..1000,
        target in -2.0f64..2.0,
    ) {
        let mut net = scalar_net(8, Activation::Tanh, seed);
        let x = [0.3, -0.5, 0.9];
        let (y0, cache) = net.forward_cached(&x);
        let loss0 = loss::mse(&y0, &[target]);
        if loss0 < 1e-9 {
            return Ok(()); // already at the optimum
        }
        let grad = loss::mse_grad(&y0, &[target]);
        net.zero_grad();
        net.backward(&cache, &grad);
        let mut adam = Adam::new(1e-3);
        net.adam_step(&mut adam);
        let y1 = net.forward(&x);
        let loss1 = loss::mse(&y1, &[target]);
        prop_assert!(loss1 < loss0 + 1e-12, "{loss0} -> {loss1}");
    }

    /// Soft target updates converge to the source network: parameters
    /// contract geometrically, so after enough updates the outputs agree.
    /// (Mid-way the *output* gap of a nonlinear net may transiently grow,
    /// so the property is formulated in the limit.)
    #[test]
    fn soft_update_converges(seed_a in 0u64..500, seed_b in 500u64..1000, tau in 0.05f64..0.95) {
        let mut target = scalar_net(6, Activation::Relu, seed_a);
        let source = scalar_net(6, Activation::Relu, seed_b);
        let x = [0.2, 0.4, -0.3];
        for _ in 0..400 {
            target.soft_update_from(&source, tau);
        }
        let after = (target.forward(&x)[0] - source.forward(&x)[0]).abs();
        prop_assert!(after < 1e-6, "residual gap {after}");
    }

    /// Determinism: same seed, same outputs; forward has no hidden state.
    #[test]
    fn forward_is_pure(seed in 0u64..1000, x0 in -1.0f64..1.0) {
        let net = scalar_net(5, Activation::Tanh, seed);
        let a = net.forward(&[x0, 0.0, 0.0]);
        let b = net.forward(&[x0, 0.0, 0.0]);
        prop_assert_eq!(a, b);
    }
}
