//! End-to-end tests for the live telemetry plane wired through the
//! runner:
//!
//! * attaching the serving hub and the SLO burn-rate alert engine must
//!   not perturb the simulation — a served run is bit-identical with a
//!   blind one under the full MTAT policy;
//! * the hub actually receives what the endpoints would serve: interval
//!   metrics snapshots, `/status` documents, and the event tail;
//! * a `thrash_rotate` adversarial run under the hardened policy fires
//!   the fast-burn alert within two sim-minutes of the rotation onset
//!   and resolves after the thrash guard's migration quarantine
//!   engages;
//! * alert transitions — including their sim-time timestamps — replay
//!   bit-identically.

use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::MtatConfig;
use mtat_core::runner::Experiment;
use mtat_core::MtatPolicy;
use mtat_obs::alert::AlertRule;
use mtat_obs::serve::TelemetryHub;
use mtat_obs::Obs;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;
use mtat_workloads::scenario::{BeSelector, Mutator, ScenarioSpec};

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_bes() -> Vec<BeSpec> {
    let mut b1 = BeSpec::sssp();
    b1.rss_bytes = 2 * GIB;
    let mut b2 = BeSpec::pagerank();
    b2.rss_bytes = (1.5 * GIB as f64) as u64;
    vec![b1, b2]
}

/// The heuristic-sizer hardened arm (no pretraining, full guard +
/// supervisor stack) — the same shape the adversarial matrix runs.
fn hardened_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().with_heuristic_sizer().hardened();
    cfg.online_learning = false;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

/// Serving the live plane must be invisible to the physics: the same
/// experiment with the hub, the alert engine, and full telemetry
/// attached is bit-identical with a blind run under the full MTAT
/// policy — while the hub actually receives the snapshots the HTTP
/// endpoints would serve.
#[test]
fn serve_on_and_off_are_bit_identical() {
    let load = LoadPattern::staircase(&[0.4, 0.9, 0.5], 15.0);
    let experiment = |load: LoadPattern| {
        Experiment::new(SimConfig::small_test(), small_lc(), load, small_bes()).with_duration(45.0)
    };
    let hub = TelemetryHub::new();
    let served = experiment(load.clone())
        .with_obs(Obs::enabled())
        .with_hub(hub.clone())
        .with_alerts(AlertRule::default_rules(0.01));
    let blind = experiment(load);

    let mk = |exp: &Experiment| MtatPolicy::new(MtatConfig::full(), &exp.cfg, &exp.lc, &exp.bes);
    let r_on = served.run(&mut mk(&served));
    let r_off = blind.run(&mut mk(&blind));

    assert_eq!(r_on.ticks.len(), r_off.ticks.len());
    for (a, b) in r_on.ticks.iter().zip(&r_off.ticks) {
        assert_eq!(a.lc_p99.to_bits(), b.lc_p99.to_bits(), "t={}", a.t);
        assert_eq!(
            a.migration_bw.to_bits(),
            b.migration_bw.to_bits(),
            "t={}",
            a.t
        );
        assert_eq!(a.fmem_bytes, b.fmem_bytes, "t={}", a.t);
        assert_eq!(a, b, "tick records diverge at t={}", a.t);
    }

    // ...and the hub holds what /metrics, /status, and /events serve.
    let prom = hub.metrics().expect("interval snapshots published");
    assert!(
        prom.contains("mtat_runner_ticks_total"),
        "metrics snapshot missing tick counter:\n{prom}"
    );
    let status = hub.status().expect("status published");
    assert!(
        status.contains("\"policy\"") && status.contains("\"progress\""),
        "status document malformed: {status}"
    );
    assert!(hub.last_seq() > 0, "event tail must receive plan events");
}

/// The `thrash_rotate` scenario from the adversarial registry, rebased
/// to rotate from t=30 s: the BE hot sets rotate faster than pages can
/// be promoted, so a reactive policy chases them with futile migration
/// churn that — under the constrained bandwidth model — steals demand
/// bandwidth from the LC and burns the SLO budget.
fn thrash_scenario() -> ScenarioSpec {
    ScenarioSpec {
        name: "thrash_rotate",
        seed: 0x7A5B_0001,
        mutators: vec![Mutator::HotSetRotate {
            be: BeSelector::All,
            start_secs: 30.0,
            period_secs: 1.5,
            stride_frac: 0.37,
            jitter_frac: 0.1,
        }],
    }
}

/// Fast-burn rule compressed for a 4-minute run: 20 s / 60 s windows
/// at 3× a 1 % budget, 5 s pending dwell, 30 s clear dwell.
fn test_rule() -> AlertRule {
    AlertRule {
        name: "slo_fast_burn".to_string(),
        budget: 0.01,
        factor: 3.0,
        fast_secs: 20.0,
        slow_secs: 60.0,
        pending_secs: 5.0,
        clear_secs: 30.0,
        resolve_ratio: 1.0,
    }
}

fn thrash_experiment() -> Experiment {
    // The chaos-matrix adversarial cell shape: paper-scale capacities
    // under the §7 constrained bandwidth model, where the rotation's
    // futile migration churn competes with demand traffic for the same
    // channels and actually burns the SLO budget.
    Experiment::new(
        SimConfig::paper().with_constrained_bandwidth(),
        LcSpec::redis(),
        LoadPattern::Steps(vec![(100.0, 0.45), (60.0, 0.9), (80.0, 0.45)]),
        BeSpec::all_paper_workloads(),
    )
    .with_duration(240.0)
    .with_scenario(thrash_scenario())
}

/// Sim times of every hub event line matching `needle` (the event
/// tail renders `#seq t=  NNN.NNNs SEV component.name k=v ...`).
fn event_times(hub: &TelemetryHub, needle: &str) -> Vec<f64> {
    hub.events_after(0, usize::MAX)
        .into_iter()
        .filter(|(_, l)| l.contains(needle))
        .filter_map(|(_, l)| {
            let rest = l.split("t=").nth(1)?;
            rest.split('s').next()?.trim().parse().ok()
        })
        .collect()
}

/// The alerting contract on a thrashing run: the fast-burn alert fires
/// within two sim-minutes of the rotation onset (the surge collides
/// with the rotation churn and burns the budget), the thrash guard's
/// migration quarantine engages against the rotation, and the alert
/// resolves after the quarantine is in force.
#[test]
fn thrash_rotate_fires_fast_burn_and_resolves_after_quarantine() {
    let hub = TelemetryHub::new();
    let exp = thrash_experiment()
        .with_obs(Obs::enabled())
        .with_hub(hub.clone())
        .with_alerts(vec![test_rule()]);
    let r = exp.run(&mut hardened_policy(&exp));

    let fired = r
        .alerts
        .iter()
        .find(|a| a.to == "firing")
        .unwrap_or_else(|| panic!("fast-burn alert never fired: {:?}", r.alerts));
    assert!(
        fired.at_secs >= 30.0 && fired.at_secs <= 150.0,
        "alert must fire within two sim-minutes of the 30 s rotation onset, fired at {}",
        fired.at_secs
    );
    assert!(
        fired.fast_burn >= 3.0 && fired.slow_burn >= 3.0,
        "both windows must exceed the factor at the firing edge: {fired:?}"
    );

    // The guard must quarantine the rotation itself, not just the
    // warm-up transient: at least one quarantine entry at/after the
    // 30 s onset, and the alert resolves only once it is in force.
    let quarantined_at = event_times(&hub, "kind=quarantine_entered")
        .into_iter()
        .find(|&t| t >= 30.0)
        .expect("the thrash guard must quarantine the rotation churn");
    let resolved = r
        .alerts
        .iter()
        .find(|a| a.from == "firing" && a.to == "inactive")
        .unwrap_or_else(|| panic!("alert never resolved: {:?}", r.alerts));
    assert!(
        resolved.at_secs > quarantined_at,
        "resolution ({}) must follow the quarantine ({quarantined_at})",
        resolved.at_secs
    );

    // The firing alert reached the event tail and the flight recorder
    // path: the runner logs every transition as an `alert` event.
    assert!(
        !event_times(&hub, "alert.transition").is_empty(),
        "alert transitions must land in the event stream"
    );
}

/// Alert transitions are part of the deterministic replay: a second
/// run of the identical experiment produces the identical transition
/// log — same rules, same states, same sim-time timestamps, same burn
/// rates.
#[test]
fn alert_transitions_replay_bit_identically() {
    let run = |obs: Obs| {
        let exp = thrash_experiment()
            .with_obs(obs)
            .with_alerts(vec![test_rule()]);
        exp.run(&mut hardened_policy(&exp))
    };
    let a = run(Obs::enabled());
    let b = run(Obs::disabled());
    assert!(
        !a.alerts.is_empty(),
        "the thrashing run must produce transitions"
    );
    assert_eq!(
        a.alerts, b.alerts,
        "alert logs diverge between replays (telemetry on vs off)"
    );
    assert_eq!(a.digest(), b.digest(), "physics diverged between replays");
}
