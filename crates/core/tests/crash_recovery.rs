//! Crash-tolerance integration tests for the PP-M checkpoint/restore
//! subsystem (the paper's user-space daemon / in-kernel enforcer split):
//!
//! * a checkpoint taken at a decision boundary and restored in place
//!   continues **bit-identically** with the uninterrupted run;
//! * a `PpmCrash` fault freezes control while PP-E keeps enforcing the
//!   last plan, and the restarted controller resumes from the latest
//!   valid checkpoint;
//! * on-disk generation fallback survives a corrupted newest file;
//! * the runtime invariant auditor turns deliberately broken accounting
//!   into a structured [`TierMemError::Audit`];
//! * the committed format-v1 fixture stays decodable, and corrupting
//!   any single byte of a sealed checkpoint is always detected.

use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::policy::statics::StaticPolicy;
use mtat_core::policy::{Policy, SimState, WorkloadObs};
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_snapshot::{seal, unseal, CheckpointStore};
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::Tier;
use mtat_tiermem::{AuditViolation, TierMemError, GIB};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_be() -> BeSpec {
    let mut s = BeSpec::sssp();
    s.rss_bytes = 2 * GIB;
    s
}

fn experiment(load: LoadPattern, secs: f64) -> Experiment {
    Experiment::new(SimConfig::small_test(), small_lc(), load, vec![small_be()]).with_duration(secs)
}

/// The full RL policy under supervision with online learning — the
/// checkpoint has to capture live SAC weights, the replay buffer, RNG
/// streams, supervisor streaks, and per-interval accumulators for the
/// bit-identity assertions below to hold.
fn rl_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().supervised();
    cfg.pretrain_steps = 400; // enough for real weights, cached per key
    cfg.online_learning = true;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

/// Heuristic-sizer variant used by the committed format fixture: no
/// network weights, so the fixture stays small and fully deterministic.
fn fixture_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().with_heuristic_sizer().supervised();
    cfg.online_learning = false;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

fn assert_ticks_bit_identical(a: &mtat_core::RunResult, b: &mtat_core::RunResult) {
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(x.lc_p99.to_bits(), y.lc_p99.to_bits(), "p99 at t={}", x.t);
        assert_eq!(
            x.lc_fmem_ratio.to_bits(),
            y.lc_fmem_ratio.to_bits(),
            "fmem ratio at t={}",
            x.t
        );
        assert_eq!(x.fmem_bytes, y.fmem_bytes, "placement at t={}", x.t);
        assert_eq!(x, y, "tick records diverge at t={}", x.t);
    }
}

/// Tentpole regression: checkpoint-at-boundary + restore-in-place must
/// continue exactly as if nothing happened. The probed run captures a
/// checkpoint at the first interval boundary at/after t=20, crashes the
/// controller, restores from that checkpoint, and keeps going; every
/// tick must match the unprobed run bit-for-bit.
#[test]
fn restart_probe_resumes_bit_identically() {
    let load = LoadPattern::staircase(&[0.4, 0.9, 0.5], 15.0);
    let base = experiment(load, 45.0);
    let probed = base
        .clone()
        .with_checkpoints(CheckpointCfg::in_memory().with_restart_probe(20.0));

    let r_base = base.run(&mut rl_policy(&base));
    let r_probe = probed.run(&mut rl_policy(&probed));

    assert_ticks_bit_identical(&r_base, &r_probe);
    assert_eq!(r_base.total_migration_bytes, r_probe.total_migration_bytes);
    assert_eq!(
        r_base.lc_violated_requests.to_bits(),
        r_probe.lc_violated_requests.to_bits()
    );
}

/// A `PpmCrash` outage: before the window the faulted run matches the
/// clean one bit-for-bit; during the window PP-E keeps enforcing the
/// last plan (the placement stays put, degradation state keeps being
/// reported); after the window the controller restores from the latest
/// checkpoint — which produces a different (informed) trajectory than a
/// cold restart from an untrained agent.
#[test]
fn ppm_crash_enforces_last_plan_then_restores() {
    let load = LoadPattern::Constant(0.5);
    let plan = FaultPlan::new(0xC4A5).with(FaultKind::PpmCrash, 20.0, 15.0);
    let clean = experiment(load, 60.0);
    let checkpointed = clean
        .clone()
        .with_fault_plan(plan.clone())
        .with_checkpoints(CheckpointCfg::in_memory());
    let cold = clean.clone().with_fault_plan(plan);

    let r_clean = clean.run(&mut rl_policy(&clean));
    let r_ckpt = checkpointed.run(&mut rl_policy(&checkpointed));
    let r_cold = cold.run(&mut rl_policy(&cold));

    assert_eq!(r_ckpt.ticks.len(), 60);

    // Identical up to the crash: an inactive fault window perturbs
    // nothing.
    for (a, b) in r_clean.ticks.iter().zip(&r_ckpt.ticks).take(20) {
        assert_eq!(a.lc_p99.to_bits(), b.lc_p99.to_bits(), "t={}", a.t);
        assert_eq!(a.fmem_bytes, b.fmem_bytes, "t={}", a.t);
    }

    // During the outage the daemon is dead but enforcement is not: the
    // last plan stays in force, so once PP-E has converged the placement
    // holds steady, and the (frozen) supervisor state is still reported.
    let outage: Vec<_> = r_ckpt
        .ticks
        .iter()
        .filter(|t| t.t >= 28.0 && t.t < 35.0)
        .collect();
    assert!(!outage.is_empty());
    for t in &outage {
        assert_eq!(
            t.fmem_bytes, outage[0].fmem_bytes,
            "placement must hold under the frozen plan at t={}",
            t.t
        );
        assert!(t.degradation.is_some(), "supervised state still reported");
    }

    // Restoring the checkpoint actually matters: the restored run and
    // the cold-restart run diverge after recovery (an untrained fresh
    // agent does not reproduce the learned controller's trajectory).
    let diverged = r_ckpt
        .ticks
        .iter()
        .zip(&r_cold.ticks)
        .filter(|(a, _)| a.t >= 36.0)
        .any(|(a, b)| a.fmem_bytes != b.fmem_bytes || a.lc_p99.to_bits() != b.lc_p99.to_bits());
    assert!(
        diverged,
        "checkpoint restore must differ from a cold restart"
    );
}

/// On-disk generation fallback, end to end: corrupt the newest
/// generation file and the store (and a crashed-then-restarted run)
/// falls back to the previous valid generation instead of silently
/// loading garbage or giving up.
#[test]
fn disk_checkpoints_fall_back_past_corruption() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("ckpt_fallback");
    let _ = std::fs::remove_dir_all(&dir);

    // Stage 1: a clean run leaves several sealed generations on disk.
    let exp =
        experiment(LoadPattern::Constant(0.5), 30.0).with_checkpoints(CheckpointCfg::on_disk(&dir));
    exp.run(&mut rl_policy(&exp));

    let store = CheckpointStore::open(&dir, 3).expect("store opens");
    let gens = store.generations().expect("list generations");
    assert!(gens.len() >= 2, "want multiple generations, got {gens:?}");
    let newest_payload = store
        .load_latest()
        .expect("dir readable")
        .expect("valid checkpoint");

    // Corrupt one payload byte of the newest generation (oldest-first
    // ordering, so the newest is last).
    let newest = gens.last().expect("nonempty").clone();
    let mut bytes = std::fs::read(&newest).expect("read newest");
    *bytes.last_mut().expect("nonempty file") ^= 0xFF;
    std::fs::write(&newest, &bytes).expect("write corruption");

    // The store detects the corruption and serves the older generation.
    let fallback = store
        .load_latest()
        .expect("dir readable")
        .expect("older generation survives");
    assert_ne!(
        fallback, newest_payload,
        "fallback must be a different (older) generation"
    );

    // And a restarted controller accepts the fallback payload.
    let mut restarted = rl_policy(&exp);
    restarted
        .decode_checkpoint(&fallback)
        .expect("fallback generation decodes");

    // Stage 2, end to end: a run whose controller is down from t=0
    // restarts at t=10 against the corrupted store and must complete,
    // recovering through the fallback generation.
    let plan = FaultPlan::new(0xFA11).with(FaultKind::PpmCrash, 0.0, 10.0);
    let exp2 = experiment(LoadPattern::Constant(0.5), 25.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::on_disk(&dir));
    let r = exp2.run(&mut rl_policy(&exp2));
    assert_eq!(r.ticks.len(), 25);
}

/// A policy that silently breaks the page-table accounting mid-run, to
/// prove the auditor catches it as a structured error.
struct CorruptingPolicy {
    inner: StaticPolicy,
    corrupt_at_tick: u64,
    tick: u64,
}

impl Policy for CorruptingPolicy {
    fn name(&self) -> &str {
        "corruptor"
    }
    fn init(&mut self, mem: &TieredMemory, workloads: &[WorkloadObs]) {
        self.inner.init(mem, workloads);
    }
    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        self.inner.on_tick(sim);
        if self.tick == self.corrupt_at_tick {
            sim.mem.debug_corrupt_tier_counter(Tier::FMem, 1);
        }
        self.tick += 1;
    }
}

#[test]
fn auditor_catches_broken_accounting() {
    if !mtat_tiermem::audit_enabled() {
        // Release build without MTAT_AUDIT: the auditor is opted out.
        // CI runs the whole suite once with MTAT_AUDIT=1 to cover this
        // path in release mode too.
        return;
    }
    let exp = experiment(LoadPattern::Constant(0.4), 20.0);
    let mut p = CorruptingPolicy {
        inner: StaticPolicy::fmem_all(),
        corrupt_at_tick: 7,
        tick: 0,
    };
    let err = exp.try_run(&mut p).expect_err("auditor must trip");
    assert!(
        matches!(
            err,
            TierMemError::Audit(AuditViolation::TierCount {
                tier: Tier::FMem,
                ..
            })
        ),
        "unexpected error: {err}"
    );

    // The same run without the corruption passes the auditor.
    let mut clean = CorruptingPolicy {
        inner: StaticPolicy::fmem_all(),
        corrupt_at_tick: u64::MAX,
        tick: 0,
    };
    exp.try_run(&mut clean).expect("clean run passes the audit");
}

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/ckpt_v1.bin");

/// Format-compatibility guard: the committed v1 fixture must keep
/// unsealing (magic, version, checksum) and decoding into a freshly
/// constructed policy of the same shape. An incompatible codec change
/// without a format-version bump fails here.
#[test]
fn format_v1_fixture_still_decodes() {
    let sealed = std::fs::read(FIXTURE).expect("committed fixture present");
    let payload = unseal(&sealed).expect("v1 envelope verifies").to_vec();
    let exp = experiment(LoadPattern::Constant(0.5), 30.0);
    let mut p = fixture_policy(&exp);
    p.decode_checkpoint(&payload)
        .expect("v1 payload decodes into a same-shape policy");

    // Single-byte damage anywhere in the envelope is detected.
    let mut broken = sealed.clone();
    broken[sealed.len() / 2] ^= 0x01;
    assert!(unseal(&broken).is_err(), "corruption must not unseal");
}

/// Regenerates the committed fixture. Run manually after a deliberate,
/// version-bumped format change:
/// `cargo test -p mtat-core --test crash_recovery -- --ignored`
#[test]
#[ignore = "writes tests/fixtures/ckpt_v1.bin; run only to regenerate"]
fn regenerate_format_v1_fixture() {
    let exp = experiment(LoadPattern::Constant(0.5), 30.0);
    let mut p = fixture_policy(&exp);
    exp.run(&mut p);
    let payload = p.checkpoint().expect("mtat policies checkpoint");
    let path = std::path::Path::new(FIXTURE);
    std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
    std::fs::write(path, seal(&payload)).expect("write fixture");
}

mod corruption_props {
    use super::{seal, unseal};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any single corrupted byte of a sealed checkpoint is detected
        /// — FNV-1a's per-byte step is a bijection, so a flipped byte
        /// always changes the digest (or breaks the header outright).
        #[test]
        fn corrupting_any_byte_is_detected(
            payload in prop::collection::vec(0u64..256, 0..512),
            pos in 0.0f64..1.0,
            flip in 1u64..256,
        ) {
            let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
            let mut sealed = seal(&payload);
            let i = ((pos * sealed.len() as f64) as usize).min(sealed.len() - 1);
            sealed[i] ^= flip as u8;
            prop_assert!(unseal(&sealed).is_err(), "byte {i} flipped by {flip:#04x}");
        }

        /// Truncated checkpoints never unseal.
        #[test]
        fn truncation_is_detected(
            payload in prop::collection::vec(0u64..256, 0..256),
            cut in 0.0f64..1.0,
        ) {
            let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
            let sealed = seal(&payload);
            let keep = ((cut * sealed.len() as f64) as usize).min(sealed.len() - 1);
            prop_assert!(unseal(&sealed[..keep]).is_err(), "kept {keep} of {}", sealed.len());
        }
    }
}
