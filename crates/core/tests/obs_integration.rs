//! End-to-end tests for the observability subsystem wired through the
//! runner:
//!
//! * registry aggregates (tick counters, the P99 latency histogram)
//!   must agree with the run's own [`mtat_core::RunResult`] record;
//! * enabling observability must not perturb the simulation — runs
//!   with telemetry on and off are bit-identical;
//! * a forced plan-conservation audit violation must leave a flight
//!   recorder dump whose tail contains the offending plan events;
//! * a `PpmCrash`/restore cycle must surface checkpoint save/restore
//!   latencies and crash/restart events.

use mtat_core::config::SimConfig;
use mtat_core::policy::statics::StaticPolicy;
use mtat_core::policy::{Policy, SimState, WorkloadObs};
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_obs::Obs;
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::WorkloadId;
use mtat_tiermem::{AuditViolation, TierMemError, GIB};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_be() -> BeSpec {
    let mut s = BeSpec::sssp();
    s.rss_bytes = 2 * GIB;
    s
}

fn experiment(load: LoadPattern, secs: f64) -> Experiment {
    Experiment::new(SimConfig::small_test(), small_lc(), load, vec![small_be()]).with_duration(secs)
}

/// Exact nearest-rank percentile over raw samples, the oracle the
/// histogram approximates.
fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let n = samples.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    samples[rank - 1]
}

/// The registry's view of the run must match the run's own aggregate
/// record: one `runner.ticks` count per tick, one `runner.slo_violations`
/// per violating tick, and a P99-latency histogram whose p99 sits within
/// the configured relative-error bound of the exact nearest-rank p99
/// over the per-tick values.
#[test]
fn registry_matches_run_aggregates() {
    let obs = Obs::enabled();
    let exp = experiment(LoadPattern::fig7(), 120.0).with_obs(obs.clone());
    let r = exp.run(&mut StaticPolicy::fmem_all());

    assert_eq!(
        obs.counter_value("runner.ticks"),
        Some(r.ticks.len() as u64)
    );
    let violations = r.ticks.iter().filter(|t| t.lc_violated).count() as u64;
    assert_eq!(
        obs.counter_value("runner.slo_violations").unwrap_or(0),
        violations
    );

    let mut ns: Vec<u64> = r
        .ticks
        .iter()
        .map(|t| (t.lc_p99 * 1e9).round() as u64)
        .collect();
    let exact = exact_percentile(&mut ns, 99.0);
    let (approx, bound) = obs
        .with_registry(|reg| {
            let h = reg.histogram("runner.lc_p99_ns").expect("histogram exists");
            assert_eq!(h.count(), r.ticks.len() as u64);
            (h.p99(), h.relative_error_bound())
        })
        .expect("enabled handle");
    let err = (approx as f64 - exact as f64).abs() / exact.max(1) as f64;
    assert!(
        err <= bound,
        "histogram p99 {approx} vs exact {exact}: err {err} > bound {bound}"
    );
}

/// Telemetry must be invisible to the physics: the same experiment with
/// observability enabled and disabled produces bit-identical ticks.
#[test]
fn obs_on_and_off_are_bit_identical() {
    let load = LoadPattern::staircase(&[0.4, 0.9, 0.5], 15.0);
    let on = experiment(load.clone(), 45.0).with_obs(Obs::enabled());
    let off = experiment(load, 45.0).with_obs(Obs::disabled());

    let r_on = on.run(&mut StaticPolicy::fmem_all());
    let r_off = off.run(&mut StaticPolicy::fmem_all());

    assert_eq!(r_on.ticks.len(), r_off.ticks.len());
    for (a, b) in r_on.ticks.iter().zip(&r_off.ticks) {
        assert_eq!(a.lc_p99.to_bits(), b.lc_p99.to_bits(), "t={}", a.t);
        assert_eq!(a.fmem_bytes, b.fmem_bytes, "t={}", a.t);
        assert_eq!(a, b, "tick records diverge at t={}", a.t);
    }
}

/// Span tracing and decision provenance must be exactly as invisible as
/// plain metrics: a run with the full tracing handle attached is
/// bit-identical — compared on the `f64` bit pattern — with a disabled
/// run, under the full MTAT policy where every span and provenance hook
/// fires (tick, sample, track, ppm-plan, sac-forward, anneal,
/// ppe-enforce, migrate).
#[test]
fn tracing_on_and_off_are_bit_identical() {
    let load = LoadPattern::staircase(&[0.4, 0.9, 0.5], 15.0);
    let traced = Obs::traced();
    let on = experiment(load.clone(), 45.0).with_obs(traced.clone());
    let off = experiment(load, 45.0).with_obs(Obs::disabled());

    let mk = |exp: &Experiment| {
        mtat_core::policy::mtat::MtatPolicy::new(
            mtat_core::policy::mtat::MtatConfig::full(),
            &exp.cfg,
            &exp.lc,
            &exp.bes,
        )
    };
    let r_on = on.run(&mut mk(&on));
    let r_off = off.run(&mut mk(&off));

    assert_eq!(r_on.ticks.len(), r_off.ticks.len());
    for (a, b) in r_on.ticks.iter().zip(&r_off.ticks) {
        assert_eq!(a.lc_p99.to_bits(), b.lc_p99.to_bits(), "t={}", a.t);
        assert_eq!(
            a.lc_load_rps.to_bits(),
            b.lc_load_rps.to_bits(),
            "t={}",
            a.t
        );
        assert_eq!(
            a.migration_bw.to_bits(),
            b.migration_bw.to_bits(),
            "t={}",
            a.t
        );
        assert_eq!(
            a.fmem_bw_util.to_bits(),
            b.fmem_bw_util.to_bits(),
            "t={}",
            a.t
        );
        assert_eq!(a.fmem_bytes, b.fmem_bytes, "t={}", a.t);
        assert_eq!(a, b, "tick records diverge at t={}", a.t);
    }

    // ...while the traced handle actually collected the full taxonomy:
    // one tick span per tick, nested phase spans, and a provenance
    // record per decision boundary with a finalized enforcement outcome.
    traced
        .with_tracer(|t| {
            let spans = t.spans();
            assert_eq!(t.dropped(), 0, "short run must not hit the span cap");
            let count = |n: &str| spans.iter().filter(|s| s.name == n).count();
            assert_eq!(count("run"), 1);
            assert_eq!(count("tick"), r_on.ticks.len());
            for name in ["sample", "track", "ppm-plan", "ppe-enforce", "migrate"] {
                assert!(count(name) > 0, "missing {name} spans");
            }
            // The full config starts in RL mode with the RL sizer, so
            // the SAC forward pass is traced inside ppm-plan.
            assert!(count("sac-forward") > 0, "missing sac-forward spans");
            // Every non-root span's parent exists and started no later.
            for s in spans {
                let Some(pid) = s.parent else { continue };
                let p = spans
                    .iter()
                    .find(|c| c.id == pid)
                    .unwrap_or_else(|| panic!("span {} has dangling parent {pid}", s.id));
                assert!(p.start_ns <= s.start_ns, "parent starts after child");
            }
        })
        .expect("traced handle has a tracer");

    let jsonl = traced.provenance_jsonl().expect("traced handle has a book");
    let records: Vec<&str> = jsonl.lines().collect();
    assert!(
        !records.is_empty(),
        "decision boundaries must leave records"
    );
    let finalized = records
        .iter()
        .filter(|l| l.contains("\"enforce\":{"))
        .count();
    // Every record except the last-opened one is finalized by the next
    // boundary.
    assert!(
        finalized >= records.len() - 1,
        "unfinalized provenance: {finalized}/{}",
        records.len()
    );
    for l in &records {
        assert!(l.contains("\"mode\":"), "mode missing: {l}");
        assert!(l.contains("\"inputs\":{"), "inputs missing: {l}");
        assert!(l.contains("\"plan\":{"), "plan missing: {l}");
    }
}

/// The sustained-SLO-violation trigger dumps the flight recorder once
/// per streak: an overloaded run trips it exactly once, and a run that
/// never violates long enough leaves the recorder untouched.
#[test]
fn slo_streak_dump_fires_once_per_streak() {
    let obs = Obs::enabled();
    let exp = experiment(LoadPattern::Constant(1.5), 30.0)
        .with_obs(obs.clone())
        .with_slo_streak_dump(5);
    exp.run(&mut StaticPolicy::fmem_all());

    assert_eq!(obs.counter_value("runner.slo_streak_dumps"), Some(1));
    let dump = obs.last_dump().expect("streak must dump the recorder");
    assert!(
        dump.contains("slo violation streak"),
        "dump reason missing: {dump}"
    );
    assert!(
        dump.contains("runner.slo_streak"),
        "streak event missing: {dump}"
    );

    // Well under the knee: no violations, no dump.
    let calm = Obs::enabled();
    let exp = experiment(LoadPattern::Constant(0.3), 30.0)
        .with_obs(calm.clone())
        .with_slo_streak_dump(5);
    exp.run(&mut StaticPolicy::fmem_all());
    assert_eq!(
        calm.counter_value("runner.slo_streak_dumps").unwrap_or(0),
        0
    );
    assert!(calm.last_dump().is_none());
}

/// A policy that reports honest targets until `rogue_after_ticks`, then
/// claims more FMem than exists — tripping the plan-conservation audit.
struct RoguePolicy {
    inner: StaticPolicy,
    tick: u64,
    rogue_after_ticks: u64,
}

impl Policy for RoguePolicy {
    fn name(&self) -> &str {
        "rogue"
    }
    fn init(&mut self, mem: &TieredMemory, workloads: &[WorkloadObs]) {
        self.inner.init(mem, workloads);
    }
    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        self.inner.on_tick(sim);
        self.tick += 1;
    }
    fn fmem_target(&self, _w: WorkloadId) -> Option<u64> {
        if self.tick >= self.rogue_after_ticks {
            // Every workload claims all of FMem — over-committed.
            Some(u64::MAX)
        } else {
            Some(0)
        }
    }
}

/// A forced `PlanExceedsFmem` violation must abort the run with the
/// structured error *and* leave a flight-recorder dump whose retained
/// events include the plans leading up to the violation.
#[test]
fn audit_violation_dumps_flight_recorder() {
    if !mtat_tiermem::audit_enabled() {
        // The auditor is compiled out of release runs unless MTAT_AUDIT
        // is set; CI covers this path with MTAT_AUDIT=1.
        return;
    }
    let obs = Obs::enabled();
    let exp = experiment(LoadPattern::Constant(0.4), 30.0).with_obs(obs.clone());
    let mut p = RoguePolicy {
        inner: StaticPolicy::fmem_all(),
        tick: 0,
        rogue_after_ticks: 12,
    };
    let err = exp.try_run(&mut p).expect_err("auditor must trip");
    assert!(
        matches!(
            err,
            TierMemError::Audit(AuditViolation::PlanExceedsFmem { .. })
        ),
        "unexpected error: {err}"
    );

    let dump = obs.last_dump().expect("violation must dump the recorder");
    assert!(
        dump.contains("audit violation"),
        "dump reason missing: {dump}"
    );
    assert!(
        dump.contains("runner.audit_violation"),
        "violation event missing: {dump}"
    );
    // The honest plans from earlier interval boundaries precede it.
    assert!(dump.contains("runner.plan"), "plan events missing: {dump}");
    assert!(
        dump.contains("runner.run_start"),
        "run_start event missing: {dump}"
    );
    assert_eq!(obs.counter_value("obs.flight_dumps"), Some(1));
}

/// A crash/restore cycle surfaces checkpoint telemetry: save latencies
/// while the controller is healthy, a restore latency plus crash and
/// restart events around the outage.
#[test]
fn crash_restore_cycle_records_checkpoint_metrics() {
    let obs = Obs::enabled();
    let plan = FaultPlan::new(0xC4A5).with(FaultKind::PpmCrash, 20.0, 15.0);
    let exp = experiment(LoadPattern::Constant(0.5), 60.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_obs(obs.clone());

    // The static policy has no checkpoint payload, so use MTAT's
    // heuristic variant (cheap, deterministic, checkpointable).
    let mut cfg = mtat_core::policy::mtat::MtatConfig::full().with_heuristic_sizer();
    cfg.online_learning = false;
    let mut policy = mtat_core::policy::mtat::MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes);
    let r = exp.run(&mut policy);
    assert_eq!(r.ticks.len(), 60);

    assert_eq!(obs.counter_value("runner.ppm_crashes"), Some(1));
    assert_eq!(obs.counter_value("runner.ppm_restarts"), Some(1));
    let saves = obs.counter_value("ckpt.saves").expect("saves recorded");
    assert!(saves > 0, "healthy intervals must checkpoint");
    obs.with_registry(|reg| {
        assert_eq!(
            reg.histogram("ckpt.save_ns").map(|h| h.count()),
            Some(saves)
        );
        assert_eq!(reg.histogram("ckpt.restore_ns").map(|h| h.count()), Some(1));
    })
    .expect("enabled handle");
    let dump = obs.last_dump().expect("crash/restart edges dump");
    assert!(
        dump.contains("runner.ppm_restart"),
        "restart event missing: {dump}"
    );
    assert!(
        dump.contains("source=ring"),
        "in-memory checkpoints restore from the ring: {dump}"
    );
}
