//! Self-healing runtime integration tests: the health subsystem must
//! turn detection into autonomous recovery at the runner level:
//!
//! * a poisoned SAC actor is caught by the NaN sentinel and rolled back
//!   to the last known-good checkpoint generation, after which the run
//!   finishes healthy with zero unrecovered incidents;
//! * accumounting drift is detected by the invariant auditor and
//!   repaired/rolled back in place where the same run without the
//!   health subsystem fail-stops;
//! * a corrupted newest checkpoint generation is skipped and the
//!   rollback restores the older known-good generation;
//! * exhausting the rollback budget quarantines the run — contained at
//!   the Static rung, alive to the end;
//! * the crash-stop ablation arm takes the daemon down permanently and
//!   reports its incidents as unrecovered;
//! * everything above is bit-identical across repeated runs, and a
//!   fault window straddling a checkpoint/restore probe perturbs
//!   nothing.

use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::runner::{CheckpointCfg, Experiment};
use mtat_core::{DegradationState, HealthConfig, HealthState};
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::{TierMemError, GIB};
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_be() -> BeSpec {
    let mut s = BeSpec::sssp();
    s.rss_bytes = 2 * GIB;
    s
}

fn experiment(load: LoadPattern, secs: f64) -> Experiment {
    Experiment::new(SimConfig::small_test(), small_lc(), load, vec![small_be()]).with_duration(secs)
}

/// Full RL policy under supervision with online learning — the poison
/// sentinel and rollback path must handle live SAC weights, not a
/// heuristic stand-in.
fn rl_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().supervised();
    cfg.pretrain_steps = 400;
    cfg.online_learning = true;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

fn assert_ticks_bit_identical(a: &mtat_core::RunResult, b: &mtat_core::RunResult) {
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(x.lc_p99.to_bits(), y.lc_p99.to_bits(), "p99 at t={}", x.t);
        assert_eq!(x.fmem_bytes, y.fmem_bytes, "placement at t={}", x.t);
        assert_eq!(x, y, "tick records diverge at t={}", x.t);
    }
}

/// Poison mid-interval (t=23; boundaries fall on multiples of 5): the
/// sentinel fires the same tick, the monitor orders a rollback to the
/// last known-good generation, and the run finishes healthy.
#[test]
fn sac_poison_triggers_rollback_and_recovery() {
    let plan = FaultPlan::new(0x90150).with(FaultKind::SacPoison, 23.0, 1.0);
    let exp = experiment(LoadPattern::Constant(0.5), 60.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_health(HealthConfig::self_heal());

    let r = exp.run(&mut rl_policy(&exp));
    assert_eq!(r.ticks.len(), 60, "the run must complete");
    let h = r.health.expect("health summary present when enabled");
    assert!(h.poison_incidents >= 1, "sentinel must fire: {h:?}");
    assert_eq!(h.rollbacks, 1, "one rollback heals the poison: {h:?}");
    assert_eq!(h.unrecovered, 0, "self-heal leaves nothing unrecovered");
    assert!(!h.quarantined);
    assert!(h.final_audit_ok, "substrate consistent at end of run");
    assert_eq!(
        h.final_state,
        HealthState::Healthy,
        "events: {:?}",
        h.events
    );
    // The rollback restored a real generation, not a cold restart:
    // checkpoints at t=5/10/15/20 precede the poison.
    assert!(
        h.events
            .iter()
            .any(|e| e.kind == "rollback" && e.detail.contains("restored checkpoint generation")),
        "events: {:?}",
        h.events
    );
}

/// A drifting popularity accumulator fail-stops the audited run without
/// the health subsystem and is healed in place with it.
#[test]
fn accumulator_drift_is_healed_instead_of_fatal() {
    let plan = FaultPlan::new(0xD21F7).with(FaultKind::AccumulatorDrift { delta: 1e-3 }, 20.0, 8.0);
    let base = experiment(LoadPattern::Constant(0.5), 45.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory());

    if mtat_tiermem::audit_enabled() {
        let err = base
            .try_run(&mut rl_policy(&base))
            .expect_err("without health the auditor fail-stops");
        assert!(matches!(err, TierMemError::Audit(_)), "got: {err}");
    }

    let healed = base.clone().with_health(HealthConfig::self_heal());
    let r = healed.run(&mut rl_policy(&healed));
    assert_eq!(r.ticks.len(), 45, "the healed run completes");
    let h = r.health.expect("summary");
    assert!(h.audit_incidents >= 1, "auditor feeds the monitor: {h:?}");
    assert!(
        h.rollbacks + h.repairs >= 1,
        "drift must be answered: {h:?}"
    );
    assert_eq!(h.unrecovered, 0);
    assert!(h.final_audit_ok, "drift repaired by end of run");
}

/// A `CheckpointCorrupt` window covering the newest capture: the
/// rollback must skip the torn generation and restore the older
/// known-good one (generation 3, captured at t=15, with the t=20
/// capture corrupted).
#[test]
fn rollback_falls_back_past_corrupted_generation() {
    let plan = FaultPlan::new(0xC0B7)
        .with(FaultKind::CheckpointCorrupt, 18.0, 4.0)
        .with(FaultKind::SacPoison, 23.0, 1.0);
    let exp = experiment(LoadPattern::Constant(0.5), 45.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_health(HealthConfig::self_heal());

    let r = exp.run(&mut rl_policy(&exp));
    let h = r.health.expect("summary");
    assert_eq!(h.rollbacks, 1, "{h:?}");
    assert_eq!(h.unrecovered, 0);
    assert!(h.final_audit_ok);
    assert!(
        h.events
            .iter()
            .any(|e| e.kind == "rollback" && e.detail.contains("generation 3")),
        "must restore the pre-corruption generation: {:?}",
        h.events
    );
}

/// Two poison strikes against a budget of one rollback: the second
/// exhausts the budget and the monitor quarantines — supervisor latched
/// at Static, run alive and contained to the end.
#[test]
fn budget_exhaustion_quarantines_and_contains() {
    let plan = FaultPlan::new(0xB4D9)
        .with(FaultKind::SacPoison, 21.0, 1.0)
        .with(FaultKind::SacPoison, 41.0, 1.0);
    let exp = experiment(LoadPattern::Constant(0.5), 70.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_health(
            HealthConfig::self_heal()
                .with_budget(1, 600.0)
                .with_hysteresis(2.0),
        );

    let r = exp.run(&mut rl_policy(&exp));
    assert_eq!(r.ticks.len(), 70, "quarantine contains; it does not kill");
    let h = r.health.expect("summary");
    assert_eq!(h.rollbacks, 1, "budget of one: {h:?}");
    assert!(h.quarantined, "{h:?}");
    assert_eq!(h.final_state, HealthState::Quarantined);
    assert!(h.final_audit_ok, "contained run stays consistent");
    let last = r.ticks.last().expect("nonempty");
    assert_eq!(
        last.degradation,
        Some(DegradationState::Static),
        "quarantine pins the ladder at Static"
    );
}

/// The crash-stop ablation arm: the first incident takes the daemon
/// down permanently (no restart at the fault window's end), and the
/// incident is reported unrecovered.
#[test]
fn crash_stop_arm_kills_the_daemon_permanently() {
    let plan = FaultPlan::new(0xCAFE).with(FaultKind::SacPoison, 21.0, 1.0);
    let exp = experiment(LoadPattern::Constant(0.5), 60.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_health(HealthConfig::crash_stop());

    let r = exp.run(&mut rl_policy(&exp));
    assert_eq!(r.ticks.len(), 60, "PP-E keeps the lights on");
    let h = r.health.expect("summary");
    assert_eq!(h.rollbacks, 0, "crash-stop never rolls back: {h:?}");
    assert!(h.unrecovered >= 1, "{h:?}");
    // Dead daemon, frozen plan: once PP-E converges the placement
    // holds steady for the rest of the run.
    let late: Vec<_> = r.ticks.iter().filter(|t| t.t >= 40.0).collect();
    assert!(late.windows(2).all(|w| w[0].fmem_bytes == w[1].fmem_bytes));
}

/// Determinism contract: recovery is part of the simulation, so a run
/// that detects, rolls back, and re-learns must replay bit-identically.
#[test]
fn self_healing_runs_are_bit_identical() {
    let plan = FaultPlan::new(0x1D3)
        .with(FaultKind::CheckpointCorrupt, 18.0, 4.0)
        .with(FaultKind::SacPoison, 23.0, 1.0)
        .with(FaultKind::AccumulatorDrift { delta: 5e-4 }, 40.0, 5.0);
    let exp = experiment(LoadPattern::Constant(0.5), 60.0)
        .with_fault_plan(plan)
        .with_checkpoints(CheckpointCfg::in_memory())
        .with_health(HealthConfig::self_heal());

    let a = exp.run(&mut rl_policy(&exp));
    let b = exp.run(&mut rl_policy(&exp));
    assert_ticks_bit_identical(&a, &b);
    let (ha, hb) = (a.health.expect("summary"), b.health.expect("summary"));
    assert_eq!(ha.rollbacks, hb.rollbacks);
    assert_eq!(ha.repairs, hb.repairs);
    let ja: Vec<String> = ha.events.iter().map(|e| e.jsonl()).collect();
    let jb: Vec<String> = hb.events.iter().map(|e| e.jsonl()).collect();
    assert_eq!(ja, jb, "health event logs must replay identically");
}

/// A fault window straddling the checkpoint/restore boundary: the
/// restart probe (capture → crash → restore, same tick) at t=20 sits
/// inside an active telemetry-noise + dropout window. The probed run
/// must match the unprobed run bit-for-bit — restoring mid-window
/// must not reset, replay, or skip any fault state.
#[test]
fn fault_window_straddling_restore_is_bit_identical() {
    let plan = FaultPlan::new(0x57AD)
        .with(FaultKind::TelemetryNoise { amplitude: 0.15 }, 15.0, 20.0)
        .with(FaultKind::SamplerDropout { keep: 0.6 }, 15.0, 20.0);
    let base = experiment(LoadPattern::Constant(0.5), 50.0).with_fault_plan(plan);
    let probed = base
        .clone()
        .with_checkpoints(CheckpointCfg::in_memory().with_restart_probe(20.0));

    let r_base = base.run(&mut rl_policy(&base));
    let r_probe = probed.run(&mut rl_policy(&probed));
    assert_ticks_bit_identical(&r_base, &r_probe);
    assert_eq!(
        r_base.lc_violated_requests.to_bits(),
        r_probe.lc_violated_requests.to_bits()
    );
}
