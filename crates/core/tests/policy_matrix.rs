//! Policy × load matrix: every built-in policy must run every load
//! shape on the small system without panicking, while preserving the
//! substrate invariants and producing sane metrics.

use mtat_core::config::SimConfig;
use mtat_core::policy::hotset::HotsetPolicy;
use mtat_core::policy::memtis::MemtisPolicy;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::policy::statics::StaticPolicy;
use mtat_core::policy::tpp::TppPolicy;
use mtat_core::runner::Experiment;
use mtat_core::Policy;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

fn small_exp(load: LoadPattern) -> Experiment {
    let mut lc = LcSpec::memcached();
    lc.rss_bytes = (1.4 * GIB as f64) as u64;
    let mut be1 = BeSpec::pagerank();
    be1.rss_bytes = (1.6 * GIB as f64) as u64;
    let mut be2 = BeSpec::bfs();
    be2.rss_bytes = (1.3 * GIB as f64) as u64;
    Experiment::new(SimConfig::small_test(), lc, load, vec![be1, be2]).with_duration(45.0)
}

fn policies(exp: &Experiment) -> Vec<Box<dyn Policy>> {
    let mut mtat_cfg = MtatConfig::full().with_heuristic_sizer();
    mtat_cfg.online_learning = false;
    let mut lc_only_cfg = MtatConfig::lc_only().with_heuristic_sizer();
    lc_only_cfg.online_learning = false;
    vec![
        Box::new(MtatPolicy::new(mtat_cfg, &exp.cfg, &exp.lc, &exp.bes)),
        Box::new(MtatPolicy::new(lc_only_cfg, &exp.cfg, &exp.lc, &exp.bes)),
        Box::new(MemtisPolicy::new()),
        Box::new(TppPolicy::new()),
        Box::new(HotsetPolicy::new()),
        Box::new(StaticPolicy::fmem_all()),
        Box::new(StaticPolicy::smem_all()),
    ]
}

#[test]
fn every_policy_runs_every_load_shape() {
    let loads = [
        LoadPattern::Constant(0.0),
        LoadPattern::Constant(0.4),
        LoadPattern::Constant(1.0),
        LoadPattern::fig7(),
        LoadPattern::spike(0.1, 1.0, 10.0, 15.0, 10.0),
        LoadPattern::staircase(&[0.9, 0.1, 0.9], 15.0),
    ];
    for load in loads {
        let exp = small_exp(load.clone());
        for mut policy in policies(&exp) {
            let r = exp.run(policy.as_mut());
            // Basic sanity on every run.
            assert_eq!(r.ticks.len(), 45, "{}", r.policy);
            assert!(r.violation_rate() >= 0.0 && r.violation_rate() <= 1.0);
            assert!(r.fairness().is_finite(), "{}", r.policy);
            assert!(r.be_total_throughput() > 0.0, "{}", r.policy);
            for tick in &r.ticks {
                let total_fmem: u64 = tick.fmem_bytes.iter().sum();
                assert!(
                    total_fmem <= exp.cfg.mem.fmem_bytes(),
                    "{} overcommitted FMem",
                    r.policy
                );
                assert!(tick.migration_bw <= exp.cfg.migration_bw * 1.0001);
                assert!((0.0..=1.0).contains(&tick.lc_fmem_ratio));
            }
        }
    }
}

#[test]
fn zero_load_keeps_everyone_happy() {
    let exp = small_exp(LoadPattern::Constant(0.0));
    for mut policy in policies(&exp) {
        let r = exp.run(policy.as_mut());
        assert_eq!(
            r.violation_rate(),
            0.0,
            "{} violated the SLO with zero offered load",
            r.policy
        );
    }
}

#[test]
fn constrained_bandwidth_degrades_be_throughput() {
    let base = small_exp(LoadPattern::Constant(0.3));
    let mut constrained = base.clone();
    // Tighten the channel far enough that BE traffic is contended even
    // at test scale (~100 M accesses/s ≈ 6.4 GB/s of demand).
    constrained.cfg.bandwidth =
        mtat_tiermem::bandwidth::BandwidthModel::new(4e9, 4e9, 10.0).unwrap();
    let r_base = base.run(&mut MemtisPolicy::new());
    let r_con = constrained.run(&mut MemtisPolicy::new());
    assert!(
        r_con.be_total_throughput() < r_base.be_total_throughput(),
        "contention must cost throughput: {} vs {}",
        r_con.be_total_throughput(),
        r_base.be_total_throughput()
    );
    // And the recorded utilization reflects it.
    let max_util = r_con
        .ticks
        .iter()
        .map(|t| t.fmem_bw_util.max(t.smem_bw_util))
        .fold(0.0, f64::max);
    assert!(max_util > 0.2, "util {max_util}");
}

#[test]
fn bandwidth_aware_mtat_freezes_under_saturation() {
    let mut exp = small_exp(LoadPattern::Constant(0.3));
    exp.cfg.bandwidth = mtat_tiermem::bandwidth::BandwidthModel::new(3e9, 3e9, 10.0).unwrap();
    let mut cfg = MtatConfig::full()
        .with_heuristic_sizer()
        .with_bandwidth_awareness(0.5);
    cfg.online_learning = false;
    let mut aware = MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes);
    let r = exp.run(&mut aware);
    // The run completes and the system saturates at least transiently.
    let peak = r.ticks.iter().map(|t| t.fmem_bw_util).fold(0.0, f64::max);
    assert!(peak > 0.5, "expected saturation, peak util {peak}");
}
