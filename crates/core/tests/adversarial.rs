//! End-to-end determinism contract for the adversarial scenario engine
//! and the hardening guards:
//!
//! * a scenario-driven run replays bit-identically from the same seeds,
//!   with hardening, substrate faults, telemetry, and span tracing
//!   independently toggled;
//! * none of telemetry / tracing perturbs the physics of a
//!   scenario-driven hardened run;
//! * the scenario engine actually mutates the run (the phase counter
//!   advances and the trajectory diverges from the unmutated run).

use mtat_core::config::SimConfig;
use mtat_core::policy::mtat::MtatConfig;
use mtat_core::runner::Experiment;
use mtat_core::MtatPolicy;
use mtat_obs::Obs;
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;
use mtat_workloads::scenario::{BeSelector, Mutator, ScenarioSpec};

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_bes() -> Vec<BeSpec> {
    let mut b1 = BeSpec::sssp();
    b1.rss_bytes = 2 * GIB;
    let mut b2 = BeSpec::pagerank();
    b2.rss_bytes = (1.5 * GIB as f64) as u64;
    vec![b1, b2]
}

/// A compressed adversarial gauntlet sized for the 60 s test runs: a
/// zipf flattening, a hot-set rotation, a working-set pulse, leak
/// drift, a BE burst, and a flash crowd all fire within the window.
fn gauntlet(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "gauntlet",
        seed,
        mutators: vec![
            Mutator::ZipfShift {
                be: BeSelector::All,
                at_secs: 10.0,
                exponent: 0.4,
            },
            Mutator::HotSetRotate {
                be: BeSelector::One(0),
                start_secs: 15.0,
                period_secs: 6.0,
                stride_frac: 0.3,
                jitter_frac: 0.2,
            },
            Mutator::WorkingSetBlowup {
                be: BeSelector::One(1),
                at_secs: 25.0,
                dur_secs: 10.0,
                flat_exponent: 0.05,
            },
            Mutator::LeakDrift {
                be: BeSelector::All,
                start_secs: 20.0,
                step_secs: 10.0,
                step_frac: 0.1,
                max_frac: 0.5,
            },
            Mutator::BeBurst {
                be: BeSelector::One(1),
                at_secs: 30.0,
                dur_secs: 15.0,
                rate_mult: 2.5,
            },
            Mutator::FlashCrowd {
                at_secs: 40.0,
                dur_secs: 10.0,
                load_mult: 1.5,
            },
        ],
    }
}

fn experiment(scenario: Option<ScenarioSpec>, faults: Option<FaultPlan>) -> Experiment {
    let load = LoadPattern::staircase(&[0.4, 0.9, 0.5], 20.0);
    let mut exp =
        Experiment::new(SimConfig::small_test(), small_lc(), load, small_bes()).with_duration(60.0);
    if let Some(s) = scenario {
        exp = exp.with_scenario(s);
    }
    if let Some(f) = faults {
        exp = exp.with_fault_plan(f);
    }
    exp
}

/// The heuristic-sizer hardened arm: no pretraining, fast enough for
/// integration tests, exercises the full guard + supervisor stack.
fn hardened_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().with_heuristic_sizer().hardened();
    cfg.online_learning = false;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

fn naive_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().with_heuristic_sizer().supervised();
    cfg.online_learning = false;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

fn mild_faults() -> FaultPlan {
    FaultPlan::new(0xFA57)
        .with(FaultKind::MigrationFlaky { prob: 0.1 }, 15.0, 20.0)
        .with(FaultKind::TelemetryNoise { amplitude: 0.2 }, 20.0, 20.0)
}

/// Asserts two runs are bit-identical on every per-tick f64 and every
/// discrete outcome.
fn assert_bit_identical(a: &mtat_core::RunResult, b: &mtat_core::RunResult, what: &str) {
    assert_eq!(a.ticks.len(), b.ticks.len(), "{what}: tick counts");
    for (ta, tb) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(
            ta.lc_p99.to_bits(),
            tb.lc_p99.to_bits(),
            "{what} t={}",
            ta.t
        );
        assert_eq!(ta.lc_violated, tb.lc_violated, "{what} t={}", ta.t);
        assert_eq!(
            ta.lc_load_rps.to_bits(),
            tb.lc_load_rps.to_bits(),
            "{what} t={}",
            ta.t
        );
        assert_eq!(ta.fmem_bytes, tb.fmem_bytes, "{what} t={}", ta.t);
        assert_eq!(
            ta.migration_bw.to_bits(),
            tb.migration_bw.to_bits(),
            "{what} t={}",
            ta.t
        );
        for (ba, bb) in ta.be_throughput.iter().zip(&tb.be_throughput) {
            assert_eq!(ba.to_bits(), bb.to_bits(), "{what} t={}", ta.t);
        }
    }
    assert_eq!(a.failed_moves, b.failed_moves, "{what}");
    assert_eq!(a.retried_moves, b.retried_moves, "{what}");
}

/// Every toggle combination (hardening × faults) must replay
/// bit-identically from the same seeds.
#[test]
fn scenario_replay_is_bit_identical_across_toggles() {
    for hardened in [false, true] {
        for faulted in [false, true] {
            let what = format!("hardened={hardened} faulted={faulted}");
            let mk = || {
                let faults = faulted.then(mild_faults);
                let exp = experiment(Some(gauntlet(0xD1CE)), faults);
                if hardened {
                    exp.run(&mut hardened_policy(&exp))
                } else {
                    exp.run(&mut naive_policy(&exp))
                }
            };
            assert_bit_identical(&mk(), &mk(), &what);
        }
    }
}

/// Telemetry and span tracing must be invisible to the physics of a
/// scenario-driven hardened run (the guards may be observed, never
/// perturbed).
#[test]
fn scenario_run_ignores_obs_and_tracing() {
    let run_with = |obs: Obs| {
        let exp = experiment(Some(gauntlet(0xD1CE)), Some(mild_faults())).with_obs(obs);
        let mut p = hardened_policy(&exp);
        exp.run(&mut p)
    };
    let off = run_with(Obs::disabled());
    assert_bit_identical(&off, &run_with(Obs::enabled()), "obs on/off");
    assert_bit_identical(&off, &run_with(Obs::traced()), "tracing on/off");
}

/// The scenario engine must actually drive the run: the phase counter
/// advances, and the mutated trajectory diverges from the unmutated
/// one.
#[test]
fn scenario_mutates_the_run() {
    let obs = Obs::enabled();
    let exp = experiment(Some(gauntlet(0xD1CE)), None).with_obs(obs.clone());
    let mutated = exp.run(&mut hardened_policy(&exp));
    let phases = obs.counter_value("runner.scenario_phases").unwrap_or(0);
    assert!(phases >= 4, "gauntlet must cross several phases: {phases}");

    let base = experiment(None, None);
    let unmutated = base.run(&mut hardened_policy(&base));
    let diverged = mutated.ticks.iter().zip(&unmutated.ticks).any(|(a, b)| {
        a.be_throughput != b.be_throughput || a.lc_p99.to_bits() != b.lc_p99.to_bits()
    });
    assert!(diverged, "scenario had no observable effect");
}

/// A plain (no-scenario, no-hardening) run must be unaffected by the
/// engine merely existing: the naive supervised arm without a scenario
/// replays bit-identically — guarding against `* 1.0` multiplier or
/// registration-order regressions on the legacy path.
#[test]
fn no_scenario_baseline_still_replays() {
    let mk = || {
        let exp = experiment(None, None);
        exp.run(&mut naive_policy(&exp))
    };
    assert_bit_identical(&mk(), &mk(), "baseline");
}
