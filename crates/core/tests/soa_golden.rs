//! Golden-digest regression suite for the SoA data-plane refactor.
//!
//! The digests below were captured from seeded runs **before** the
//! `tiermem` data plane was rebuilt on struct-of-arrays arenas (flat
//! tier/owner arrays, residency bitsets, flat-arena histograms,
//! range-batched migration). They pin down the determinism contract:
//! the refactor must reproduce every run bit-for-bit — placements,
//! latencies, fault outcomes, tie-break order — with observability and
//! tracing on or off.
//!
//! Regenerate (only when a *deliberate* behaviour change is made):
//!
//! ```text
//! MTAT_GOLDEN_PRINT=1 cargo test -p mtat-core --test soa_golden -- --nocapture
//! ```

use mtat_core::config::SimConfig;
use mtat_core::policy::memtis::MemtisPolicy;
use mtat_core::policy::mtat::{MtatConfig, MtatPolicy};
use mtat_core::runner::Experiment;
use mtat_core::stats::RunResult;
use mtat_core::Policy;
use mtat_obs::Obs;
use mtat_snapshot::fnv1a64;
use mtat_tiermem::faults::{FaultKind, FaultPlan};
use mtat_tiermem::histogram::AccessHistogram;
use mtat_tiermem::page::{PageId, PageRegion};
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

/// FNV-1a-64 digest over the bit patterns of every tick record — any
/// single-ULP divergence anywhere in the run changes the digest.
fn run_digest(r: &RunResult) -> u64 {
    let mut bytes = Vec::with_capacity(r.ticks.len() * 64);
    for t in &r.ticks {
        bytes.extend_from_slice(&t.t.to_bits().to_le_bytes());
        bytes.extend_from_slice(&t.lc_load_rps.to_bits().to_le_bytes());
        bytes.extend_from_slice(&t.lc_p99.to_bits().to_le_bytes());
        bytes.push(u8::from(t.lc_violated));
        bytes.extend_from_slice(&t.lc_fmem_ratio.to_bits().to_le_bytes());
        for &b in &t.fmem_bytes {
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        for &thr in &t.be_throughput {
            bytes.extend_from_slice(&thr.to_bits().to_le_bytes());
        }
        bytes.extend_from_slice(&t.migration_bw.to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(&r.lc_violated_requests.to_bits().to_le_bytes());
    fnv1a64(&bytes)
}

/// Paper-scale co-location (Redis + the four paper BE workloads) under
/// staircase load — the configuration the perf work targets.
fn paper_exp(seed: u64, secs: f64) -> Experiment {
    Experiment::new(
        SimConfig::paper().with_seed(seed),
        LcSpec::redis(),
        LoadPattern::staircase(&[0.5, 1.0, 0.3, 0.9], secs / 4.0),
        BeSpec::all_paper_workloads(),
    )
    .with_duration(secs)
}

fn small_lc() -> LcSpec {
    let mut s = LcSpec::redis();
    s.rss_bytes = (1.2 * GIB as f64) as u64;
    s
}

fn small_be() -> BeSpec {
    let mut s = BeSpec::sssp();
    s.rss_bytes = 2 * GIB;
    s
}

/// Small-scale co-location for the (pretraining) MTAT policy arms.
fn small_exp(seed: u64, secs: f64) -> Experiment {
    Experiment::new(
        SimConfig::small_test().with_seed(seed),
        small_lc(),
        LoadPattern::staircase(&[0.4, 0.9, 0.6], secs / 3.0),
        vec![small_be()],
    )
    .with_duration(secs)
}

/// Fault windows that exercise the batched migrate/exchange paths under
/// failure draws, sampler blackouts, and telemetry noise.
fn fault_plan(seed: u64, secs: f64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(
            FaultKind::MigrationFlaky { prob: 0.25 },
            0.2 * secs,
            0.3 * secs,
        )
        .with(FaultKind::SamplerBlackout, 0.55 * secs, 0.1 * secs)
        .with(
            FaultKind::TelemetryNoise { amplitude: 0.2 },
            0.7 * secs,
            0.2 * secs,
        )
        .with(
            FaultKind::MigrationThrottle { factor: 0.3 },
            0.8 * secs,
            0.15 * secs,
        )
}

fn mtat_policy(exp: &Experiment) -> MtatPolicy {
    let mut cfg = MtatConfig::full().supervised();
    cfg.pretrain_steps = 400; // real weights, cached per key
    cfg.online_learning = true;
    MtatPolicy::new(cfg, &exp.cfg, &exp.lc, &exp.bes)
}

/// Runs one scenario under the given obs handle and digests the result.
fn scenario(name: &str, obs: Obs) -> u64 {
    let (exp, mut policy): (Experiment, Box<dyn Policy>) = match name {
        "memtis_nominal" => (paper_exp(0xC0FFEE, 40.0), Box::new(MemtisPolicy::new())),
        "memtis_faults" => (
            paper_exp(7, 40.0).with_fault_plan(fault_plan(0xFA17, 40.0)),
            Box::new(MemtisPolicy::new()),
        ),
        "memtis_legacy" => (
            paper_exp(424242, 30.0).with_legacy_accounting(),
            Box::new(MemtisPolicy::new()),
        ),
        "mtat_nominal" => {
            let exp = small_exp(11, 60.0);
            let p = mtat_policy(&exp);
            (exp, Box::new(p))
        }
        "mtat_faults" => {
            let exp = small_exp(13, 60.0).with_fault_plan(fault_plan(0xBADF, 60.0));
            let p = mtat_policy(&exp);
            (exp, Box::new(p))
        }
        other => panic!("unknown scenario {other}"),
    };
    run_digest(&exp.with_obs(obs).run(policy.as_mut()))
}

/// (scenario, digest) pairs captured at the pre-refactor HEAD.
const GOLDENS: [(&str, u64); 5] = [
    ("memtis_nominal", 0x624529c79fcde9d5),
    ("memtis_faults", 0x870642431a0b3207),
    ("memtis_legacy", 0x5dc539f6fa1f566a),
    ("mtat_nominal", 0x1c895a1b82512acc),
    ("mtat_faults", 0x5acfdb141f833c6c),
];

#[test]
fn seeded_runs_match_pre_refactor_goldens() {
    let print = std::env::var("MTAT_GOLDEN_PRINT").is_ok();
    for (name, golden) in GOLDENS {
        let d_off = scenario(name, Obs::disabled());
        let d_on = scenario(name, Obs::enabled());
        let d_traced = scenario(name, Obs::traced());
        assert_eq!(d_off, d_on, "{name}: obs perturbed the physics");
        assert_eq!(d_off, d_traced, "{name}: tracing perturbed the physics");
        if print {
            println!("    (\"{name}\", {d_off:#018x}),");
        } else {
            assert_eq!(
                d_off, golden,
                "{name}: run diverged from the pre-refactor golden digest"
            );
        }
    }
}

/// Digest of the hottest/coldest candidate *order* (ids in scan order)
/// after a scripted add/age workout. Tie-break order inside a bin is
/// history-dependent (swap-remove + push) and policy-observable, so the
/// flat-arena histogram must reproduce it exactly.
fn hist_order_digest() -> u64 {
    let region = PageRegion {
        base: 1000,
        n_pages: 4096,
    };
    let mut hist = AccessHistogram::new(region);
    // Deterministic LCG (no RNG dependency in this test).
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut bytes = Vec::new();
    for step in 0..20_000u32 {
        let rank = (next() % region.n_pages as u64) as u32;
        let delta = next() % 17; // frequently 0..16, many ties
        if delta > 0 {
            hist.add(PageId(region.base + rank), delta);
        }
        if step % 1024 == 1023 {
            hist.age();
        }
        if step % 2048 == 2047 {
            for n in [1usize, 7, 64, 512] {
                for p in hist.hottest_matching(n, |p: PageId| p.0.is_multiple_of(2)) {
                    bytes.extend_from_slice(&p.0.to_le_bytes());
                }
                for p in hist.coldest_matching(n, |p: PageId| !p.0.is_multiple_of(3)) {
                    bytes.extend_from_slice(&p.0.to_le_bytes());
                }
            }
            bytes.extend_from_slice(&hist.total().to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

/// Captured at the pre-refactor HEAD (Vec<Vec<u32>> bin layout).
const HIST_ORDER_GOLDEN: u64 = 0xdf2cea2b8856e291;

#[test]
fn hottest_coldest_order_matches_pre_refactor_golden() {
    let d = hist_order_digest();
    if std::env::var("MTAT_GOLDEN_PRINT").is_ok() {
        println!("const HIST_ORDER_GOLDEN: u64 = {d:#018x};");
    } else {
        assert_eq!(
            d, HIST_ORDER_GOLDEN,
            "hottest/coldest tie-break order diverged from the legacy bin layout"
        );
    }
}
