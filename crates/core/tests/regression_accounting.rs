//! Seeded regression tests: legacy O(total pages) per-tick accounting
//! vs. the incremental/batched path (`Experiment::with_legacy_accounting`).
//!
//! Two levels of equivalence, matching what each path changes:
//!
//! * For a policy that never reads the per-page sampled counts
//!   (FMEM_ALL), the two modes must be **bit-identical**: hit ratios are
//!   exact counters either way, the burst RNG is a separate stream from
//!   the sampler RNG, and the physics never read `sampled`.
//! * For a telemetry-driven policy (MEMTIS), the batched sampler draws
//!   from the same distribution — Poisson splitting — but consumes the
//!   RNG stream differently, so individual placements diverge while the
//!   run statistics must stay **equivalent**.

use mtat_core::config::SimConfig;
use mtat_core::policy::memtis::MemtisPolicy;
use mtat_core::policy::statics::StaticPolicy;
use mtat_core::runner::Experiment;
use mtat_core::stats::RunResult;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;

/// Fig. 5-style dynamic-load co-location run at paper scale: Redis plus
/// the four paper BE workloads, staircase load with log-normal bursts so
/// SLO violations actually occur.
fn paper_exp(seed: u64, secs: f64) -> Experiment {
    Experiment::new(
        SimConfig::paper().with_seed(seed),
        LcSpec::redis(),
        LoadPattern::staircase(&[0.5, 1.0, 0.3, 0.9], secs / 4.0),
        BeSpec::all_paper_workloads(),
    )
    .with_duration(secs)
}

#[test]
fn fmem_all_is_bit_identical_across_accounting_modes() {
    for seed in [0xC0FFEE, 7, 424242] {
        let exp = paper_exp(seed, 60.0);
        let legacy = exp
            .clone()
            .with_legacy_accounting()
            .run(&mut StaticPolicy::fmem_all());
        let incr = exp.run(&mut StaticPolicy::fmem_all());

        assert_eq!(legacy.ticks.len(), incr.ticks.len());
        assert_eq!(
            legacy.lc_violated_requests.to_bits(),
            incr.lc_violated_requests.to_bits(),
            "seed {seed}: violated-request totals diverged"
        );
        for (a, b) in legacy.ticks.iter().zip(&incr.ticks) {
            assert_eq!(a.lc_violated, b.lc_violated, "seed {seed} t={}", a.t);
            assert_eq!(a.lc_p99.to_bits(), b.lc_p99.to_bits(), "seed {seed}");
            assert_eq!(a.lc_fmem_ratio.to_bits(), b.lc_fmem_ratio.to_bits());
            assert_eq!(a.fmem_bytes, b.fmem_bytes, "seed {seed}: placement");
            for (x, y) in a.be_throughput.iter().zip(&b.be_throughput) {
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed}: BE throughput");
            }
        }
    }
}

fn memtis_run(seed: u64, legacy: bool) -> RunResult {
    let exp = paper_exp(seed, 90.0);
    let exp = if legacy {
        exp.with_legacy_accounting()
    } else {
        exp
    };
    exp.run(&mut MemtisPolicy::new())
}

#[test]
fn memtis_is_statistically_equivalent_across_accounting_modes() {
    // Average over seeds: individual runs diverge tick-by-tick (the
    // batched sampler consumes the RNG differently), but the seed-mean
    // statistics must agree — same access distribution, same physics.
    let seeds = [1u64, 2, 3];
    let mean = |legacy: bool, f: &dyn Fn(&RunResult) -> f64| -> f64 {
        seeds
            .iter()
            .map(|&s| f(&memtis_run(s, legacy)))
            .sum::<f64>()
            / seeds.len() as f64
    };

    let thr_l = mean(true, &|r| r.be_total_throughput());
    let thr_i = mean(false, &|r| r.be_total_throughput());
    let rel = (thr_l - thr_i).abs() / thr_l.max(1e-9);
    assert!(
        rel < 0.05,
        "BE throughput diverged: legacy {thr_l:.3e} vs incremental {thr_i:.3e} ({rel:.3})"
    );

    let fr_l = mean(true, &|r| r.mean_lc_fmem_ratio());
    let fr_i = mean(false, &|r| r.mean_lc_fmem_ratio());
    assert!(
        (fr_l - fr_i).abs() < 0.05,
        "LC FMem ratio diverged: legacy {fr_l:.4} vs incremental {fr_i:.4}"
    );

    let vr_l = mean(true, &|r| r.violation_rate());
    let vr_i = mean(false, &|r| r.violation_rate());
    assert!(
        (vr_l - vr_i).abs() < 0.10,
        "violation rate diverged: legacy {vr_l:.4} vs incremental {vr_i:.4}"
    );
}
