//! The co-location simulation driver.
//!
//! [`Experiment`] wires everything together: it registers one LC and any
//! number of BE workloads in a [`TieredMemory`], then advances time in
//! ticks. Each tick it
//!
//! 1. evaluates the offered LC load (load pattern × optional log-normal
//!    burst),
//! 2. derives every workload's FMem hit ratio from the *actual* page
//!    placement,
//! 3. computes LC P99 latency (M/M/c) and BE throughput from those hit
//!    ratios — including any per-SMem-access penalty the policy imposes
//!    (TPP's hint faults),
//! 4. generates the tick's page accesses and thins them through the
//!    PEBS-like sampler, and
//! 5. hands the observations to the policy, which may migrate pages
//!    within the migration engine's bandwidth budget.
//!
//! The driver also implements the paper's *maximum load* measurement
//! ([`Experiment::find_max_load`]): the largest constant load a policy
//! can carry without SLO violations (Fig. 8, Table 3).

use std::collections::VecDeque;
use std::path::PathBuf;

use mtat_obs::alert::{AlertRule, AlertState, BurnRateEngine};
use mtat_obs::event::Severity;
use mtat_obs::export::{json_f64, json_string};
use mtat_obs::registry::GaugeMerge;
use mtat_obs::serve::TelemetryHub;
use mtat_obs::Obs;
use mtat_snapshot::{seal, unseal, CheckpointStore, SnapError};
use mtat_tiermem::bandwidth::BandwidthModel;
use mtat_tiermem::error::TierMemError;
use mtat_tiermem::faults::{FaultInjector, FaultKind, FaultPlan, TickFaults};
use mtat_tiermem::latency;
use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::migration::MigrationEngine;
use mtat_tiermem::page::Tier;
use mtat_tiermem::sampler::AccessSampler;
use mtat_tiermem::{audit_enabled, AuditViolation};
use mtat_workloads::access::Popularity;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;
use mtat_workloads::load::LoadPattern;
use mtat_workloads::scenario::{PopMutation, ScenarioSchedule, ScenarioSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::health::{Directive, HealthConfig, HealthMonitor, Incident};
use crate::policy::{Policy, SimState, WorkloadClass, WorkloadObs};
use crate::stats::{AlertRecord, RunResult, TickRecord};

/// A configured co-location experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// System configuration.
    pub cfg: SimConfig,
    /// The latency-critical workload.
    pub lc: LcSpec,
    /// The offered-load schedule for the LC workload.
    pub load: LoadPattern,
    /// Co-located best-effort workloads.
    pub bes: Vec<BeSpec>,
    /// Run length in seconds.
    pub duration_secs: f64,
    /// Reference maximum load (requests/s); load-pattern levels are
    /// fractions of this. Defaults to the LC workload's sustainable load
    /// under FMEM_ALL.
    pub lc_max_ref: f64,
    /// Fault-injection schedule. Defaults to [`FaultPlan::none`], which
    /// leaves every substrate hook untouched — the run is bit-identical
    /// to one without the fault layer.
    pub fault_plan: FaultPlan,
    /// Use the pre-optimization O(total pages) per-tick accounting (full
    /// FMem rescan per BE hit ratio, one Poisson draw per page) instead
    /// of the incremental resident-popularity counters and batched
    /// sampler. The two modes are statistically equivalent — the batched
    /// sampler draws from the same distribution by Poisson splitting —
    /// but consume the RNG stream differently. Retained for equivalence
    /// tests and the `perf_baseline` speedup measurement.
    pub legacy_accounting: bool,
    /// PP-M checkpointing configuration. `None` (the default) disables
    /// checkpoint capture; a crashed controller then restarts cold.
    pub checkpoints: Option<CheckpointCfg>,
    /// Explicit telemetry handle. `None` (the default) defers to the
    /// `MTAT_OBS` environment variable ([`Obs::from_env`]); harnesses
    /// that need one registry per matrix cell attach their own handle.
    /// Telemetry never feeds back into simulation physics — runs are
    /// bit-identical with observability on or off.
    pub obs: Option<Obs>,
    /// Flight-recorder dump trigger on sustained SLO violation: after
    /// this many *consecutive* violating ticks the recorder is dumped
    /// once (re-arming only after the streak breaks). `None` (the
    /// default) disables the trigger.
    pub slo_streak_dump: Option<u32>,
    /// Self-healing health subsystem ([`crate::health`]). `None` (the
    /// default) keeps the pre-existing behavior: detections abort the
    /// run instead of triggering autonomous recovery.
    pub health: Option<HealthConfig>,
    /// Adversarial workload scenario ([`mtat_workloads::scenario`]).
    /// `None` (the default) runs the nominal workload mix; the run is
    /// then bit-identical to one built before scenario support existed.
    /// With a scenario, its compiled schedule mutates BE popularity
    /// distributions, BE access rates, and LC offered load at phase
    /// boundaries, and the active phase id is threaded into obs events
    /// and decision provenance.
    pub scenario: Option<ScenarioSpec>,
    /// Live telemetry hub ([`mtat_obs::serve`]). `None` (the default)
    /// publishes nothing. With a hub attached, the runner pushes
    /// rendered metrics/health/status snapshots at partitioning-interval
    /// boundaries and tails the event stream into the hub's SSE ring.
    /// The hub is publish-only — HTTP server threads read immutable
    /// snapshots and nothing flows back — so runs are bit-identical
    /// with serving on or off.
    pub hub: Option<TelemetryHub>,
    /// SLO burn-rate alert rules ([`mtat_obs::alert`]). `None` (the
    /// default) skips the engine entirely. Rules are evaluated on sim
    /// time, so alert transitions — timestamps included — replay
    /// bit-identically; the engine observes the run and never feeds
    /// back into the physics.
    pub alerts: Option<Vec<AlertRule>>,
}

/// Checkpointing and crash-recovery configuration for a run.
///
/// PP-M control state is captured at partitioning-interval boundaries —
/// the natural decision boundary: the per-interval accumulators have
/// just been reset and the new plan handed to PP-E, so restoring such a
/// checkpoint resumes *bit-identically* with the uninterrupted run.
/// Checkpoints are sealed in the versioned, checksummed envelope of
/// [`mtat_snapshot`]; up to `retain` generations are kept, and a restart
/// falls back to older generations when newer ones are corrupt.
#[derive(Debug, Clone)]
pub struct CheckpointCfg {
    /// Capture a checkpoint every this many partitioning intervals
    /// (values below 1 are treated as 1).
    pub every_intervals: u64,
    /// Number of checkpoint generations to keep (values below 1 are
    /// treated as 1).
    pub retain: usize,
    /// Directory for on-disk checkpoints (created if missing). `None`
    /// keeps the sealed blobs in memory — same envelope, same fallback
    /// semantics, no filesystem traffic.
    pub dir: Option<PathBuf>,
    /// Bit-identity probe: at the first interval boundary at or after
    /// this time, checkpoint, crash, and restore the controller in
    /// place. A correct checkpoint implementation continues exactly as
    /// if nothing happened; the regression tests assert tick-for-tick
    /// equality against an unprobed run.
    pub restart_probe_at: Option<f64>,
}

impl CheckpointCfg {
    /// In-memory checkpointing: every interval, three generations.
    pub fn in_memory() -> Self {
        Self {
            every_intervals: 1,
            retain: 3,
            dir: None,
            restart_probe_at: None,
        }
    }

    /// On-disk checkpointing under `dir`: every interval, three
    /// generations.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
            ..Self::in_memory()
        }
    }

    /// Sets the capture cadence in partitioning intervals.
    pub fn with_every(mut self, intervals: u64) -> Self {
        self.every_intervals = intervals;
        self
    }

    /// Sets the retained generation count.
    pub fn with_retain(mut self, retain: usize) -> Self {
        self.retain = retain;
        self
    }

    /// Arms the bit-identity restart probe (see
    /// [`Self::restart_probe_at`]).
    pub fn with_restart_probe(mut self, at_secs: f64) -> Self {
        self.restart_probe_at = Some(at_secs);
        self
    }
}

fn checkpoint_err(e: SnapError) -> TierMemError {
    TierMemError::Checkpoint(e.to_string())
}

/// Executes the health monitor's directives for this tick's incidents.
///
/// Rollback semantics: the memory substrate is repaired in place first
/// (the restored controller must read consistent accounting), then the
/// last *known-good* checkpoint generation is restored — newer
/// generations are marked suspect (renamed `.suspect` on disk, dropped
/// from the in-memory ring) so neither this rollback nor a later crash
/// restart can resurrect state captured after the fault began. With no
/// known-good generation the controller restarts cold.
#[allow(clippy::too_many_arguments)]
fn handle_incidents(
    incidents: &[Incident],
    now: f64,
    mon: &mut HealthMonitor,
    policy: &mut dyn Policy,
    mem: &mut TieredMemory,
    ckpt_store: &mut Option<CheckpointStore>,
    ckpt_ring: &mut VecDeque<(u64, Vec<u8>)>,
    last_good_gen: &mut Option<u64>,
    crash_stopped: &mut bool,
    tele: &Obs,
) -> Result<(), TierMemError> {
    for incident in incidents {
        let directive = mon.on_incident(now, incident);
        if tele.is_enabled() {
            tele.count("health.incidents", 1);
            tele.event(
                now,
                "health",
                Severity::Warn,
                "incident",
                &[
                    ("kind", incident.label().to_string()),
                    ("detail", incident.detail()),
                    ("directive", format!("{directive:?}")),
                ],
            );
        }
        match directive {
            Directive::Continue => {}
            Directive::Repair => {
                let fixed = mem.repair_accounting();
                mon.note_repair(now, fixed);
                if tele.is_enabled() {
                    tele.count("health.repairs", 1);
                }
            }
            Directive::Rollback => {
                if tele.is_enabled() {
                    tele.count("health.rollbacks", 1);
                    tele.dump_flight_recorder("health rollback");
                }
                mem.repair_accounting();
                let (generation, payload): (Option<u64>, Option<Vec<u8>>) = match ckpt_store {
                    Some(store) => match *last_good_gen {
                        Some(g) => {
                            store.quarantine_newer_than(g).map_err(checkpoint_err)?;
                            match store
                                .load_latest_with_generation()
                                .map_err(checkpoint_err)?
                            {
                                Some((got, p)) => (Some(got), Some(p)),
                                None => (None, None),
                            }
                        }
                        None => (None, None),
                    },
                    None => {
                        match *last_good_gen {
                            Some(g) => {
                                while ckpt_ring.back().is_some_and(|(bg, _)| *bg > g) {
                                    ckpt_ring.pop_back();
                                }
                            }
                            None => ckpt_ring.clear(),
                        }
                        ckpt_ring
                            .iter()
                            .rev()
                            .find_map(|(g, blob)| {
                                unseal(blob).ok().map(|p| (Some(*g), Some(p.to_vec())))
                            })
                            .unwrap_or((None, None))
                    }
                };
                policy.on_controller_crash();
                policy.on_controller_restart(mem, payload.as_deref());
                policy.after_rollback(now);
                mon.on_rollback_complete(now, generation);
                if tele.is_enabled() {
                    tele.event(
                        now,
                        "health",
                        Severity::Warn,
                        "rollback",
                        &[(
                            "generation",
                            generation.map_or_else(|| "cold".to_string(), |g| g.to_string()),
                        )],
                    );
                }
            }
            Directive::Quarantine => {
                mem.repair_accounting();
                policy.enter_quarantine(now);
                if tele.is_enabled() {
                    tele.count("health.quarantines", 1);
                    tele.event(now, "health", Severity::Error, "quarantine", &[]);
                    tele.dump_flight_recorder("health quarantine");
                }
            }
            Directive::CrashStop => {
                if !*crash_stopped {
                    policy.on_controller_crash();
                    *crash_stopped = true;
                    if tele.is_enabled() {
                        tele.count("health.crash_stops", 1);
                        tele.event(now, "health", Severity::Error, "crash_stop", &[]);
                        tele.dump_flight_recorder("health crash-stop");
                    }
                }
                mem.repair_accounting();
            }
        }
    }
    Ok(())
}

/// Renders the `/status` JSON document published to the telemetry hub:
/// run progress, the active scenario phase, the supervisor's degradation
/// mode, health state, and currently firing alerts. Hand-rolled like the
/// rest of the JSON surface — the schema is small and dependency-free.
#[allow(clippy::too_many_arguments)]
fn render_status(
    policy: &str,
    tick: u64,
    n_ticks: u64,
    now: f64,
    duration: f64,
    phase: Option<(u32, &str)>,
    supervisor: Option<&'static str>,
    health: &str,
    firing: &[&str],
    violated_ticks: u64,
) -> String {
    let progress = if n_ticks == 0 {
        1.0
    } else {
        (tick + 1) as f64 / n_ticks as f64
    };
    let mut s = String::with_capacity(256);
    s.push('{');
    s.push_str(&format!("\"policy\":{},", json_string(policy)));
    s.push_str(&format!("\"tick\":{tick},\"ticks_total\":{n_ticks},"));
    s.push_str(&format!("\"t_secs\":{},", json_f64(now)));
    s.push_str(&format!("\"duration_secs\":{},", json_f64(duration)));
    s.push_str(&format!("\"progress\":{},", json_f64(progress)));
    match phase {
        Some((id, label)) => s.push_str(&format!(
            "\"scenario_phase\":{{\"id\":{id},\"label\":{}}},",
            json_string(label)
        )),
        None => s.push_str("\"scenario_phase\":null,"),
    }
    match supervisor {
        Some(mode) => s.push_str(&format!("\"supervisor_mode\":{},", json_string(mode))),
        None => s.push_str("\"supervisor_mode\":null,"),
    }
    s.push_str(&format!("\"health\":{},", json_string(health)));
    s.push_str("\"alerts_firing\":[");
    for (i, name) in firing.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_string(name));
    }
    s.push_str("],");
    s.push_str(&format!("\"violated_ticks\":{violated_ticks}"));
    s.push('}');
    s
}

impl Experiment {
    /// Creates an experiment. Duration defaults to the load pattern's
    /// length (or 240 s for open-ended patterns).
    ///
    /// The reference max load is the FMEM_ALL queueing knee divided by
    /// the [`burst_headroom`] of the configured burstiness, so that —
    /// exactly as in the paper's Fig. 5 setup — a load pattern peaking at
    /// 100 % is "the maximum capacity that FMEM_ALL can handle" without
    /// violating the SLO (at the 1 % tolerance used throughout).
    pub fn new(cfg: SimConfig, lc: LcSpec, load: LoadPattern, bes: Vec<BeSpec>) -> Self {
        let duration = match load.duration_secs() {
            d if d.is_finite() && d > 0.0 => d,
            _ => 240.0,
        };
        let knee = lc.max_load(lc.full_fmem_hit_ratio(cfg.mem.fmem_bytes()));
        let lc_max_ref = knee / burst_headroom(cfg.burst_sigma);
        Self {
            cfg,
            lc,
            load,
            bes,
            duration_secs: duration,
            lc_max_ref,
            fault_plan: FaultPlan::none(),
            legacy_accounting: false,
            checkpoints: None,
            obs: None,
            slo_streak_dump: None,
            health: None,
            scenario: None,
            hub: None,
            alerts: None,
        }
    }

    /// Overrides the run length.
    pub fn with_duration(mut self, secs: f64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Switches the run to the legacy O(total pages) accounting paths
    /// (see [`Self::legacy_accounting`]).
    pub fn with_legacy_accounting(mut self) -> Self {
        self.legacy_accounting = true;
        self
    }

    /// Installs a fault-injection schedule (see [`mtat_tiermem::faults`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the reference max load.
    pub fn with_lc_max_ref(mut self, rps: f64) -> Self {
        self.lc_max_ref = rps;
        self
    }

    /// Enables PP-M checkpointing (see [`CheckpointCfg`]).
    pub fn with_checkpoints(mut self, cfg: CheckpointCfg) -> Self {
        self.checkpoints = Some(cfg);
        self
    }

    /// Attaches an explicit telemetry handle instead of consulting
    /// `MTAT_OBS` (see [`Experiment::obs`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Arms the sustained-SLO-violation flight-recorder dump: after
    /// `ticks` consecutive violating ticks the recorder is dumped once
    /// (see [`Experiment::slo_streak_dump`]).
    pub fn with_slo_streak_dump(mut self, ticks: u32) -> Self {
        self.slo_streak_dump = Some(ticks);
        self
    }

    /// Enables the self-healing health subsystem (see [`crate::health`]).
    /// Detections then trigger autonomous recovery — accounting repair,
    /// checkpoint rollback, quarantine — instead of aborting the run.
    pub fn with_health(mut self, cfg: HealthConfig) -> Self {
        self.health = Some(cfg);
        self
    }

    /// Drives the run through an adversarial workload scenario (see
    /// [`Experiment::scenario`]). The spec is compiled at run start; a
    /// malformed spec fails [`Self::try_run`] with
    /// [`TierMemError::InvalidConfig`] instead of panicking mid-run.
    pub fn with_scenario(mut self, spec: ScenarioSpec) -> Self {
        self.scenario = Some(spec);
        self
    }

    /// Publishes live metrics/health/status snapshots (and an SSE tail
    /// of the event stream) to a telemetry hub, typically one served
    /// over HTTP by [`mtat_obs::serve::TelemetryServer`] (see
    /// [`Experiment::hub`]).
    pub fn with_hub(mut self, hub: TelemetryHub) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Arms the SLO burn-rate alert engine with the given rules (see
    /// [`Experiment::alerts`] and [`mtat_obs::alert`]).
    pub fn with_alerts(mut self, rules: Vec<AlertRule>) -> Self {
        self.alerts = Some(rules);
        self
    }

    /// Runs the experiment under `policy`, panicking on runtime errors.
    ///
    /// # Panics
    ///
    /// Panics if the configured workloads do not fit in the configured
    /// memory (a misconfigured experiment, not a runtime condition), or
    /// if [`Self::try_run`] reports an audit violation or checkpoint
    /// I/O failure.
    pub fn run(&self, policy: &mut dyn Policy) -> RunResult {
        match self.try_run(policy) {
            Ok(r) => r,
            Err(e) => panic!("experiment run failed: {e}"),
        }
    }

    /// Runs the experiment under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`TierMemError::Audit`] when the runtime invariant
    /// auditor (enabled by default in debug builds, or via `MTAT_AUDIT`)
    /// detects an accounting violation,
    /// [`TierMemError::Checkpoint`] when checkpoint persistence fails,
    /// [`TierMemError::OutOfMemory`] when the configured workloads do
    /// not fit in the configured memory, and
    /// [`TierMemError::InvalidConfig`] for a malformed adversarial
    /// scenario — misconfigured experiments surface as typed errors so
    /// a matrix harness can fail one cell without `catch_unwind`.
    pub fn try_run(&self, policy: &mut dyn Policy) -> Result<RunResult, TierMemError> {
        let page_size = self.cfg.mem.page_size();
        let mut mem = TieredMemory::new(self.cfg.mem);
        let lc_id = mem.register_workload(
            self.lc.rss_bytes,
            policy.initial_placement(WorkloadClass::Lc),
        )?;
        let mut be_ids = Vec::with_capacity(self.bes.len());
        for be in &self.bes {
            be_ids.push(
                mem.register_workload(be.rss_bytes, policy.initial_placement(WorkloadClass::Be))?,
            );
        }

        // Popularity distributions, hottest-first by rank. Mutable: an
        // adversarial scenario swaps them at phase boundaries.
        let mut be_pops: Vec<Popularity> = self
            .bes
            .iter()
            .zip(&be_ids)
            .map(|(spec, &id)| spec.popularity(mem.region(id).len()))
            .collect();
        // Fast path: register the weights with the page table so each
        // BE's FMem hit ratio is an incrementally maintained counter
        // (O(1) per migration) instead of an O(pages) rescan per tick,
        // and precompute the sampler's weight tables for batched draws.
        let mut be_tables: Vec<mtat_tiermem::sampler::WeightTable> = if self.legacy_accounting {
            Vec::new()
        } else {
            for (pop, &id) in be_pops.iter().zip(&be_ids) {
                mem.register_popularity(id, pop.weights())?;
            }
            be_pops.iter().map(|p| p.to_weight_table()).collect()
        };

        // Adversarial scenario: compile the mutator set into a
        // deterministic piecewise-constant schedule up front, so a
        // malformed spec fails the run (and its matrix cell) cleanly
        // before any tick executes.
        let schedule: Option<ScenarioSchedule> = match &self.scenario {
            Some(spec) => Some(
                spec.compile(self.cfg.tick_secs, self.duration_secs, self.bes.len())
                    .map_err(|e| TierMemError::InvalidConfig {
                        what: "scenario",
                        detail: e.to_string(),
                    })?,
            ),
            None => None,
        };
        let mut cur_phase: u32 = 0;
        let mut cur_pop_muts: Vec<Option<PopMutation>> = vec![None; self.bes.len()];

        let mut sampler = AccessSampler::new(self.cfg.sampler_period, self.cfg.seed ^ 0x5A)
            .expect("valid sampler period");
        let mut burst_rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xB0);
        let mut engine =
            MigrationEngine::new(self.cfg.migration_bw, page_size, self.cfg.interval_secs)
                .expect("valid migration configuration");

        // Fault layer. When the plan is empty no hook is ever touched,
        // no observation is cloned, and the run is bit-identical to one
        // without fault support.
        let mut injector = FaultInjector::new(self.fault_plan.clone());
        let faults_enabled = !injector.is_disabled();
        if faults_enabled {
            engine.set_fault_seed(self.fault_plan.seed);
        }

        // Telemetry: an explicit handle wins, otherwise `MTAT_OBS`
        // decides. A disabled handle is inert (one `Option` check per
        // call) and telemetry never feeds back into the physics, so
        // runs are bit-identical with observability on or off.
        let tele = self.obs.clone().unwrap_or_else(Obs::from_env);
        if tele.is_enabled() {
            sampler.set_obs(tele.clone());
            engine.set_obs(tele.clone());
            tele.count("runner.runs", 1);
            tele.event(
                0.0,
                "runner",
                Severity::Info,
                "run_start",
                &[
                    ("policy", policy.name().to_string()),
                    ("load", self.load.describe()),
                    ("duration_secs", format!("{:.0}", self.duration_secs)),
                    ("seed", self.cfg.seed.to_string()),
                ],
            );
        }
        policy.set_obs(&tele);
        // Live telemetry plane: the hub receives rendered snapshots at
        // interval boundaries plus a tail of every obs event. Server
        // threads only ever read what is published here — publication
        // is one-way, so serving cannot perturb the physics.
        if let Some(hub) = &self.hub {
            tele.attach_hub(hub);
        }
        // SLO burn-rate alerting, fed from the same per-tick violation
        // verdict the SLO accounting uses. Sim-time windows only: the
        // transition log (timestamps included) replays bit-identically.
        let mut alert_engine: Option<BurnRateEngine> = self.alerts.clone().map(BurnRateEngine::new);
        let mut alerts_seen = 0usize;
        let mut violated_ticks: u64 = 0;
        // Root span for the whole run; every per-tick span nests under
        // it. Closed by the guard when `try_run` returns.
        let _run_span = tele.span(0.0, "run");
        let max_history = 1 + self
            .fault_plan
            .windows
            .iter()
            .map(|w| match w.kind {
                FaultKind::TelemetryStale { ticks } => ticks as usize,
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        // Observation snapshots are kept only when some fault window can
        // actually delay telemetry; the snapshot ring and the degraded
        // policy view below reuse their buffers across ticks instead of
        // cloning the observation vector (and every per-page `sampled`
        // vector inside it) each tick.
        let keep_history = faults_enabled && max_history > 1;
        let mut obs_history: VecDeque<Vec<WorkloadObs>> = VecDeque::with_capacity(max_history);
        let mut view_buf: Vec<WorkloadObs> = Vec::new();

        // Initial observations.
        let mut obs: Vec<WorkloadObs> = Vec::with_capacity(1 + self.bes.len());
        obs.push(WorkloadObs {
            id: lc_id,
            class: WorkloadClass::Lc,
            name: self.lc.name.clone(),
            rss_bytes: self.lc.rss_bytes,
            cores: self.lc.cores,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: self.lc.slo_secs,
            hit_ratio: mem.residency(lc_id).fmem_usage_ratio(),
            access_rate: 0.0,
            throughput: 0.0,
            sampled: vec![0; mem.region(lc_id).len()],
            touched: Default::default(),
            slo_violated: false,
        });
        for (spec, &id) in self.bes.iter().zip(&be_ids) {
            obs.push(WorkloadObs {
                id,
                class: WorkloadClass::Be,
                name: spec.name.clone(),
                rss_bytes: spec.rss_bytes,
                cores: spec.cores,
                load_rps: 0.0,
                p99_secs: 0.0,
                slo_secs: f64::INFINITY,
                hit_ratio: 0.0,
                access_rate: 0.0,
                throughput: 0.0,
                sampled: vec![0; mem.region(id).len()],
                touched: Default::default(),
                slo_violated: false,
            });
        }
        policy.init(&mem, &obs);
        // Demand-driven telemetry: policies that never read per-page
        // sampled counts (e.g. FMEM_ALL) get the whole PEBS pass skipped
        // — the physics never read `sampled`, so outputs are identical.
        // The legacy mode always samples, as the pre-optimization runner
        // did.
        let sample_pages = self.legacy_accounting || policy.wants_page_samples();

        let tick_secs = self.cfg.tick_secs;
        let n_ticks = (self.duration_secs / tick_secs).round() as u64;
        let ticks_per_interval = self.cfg.ticks_per_interval();
        let sigma = self.cfg.burst_sigma;

        // Checkpointing state. On-disk stores get atomic writes and
        // generation pruning from `CheckpointStore`; the in-memory ring
        // keeps the same sealed envelope so corruption detection and
        // generation fallback behave identically.
        let ckpt_cfg = self.checkpoints.as_ref();
        let mut ckpt_store: Option<CheckpointStore> = match ckpt_cfg {
            Some(ck) => match &ck.dir {
                Some(dir) => Some(
                    CheckpointStore::open(dir.clone(), ck.retain.max(1)).map_err(checkpoint_err)?,
                ),
                None => None,
            },
            None => None,
        };
        let mut ckpt_ring: VecDeque<(u64, Vec<u8>)> = VecDeque::new();
        let mut ring_next_gen: u64 = 1;
        let mut boundaries_seen: u64 = 0;
        let mut probe_pending = ckpt_cfg.and_then(|ck| ck.restart_probe_at);
        let mut ppm_was_down = false;
        let audit_on = audit_enabled();

        // Self-healing state. The monitor owns the health state machine
        // and rollback budget; `last_good_gen` tracks the newest
        // checkpoint generation captured while the system was verifiably
        // healthy (newer generations are treated as suspect on
        // rollback). `crash_stopped` models the ablation arm that kills
        // the daemon permanently on first incident.
        let mut monitor: Option<HealthMonitor> = self.health.clone().map(HealthMonitor::new);
        let mut last_good_gen: Option<u64> = None;
        let mut crash_stopped = false;
        let mut sac_poison_was = false;

        let mut ticks = Vec::with_capacity(n_ticks as usize);
        let mut lc_requests = 0.0;
        let mut lc_violated_requests = 0.0;
        let mut be_ops = vec![0.0; self.bes.len()];

        // Bandwidth contention (lagged feedback): last tick's per-tier
        // demand sets this tick's latency-inflation multipliers.
        let bw = self.cfg.bandwidth;
        let mut fmem_util = 0.0f64;
        let mut smem_util = 0.0f64;

        // Sustained-SLO-violation dump trigger state (satellite of the
        // flight recorder): counts consecutive violating ticks and
        // re-arms only once the streak breaks.
        let mut slo_streak: u32 = 0;
        let mut streak_dumped = false;

        for tick_index in 0..n_ticks {
            let now = tick_index as f64 * tick_secs;
            let _tick_span = tele.span(now, "tick");

            // ---- Adversarial scenario phase ----
            // The scenario mutates the *workload*, not the policy's
            // view: at a phase boundary the mutated BE popularity is
            // materialized and re-registered (the incremental resident
            // mass recomputes from current placement, so accounting
            // stays exact), the sampler weight tables are rebuilt, and
            // the new phase id is announced on the obs stream.
            let phase = schedule.as_ref().map(|s| s.phase_at(tick_index));
            if let Some(ph) = phase {
                if ph.id != cur_phase {
                    for (bi, (spec, &id)) in self.bes.iter().zip(&be_ids).enumerate() {
                        let want = ph.be[bi].pop;
                        if want == cur_pop_muts[bi] {
                            continue;
                        }
                        let n = mem.region(id).len();
                        let pop = match want {
                            Some(m) => m.materialize(spec.pattern, n).map_err(|e| {
                                TierMemError::InvalidConfig {
                                    what: "scenario popularity",
                                    detail: e.to_string(),
                                }
                            })?,
                            None => spec.popularity(n),
                        };
                        if !self.legacy_accounting {
                            mem.register_popularity(id, pop.weights())?;
                            be_tables[bi] = pop.to_weight_table();
                        }
                        be_pops[bi] = pop;
                        cur_pop_muts[bi] = want;
                    }
                    cur_phase = ph.id;
                    if tele.is_enabled() {
                        tele.count("runner.scenario_phases", 1);
                        tele.event(
                            now,
                            "scenario",
                            Severity::Info,
                            "phase",
                            &[
                                ("id", ph.id.to_string()),
                                ("label", ph.label.clone()),
                                ("lc_load_mult", format!("{:.3}", ph.lc_load_mult)),
                            ],
                        );
                    }
                }
            }

            // ---- Fault effects for this tick ----
            let tf = if faults_enabled {
                let tf = injector.begin_tick(now);
                sampler.set_fault_state(tf.sampler_blackout, tf.sampler_keep);
                tf
            } else {
                TickFaults::nominal()
            };
            // A contention spike inflates both tiers' real latencies.
            let (cont_fmem_util, cont_smem_util) = if faults_enabled {
                (
                    (fmem_util + tf.bandwidth_extra_util).min(1.0),
                    (smem_util + tf.bandwidth_extra_util).min(1.0),
                )
            } else {
                (fmem_util, smem_util)
            };

            // ---- PP-M crash/restart edges ----
            // A `PpmCrash` fault models the user-space daemon dying
            // while the in-kernel PP-E survives: the policy keeps
            // enforcing its last plan but makes no new decisions. On
            // recovery a fresh daemon reloads the newest checkpoint
            // generation that passes verification (corrupt generations
            // are skipped), or restarts cold when none exists.
            if faults_enabled && !crash_stopped && tf.ppm_down != ppm_was_down {
                if tf.ppm_down {
                    policy.on_controller_crash();
                    if tele.is_enabled() {
                        tele.count("runner.ppm_crashes", 1);
                        tele.event(now, "runner", Severity::Warn, "ppm_crash", &[]);
                        tele.dump_flight_recorder("ppm crash");
                    }
                } else {
                    let restore_t0 = std::time::Instant::now();
                    let (generation, payload): (Option<u64>, Option<Vec<u8>>) = match &ckpt_store {
                        Some(store) => match store
                            .load_latest_with_generation()
                            .map_err(checkpoint_err)?
                        {
                            Some((gen, p)) => (Some(gen), Some(p)),
                            None => (None, None),
                        },
                        None => ckpt_ring
                            .iter()
                            .rev()
                            .find_map(|(g, blob)| {
                                unseal(blob).ok().map(|p| (Some(*g), Some(p.to_vec())))
                            })
                            .unwrap_or((None, None)),
                    };
                    if tele.is_enabled() {
                        tele.count("runner.ppm_restarts", 1);
                        tele.observe(
                            "ckpt.restore_ns",
                            u64::try_from(restore_t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                        let source = match (&ckpt_store, &payload) {
                            (_, None) => "cold",
                            (Some(_), Some(_)) => "disk",
                            (None, Some(_)) => "ring",
                        };
                        tele.event(
                            now,
                            "runner",
                            Severity::Warn,
                            "ppm_restart",
                            &[
                                ("source", source.to_string()),
                                (
                                    "generation",
                                    generation.map_or_else(|| "-".to_string(), |g| g.to_string()),
                                ),
                                (
                                    "payload_bytes",
                                    payload.as_ref().map_or(0, Vec::len).to_string(),
                                ),
                            ],
                        );
                        tele.dump_flight_recorder("ppm restart");
                    }
                    policy.on_controller_restart(&mem, payload.as_deref());
                }
                ppm_was_down = tf.ppm_down;
            }

            // ---- Poison / drift fault application ----
            // SAC poisoning corrupts once per window (rising edge): the
            // NaN parameters persist until a rollback restores a clean
            // checkpoint, exactly like a corrupted weight load would.
            if faults_enabled && tf.sac_poison && !sac_poison_was && !crash_stopped && !tf.ppm_down
            {
                policy.inject_poison();
                if tele.is_enabled() {
                    tele.count("runner.sac_poisons", 1);
                    tele.event(now, "runner", Severity::Warn, "sac_poison", &[]);
                }
            }
            sac_poison_was = tf.sac_poison;
            // Accumulator drift perturbs the incrementally maintained
            // popularity mass of the first BE workload each tick — the
            // legacy path recomputes from scratch, so it has no
            // incremental state to drift.
            if faults_enabled && tf.accum_drift != 0.0 && !self.legacy_accounting {
                if let Some(&bid) = be_ids.first() {
                    mem.debug_corrupt_popularity(bid, tf.accum_drift);
                }
            }

            // ---- LC performance from current placement ----
            let level = self.load.level_at(now);
            // Flash crowds scale the offered load on top of the load
            // pattern. With no scenario the multiplier is exactly 1.0,
            // and `x * 1.0` is bit-exact for finite x — the no-scenario
            // run stays bit-identical to the pre-scenario runner.
            let offered = level * self.lc_max_ref * phase.map_or(1.0, |p| p.lc_load_mult);
            let burst = if sigma > 0.0 {
                // Truncated at ±2.5σ: real load generators have bounded
                // short-term variance, and a bounded tail is what makes
                // "maximum load without SLO violation" a sharp boundary.
                let z = standard_normal(&mut burst_rng).clamp(-2.5, 2.5);
                (sigma * z - sigma * sigma / 2.0).exp()
            } else {
                1.0
            };
            let load_rps = offered * burst;
            // Effective tier latencies under last tick's contention.
            let lat_f =
                mtat_tiermem::FMEM_LATENCY_NS * 1e-9 * bw.latency_multiplier(cont_fmem_util);
            let lat_s =
                mtat_tiermem::SMEM_LATENCY_NS * 1e-9 * bw.latency_multiplier(cont_smem_util);
            let lc_hit = mem.residency(lc_id).fmem_usage_ratio();
            let lc_pen = policy.smem_access_penalty(lc_id);
            let lc_service = service_time(
                self.lc.cpu_secs,
                self.lc.accesses_per_req,
                lc_hit,
                lat_f,
                lat_s,
                lc_pen,
            );
            let p99 = latency::p99_response(load_rps, lc_service, self.lc.cores);
            let violated = p99 > self.lc.slo_secs;
            let achieved = latency::achieved_throughput(load_rps, lc_service, self.lc.cores);
            lc_requests += offered * tick_secs;
            if violated {
                lc_violated_requests += offered * tick_secs;
                violated_ticks += 1;
            }
            if let Some(eng) = &mut alert_engine {
                let reqs = offered * tick_secs;
                eng.observe(now, if violated { reqs } else { 0.0 }, reqs);
                let transitions = eng.transitions();
                for t in &transitions[alerts_seen..] {
                    if tele.is_enabled() {
                        tele.count("alert.transitions", 1);
                        tele.gauge_merged("alert.fast_burn", t.fast_burn, GaugeMerge::Max);
                        let sev = if t.to == AlertState::Firing {
                            Severity::Warn
                        } else {
                            Severity::Info
                        };
                        tele.event(
                            now,
                            "alert",
                            sev,
                            "transition",
                            &[
                                ("rule", t.rule.clone()),
                                ("from", t.from.label().to_string()),
                                ("to", t.to.label().to_string()),
                                ("fast_burn", format!("{:.3}", t.fast_burn)),
                                ("slow_burn", format!("{:.3}", t.slow_burn)),
                            ],
                        );
                        if t.to == AlertState::Firing {
                            tele.count("alert.firing", 1);
                            // A firing alert is exactly the moment an
                            // on-call would want the recent event tail.
                            tele.dump_flight_recorder("alert firing");
                        }
                    }
                }
                alerts_seen = transitions.len();
                if tele.is_enabled() {
                    tele.gauge_merged(
                        "alert.firing_now",
                        eng.firing().len() as f64,
                        GaugeMerge::Sum,
                    );
                }
            }
            if tele.is_enabled() {
                tele.count("runner.ticks", 1);
                if violated {
                    tele.count("runner.slo_violations", 1);
                }
                // The `as` cast saturates, so an unstable queue's
                // infinite P99 lands in the histogram's top bucket.
                tele.observe("runner.lc_p99_ns", (p99 * 1e9).round() as u64);
                tele.gauge("runner.lc_load_rps", load_rps);
            }
            if let Some(n) = self.slo_streak_dump {
                if violated {
                    slo_streak = slo_streak.saturating_add(1);
                    if slo_streak >= n && !streak_dumped {
                        streak_dumped = true;
                        if tele.is_enabled() {
                            tele.count("runner.slo_streak_dumps", 1);
                            tele.event(
                                now,
                                "runner",
                                Severity::Warn,
                                "slo_streak",
                                &[("ticks", slo_streak.to_string())],
                            );
                            tele.dump_flight_recorder("slo violation streak");
                        }
                    }
                } else {
                    slo_streak = 0;
                    streak_dumped = false;
                }
            }

            // Demand-side access rate: queued requests still represent
            // arriving memory demand, so a saturated server must not
            // mask overload from the policy's Memory Access Count state.
            let lc_access_rate = load_rps * self.lc.accesses_per_req;
            {
                let o = &mut obs[0];
                o.load_rps = load_rps;
                o.p99_secs = p99;
                o.hit_ratio = lc_hit;
                o.access_rate = lc_access_rate;
                o.throughput = achieved;
                o.slo_violated = violated;
                // Uniform LC traffic: every page gets rate/n accesses.
                if sample_pages {
                    let n = o.sampled.len();
                    let per_page = lc_access_rate * tick_secs / n as f64;
                    if self.legacy_accounting {
                        for s in o.sampled.iter_mut() {
                            let ev = sampler.sample_count(per_page);
                            *s = sampler.estimate_from_samples(ev);
                        }
                    } else {
                        sampler.sample_uniform_estimates_touched(
                            &mut o.sampled,
                            &mut o.touched,
                            per_page,
                        );
                    }
                }
            }

            // ---- BE performance ----
            let mut be_thr_tick = Vec::with_capacity(self.bes.len());
            for (bi, (spec, &id)) in self.bes.iter().zip(&be_ids).enumerate() {
                let pop = &be_pops[bi];
                let hit: f64 = if self.legacy_accounting {
                    let base = mem.region(id).base;
                    mem.pages_in_tier(id, Tier::FMem)
                        .map(|p| pop.weight((p.0 - base) as usize))
                        .sum()
                } else {
                    mem.resident_popularity(id)
                        .expect("weights registered before the loop")
                };
                let pen = policy.smem_access_penalty(id);
                let s_op = service_time(
                    spec.cpu_secs_per_op,
                    spec.accesses_per_op,
                    hit,
                    lat_f,
                    lat_s,
                    pen,
                );
                let thr = spec.cores as f64 / s_op;
                be_ops[bi] += thr * tick_secs;
                be_thr_tick.push(thr);
                // An antagonistic burst multiplies the workload's memory
                // traffic — sampled pressure and bandwidth demand — not
                // its op throughput (same bit-exactness argument as the
                // LC multiplier above).
                let access_rate =
                    thr * spec.accesses_per_op * phase.map_or(1.0, |p| p.be[bi].rate_mult);
                let o = &mut obs[1 + bi];
                o.hit_ratio = hit;
                o.access_rate = access_rate;
                o.throughput = thr;
                if self.legacy_accounting {
                    for (rank, s) in o.sampled.iter_mut().enumerate() {
                        let true_count = access_rate * tick_secs * pop.weight(rank);
                        let ev = sampler.sample_count(true_count);
                        *s = sampler.estimate_from_samples(ev);
                    }
                } else if sample_pages {
                    sampler.sample_weighted_estimates_touched(
                        &mut o.sampled,
                        &mut o.touched,
                        access_rate * tick_secs,
                        &be_tables[bi],
                    );
                }
            }

            // ---- Policy-visible observations ----
            // Under telemetry faults the policy sees a degraded copy:
            // delayed (staleness), blinded (blackout hides the access
            // stream while P99/throughput stay live), and noisy. The
            // physics above always use the true values. The copy is
            // materialized — into a buffer reused across ticks — only on
            // ticks where some fault actually distorts it; otherwise the
            // policy reads the live observations directly.
            let (obs_age_ticks, use_view) = if faults_enabled {
                if keep_history {
                    let mut snap = if obs_history.len() == max_history {
                        obs_history.pop_front().expect("ring is full")
                    } else {
                        Vec::new()
                    };
                    copy_obs_into(&mut snap, &obs);
                    obs_history.push_back(snap);
                }
                let delay = if keep_history {
                    (tf.telemetry_delay_ticks as usize).min(obs_history.len() - 1)
                } else {
                    0
                };
                if delay > 0 || tf.sampler_blackout || tf.telemetry_noise_amp > 0.0 {
                    let src: &[WorkloadObs] = if delay > 0 {
                        &obs_history[obs_history.len() - 1 - delay]
                    } else {
                        &obs
                    };
                    copy_obs_into(&mut view_buf, src);
                    if tf.sampler_blackout {
                        for o in &mut view_buf {
                            o.access_rate = 0.0;
                            for s in &mut o.sampled {
                                *s = 0;
                            }
                        }
                    }
                    if tf.telemetry_noise_amp > 0.0 {
                        for o in &mut view_buf {
                            o.p99_secs *= injector.noise_factor(tf.telemetry_noise_amp);
                            o.throughput *= injector.noise_factor(tf.telemetry_noise_amp);
                            o.slo_violated = o.p99_secs > o.slo_secs;
                        }
                    }
                    (delay as u64, true)
                } else {
                    (0, false)
                }
            } else {
                (0, false)
            };
            let policy_obs: &[WorkloadObs] = if use_view { &view_buf } else { &obs };

            // ---- Policy tick ----
            let interval_boundary = tick_index > 0 && tick_index % ticks_per_interval == 0;
            if faults_enabled {
                engine.set_tick_faults(tf.migration_bw_factor, tf.migration_fail_prob);
            }
            engine.begin_tick(tick_secs);
            {
                let mut sim = SimState {
                    mem: &mut mem,
                    migration: &mut engine,
                    workloads: policy_obs,
                    tick_secs,
                    now_secs: now,
                    interval_boundary,
                    obs_age_ticks,
                    fmem_bw_util: fmem_util,
                    smem_bw_util: smem_util,
                    scenario_phase: cur_phase,
                };
                policy.on_tick(&mut sim);
            }

            // ---- Checkpoint capture & bit-identity restart probe ----
            // Captures happen right after the boundary tick: the policy
            // has just reset its interval accumulators and handed PP-E
            // the new plan, so the snapshot sits exactly on a decision
            // boundary. While the controller is down nothing is
            // captured (there is no daemon to ask).
            if let Some(ck) = ckpt_cfg {
                if interval_boundary && !tf.ppm_down && !crash_stopped {
                    boundaries_seen += 1;
                    if boundaries_seen.is_multiple_of(ck.every_intervals.max(1)) {
                        // With health enabled, captures are gated on the
                        // policy's own health probe: a checkpoint of an
                        // already-poisoned controller would poison every
                        // future rollback, so it is skipped, not saved.
                        let probe = if monitor.is_some() {
                            policy.health_probe()
                        } else {
                            Ok(())
                        };
                        if let Err(surface) = &probe {
                            if tele.is_enabled() {
                                tele.count("ckpt.skips_unhealthy", 1);
                                tele.event(
                                    now,
                                    "runner",
                                    Severity::Warn,
                                    "checkpoint_skipped",
                                    &[("probe", surface.clone())],
                                );
                            }
                        } else if let Some(payload) = policy.checkpoint() {
                            let save_t0 = std::time::Instant::now();
                            let mut blob = seal(&payload);
                            // A torn device write: flip one byte of the
                            // sealed envelope so the checksum rejects
                            // this generation on restore and the loader
                            // falls back to the previous one.
                            if faults_enabled && tf.checkpoint_corrupt && !blob.is_empty() {
                                let mid = blob.len() / 2;
                                blob[mid] ^= 0xFF;
                            }
                            let generation = if let Some(store) = &mut ckpt_store {
                                let g = store.next_generation();
                                store.save_sealed(&blob).map_err(checkpoint_err)?;
                                g
                            } else {
                                let g = ring_next_gen;
                                ring_next_gen += 1;
                                ckpt_ring.push_back((g, blob));
                                while ckpt_ring.len() > ck.retain.max(1) {
                                    ckpt_ring.pop_front();
                                }
                                g
                            };
                            // Known-good generations are the rollback
                            // targets. Only a capture taken while the
                            // monitor reads Healthy (and not corrupted
                            // by the fault plan) qualifies.
                            let trustworthy = !(faults_enabled && tf.checkpoint_corrupt)
                                && monitor
                                    .as_ref()
                                    .is_none_or(HealthMonitor::checkpoint_trustworthy);
                            if trustworthy {
                                last_good_gen = Some(generation);
                            }
                            if tele.is_enabled() {
                                tele.count("ckpt.saves", 1);
                                tele.observe(
                                    "ckpt.save_ns",
                                    u64::try_from(save_t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                                );
                                tele.gauge("ckpt.payload_bytes", payload.len() as f64);
                                tele.event(
                                    now,
                                    "runner",
                                    Severity::Debug,
                                    "checkpoint",
                                    &[
                                        ("payload_bytes", payload.len().to_string()),
                                        ("generation", generation.to_string()),
                                        ("known_good", trustworthy.to_string()),
                                    ],
                                );
                            }
                        }
                    }
                    if probe_pending.is_some_and(|at| now >= at) {
                        probe_pending = None;
                        if let Some(payload) = policy.checkpoint() {
                            policy.on_controller_crash();
                            policy.on_controller_restart(&mem, Some(&payload));
                        }
                    }
                }
            }

            // ---- Health sentinels & runtime invariant audit ----
            // With the health subsystem enabled, detections become
            // incidents answered by the monitor's directive (repair,
            // rollback, quarantine) instead of aborting the run. Without
            // it the pre-existing fail-stop behavior is untouched.
            let mut incidents: Vec<Incident> = Vec::new();
            if let Some(mon) = &mut monitor {
                let skew = if faults_enabled {
                    tf.clock_skew_factor
                } else {
                    1.0
                };
                if let Some(i) = mon.observe_tick(now, violated, skew) {
                    incidents.push(i);
                }
                // NaN/poison sentinel on the policy's numeric surfaces.
                // Skipped in quarantine (the poisoned agent is contained,
                // not consulted) and while the daemon is down.
                if !mon.is_quarantined() && !crash_stopped && !tf.ppm_down {
                    if let Err(surface) = policy.health_probe() {
                        incidents.push(Incident::Poison(surface));
                    }
                }
            }
            if audit_on || monitor.is_some() {
                if let Err(v) = mem.audit() {
                    if monitor.is_some() {
                        incidents.push(Incident::AuditViolation(v.to_string()));
                    } else {
                        if tele.is_enabled() {
                            tele.event(
                                now,
                                "runner",
                                Severity::Error,
                                "audit_violation",
                                &[("detail", v.to_string())],
                            );
                            if let Some(dump) = tele.dump_flight_recorder("audit violation") {
                                eprintln!("{dump}");
                            }
                        }
                        return Err(v.into());
                    }
                }
            }
            if interval_boundary && (audit_on || monitor.is_some() || tele.is_enabled()) {
                // Conservation across the partition plan: the bytes
                // the policy hands out must fit in FMem. `u64::MAX`
                // is the static policies' "everything" sentinel. The
                // plan total is also what telemetry reports, so it is
                // computed whenever either consumer wants it.
                let fmem_bytes = self.cfg.mem.fmem_bytes();
                let mut plan_bytes = 0u64;
                for o in obs.iter() {
                    if let Some(t) = policy.fmem_target(o.id) {
                        let t = if t == u64::MAX { fmem_bytes } else { t };
                        plan_bytes = plan_bytes.saturating_add(t);
                    }
                }
                if tele.is_enabled() {
                    tele.count("runner.intervals", 1);
                    tele.gauge("runner.plan_bytes", plan_bytes as f64);
                    tele.event(
                        now,
                        "runner",
                        Severity::Info,
                        "plan",
                        &[
                            ("plan_bytes", plan_bytes.to_string()),
                            ("fmem_bytes", fmem_bytes.to_string()),
                        ],
                    );
                }
                if (audit_on || monitor.is_some()) && plan_bytes > fmem_bytes {
                    let v = AuditViolation::PlanExceedsFmem {
                        plan_bytes,
                        fmem_bytes,
                    };
                    if monitor.is_some() {
                        incidents.push(Incident::AuditViolation(v.to_string()));
                    } else {
                        if tele.is_enabled() {
                            tele.event(
                                now,
                                "runner",
                                Severity::Error,
                                "audit_violation",
                                &[("detail", v.to_string())],
                            );
                            if let Some(dump) = tele.dump_flight_recorder("audit violation") {
                                eprintln!("{dump}");
                            }
                        }
                        return Err(v.into());
                    }
                }
            }

            // ---- Incident handling: autonomous recovery ----
            if !incidents.is_empty() {
                let mon = monitor.as_mut().expect("incidents require the monitor");
                handle_incidents(
                    &incidents,
                    now,
                    mon,
                    policy,
                    &mut mem,
                    &mut ckpt_store,
                    &mut ckpt_ring,
                    &mut last_good_gen,
                    &mut crash_stopped,
                    &tele,
                )?;
                // Post-recovery verification: if the substrate audit
                // still fails after the directive ran, the fault is
                // unrepairable and the run aborts as it would have
                // without the health subsystem.
                if let Err(v) = mem.audit() {
                    if tele.is_enabled() {
                        tele.event(
                            now,
                            "runner",
                            Severity::Error,
                            "audit_violation",
                            &[("detail", format!("unrepairable: {v}"))],
                        );
                        if let Some(dump) = tele.dump_flight_recorder("unrepairable violation") {
                            eprintln!("{dump}");
                        }
                    }
                    return Err(v.into());
                }
            }

            // Update the contention state for the next tick: workload
            // traffic split by tier plus migration traffic (which
            // touches both tiers).
            let mut fmem_demand = 0.0;
            let mut smem_demand = 0.0;
            for o in &obs {
                fmem_demand += BandwidthModel::demand_from_access_rate(o.access_rate * o.hit_ratio);
                smem_demand +=
                    BandwidthModel::demand_from_access_rate(o.access_rate * (1.0 - o.hit_ratio));
            }
            let mig_bw = engine.tick_bandwidth_bytes_per_sec();
            fmem_demand += mig_bw;
            smem_demand += mig_bw;
            fmem_util = bw.utilization(fmem_demand, true);
            smem_util = bw.utilization(smem_demand, false);
            if tele.is_enabled() {
                tele.gauge("runner.fmem_bw_util", fmem_util);
                tele.gauge("runner.smem_bw_util", smem_util);
                tele.gauge("runner.migration_bw_bytes_per_sec", mig_bw);
            }

            // ---- Record ----
            let fmem_bytes: Vec<u64> = std::iter::once(lc_id)
                .chain(be_ids.iter().copied())
                .map(|id| mem.fmem_bytes_of(id))
                .collect();
            ticks.push(TickRecord {
                t: now,
                lc_load_rps: load_rps,
                lc_p99: p99,
                lc_violated: violated,
                lc_fmem_ratio: lc_hit,
                fmem_bytes,
                be_throughput: be_thr_tick,
                migration_bw: engine.tick_bandwidth_bytes_per_sec(),
                fmem_bw_util: fmem_util,
                smem_bw_util: smem_util,
                degradation: policy.degradation(),
            });

            // ---- Live telemetry publication ----
            // Snapshots are rendered at interval boundaries (and on the
            // final tick) and handed to the hub whole; scrapes between
            // boundaries see the previous snapshot. Publication reads
            // sim state but writes none back.
            if let Some(hub) = &self.hub {
                if interval_boundary || tick_index + 1 == n_ticks {
                    if let Some(text) = tele.snapshot_prometheus(&[("policy", policy.name())]) {
                        hub.publish_metrics(text);
                    }
                    let (hstate, serving) = match &monitor {
                        Some(m) => (m.state().label(), !m.is_quarantined()),
                        None => ("healthy", true),
                    };
                    hub.publish_health(hstate, serving);
                    let firing: Vec<&str> = alert_engine
                        .as_ref()
                        .map(BurnRateEngine::firing)
                        .unwrap_or_default();
                    hub.publish_status(render_status(
                        policy.name(),
                        tick_index,
                        n_ticks,
                        now,
                        self.duration_secs,
                        phase.map(|p| (p.id, p.label.as_str())),
                        policy.degradation().map(|d| d.label()),
                        hstate,
                        &firing,
                        violated_ticks,
                    ));
                }
            }
        }

        debug_assert!(mem.check_invariants().is_ok(), "placement invariants");

        // The summary's final-audit verdict runs the *full* audit once,
        // unconditionally, so even runs with per-tick auditing disabled
        // report whether they ended consistent.
        let final_audit_ok = mem.audit().is_ok();
        let duration = n_ticks as f64 * tick_secs;
        Ok(RunResult {
            policy: policy.name().to_string(),
            lc_name: self.lc.name.clone(),
            be_names: self.bes.iter().map(|b| b.name.clone()).collect(),
            ticks,
            lc_requests,
            lc_violated_requests,
            be_avg_throughput: be_ops
                .iter()
                .map(|&o| if duration > 0.0 { o / duration } else { 0.0 })
                .collect(),
            be_perf_full: self
                .bes
                .iter()
                .map(|b| b.perf_full(self.cfg.mem.fmem_bytes(), page_size))
                .collect(),
            total_migration_bytes: engine.total_bytes_moved(),
            failed_moves: engine.failed_moves(),
            retried_moves: engine.retried_moves(),
            duration_secs: duration,
            tick_secs,
            health: monitor.map(|m| m.summary(final_audit_ok)),
            alerts: alert_engine
                .map(|e| e.transitions().iter().map(AlertRecord::from).collect())
                .unwrap_or_default(),
        })
    }

    /// Measures the maximum constant load (requests/s) the policy
    /// sustains without violating the SLO, per the paper's methodology:
    /// each probe runs `probe_secs`, the first `grace_secs` are excluded
    /// (policy convergence), and a load level passes if its violation
    /// rate stays at or below `tolerance`.
    ///
    /// The search scans *downward* from `hi_frac` in `scan_step`
    /// decrements until the first passing level, then bisects within the
    /// last failing gap. A top-down scan (rather than pure bisection)
    /// is robust to adaptive policies whose violation behaviour is not
    /// monotone in load — e.g. a policy that allocates aggressively only
    /// once the load is clearly high.
    pub fn find_max_load(
        &self,
        make_policy: &mut dyn FnMut() -> Box<dyn Policy>,
        opts: &MaxLoadSearch,
    ) -> f64 {
        let probe = |frac: f64, make_policy: &mut dyn FnMut() -> Box<dyn Policy>| -> bool {
            let mut exp = self.clone();
            exp.load = LoadPattern::Constant(frac);
            exp.duration_secs = opts.probe_secs;
            let mut policy = make_policy();
            let result = exp.run(policy.as_mut());
            result.violation_rate_after(opts.grace_secs) <= opts.tolerance
        };
        // Downward coarse scan.
        let mut frac = opts.hi_frac;
        let mut pass = None;
        while frac >= opts.lo_frac {
            if probe(frac, make_policy) {
                pass = Some(frac);
                break;
            }
            frac -= opts.scan_step;
        }
        let Some(mut lo) = pass else {
            return 0.0;
        };
        // Refine inside the gap (lo, lo + scan_step).
        let mut hi = (lo + opts.scan_step).min(opts.hi_frac);
        for _ in 0..opts.iterations {
            if hi - lo < 1e-4 {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if probe(mid, make_policy) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo * self.lc_max_ref
    }
}

/// Options for [`Experiment::find_max_load`].
#[derive(Debug, Clone)]
pub struct MaxLoadSearch {
    /// Length of each probe run (seconds).
    pub probe_secs: f64,
    /// Convergence window excluded from violation accounting (seconds).
    pub grace_secs: f64,
    /// Maximum tolerated violation rate.
    pub tolerance: f64,
    /// Lower bracket (fraction of the reference max load).
    pub lo_frac: f64,
    /// Upper bracket (fraction of the reference max load).
    pub hi_frac: f64,
    /// Coarse downward-scan step (fraction of the reference max load).
    pub scan_step: f64,
    /// Refinement bisection iterations inside the last failing gap.
    pub iterations: usize,
}

impl Default for MaxLoadSearch {
    fn default() -> Self {
        Self {
            probe_secs: 190.0,
            grace_secs: 70.0,
            tolerance: 0.01,
            lo_frac: 0.05,
            hi_frac: 1.05,
            scan_step: 0.05,
            iterations: 3,
        }
    }
}

/// The load multiplier a mean-one log-normal burst with parameter
/// `sigma` stays below 99 % of the time: `exp(2.326·σ − σ²/2)`. A
/// workload loaded at `knee / burst_headroom(σ)` therefore violates its
/// SLO on about 1 % of ticks — the tolerance used by
/// [`Experiment::find_max_load`].
pub fn burst_headroom(sigma: f64) -> f64 {
    if sigma <= 0.0 {
        1.0
    } else {
        (2.326 * sigma - sigma * sigma / 2.0).exp()
    }
}

/// Service time from explicit (possibly contention-inflated) tier
/// latencies, with a per-SMem-access penalty folded in.
fn service_time(
    cpu: f64,
    accesses: f64,
    hit_ratio: f64,
    lat_f: f64,
    lat_s: f64,
    smem_penalty: f64,
) -> f64 {
    let h = hit_ratio.clamp(0.0, 1.0);
    cpu + accesses * (h * lat_f + (1.0 - h) * (lat_s + smem_penalty))
}

/// Copies observations into a reusable buffer, reusing each entry's
/// existing `name` and `sampled` allocations instead of cloning fresh
/// ones (the per-page `sampled` vectors dominate the cost).
fn copy_obs_into(dst: &mut Vec<WorkloadObs>, src: &[WorkloadObs]) {
    dst.truncate(src.len());
    let filled = dst.len();
    for (d, s) in dst.iter_mut().zip(src) {
        d.id = s.id;
        d.class = s.class;
        d.name.clone_from(&s.name);
        d.rss_bytes = s.rss_bytes;
        d.cores = s.cores;
        d.load_rps = s.load_rps;
        d.p99_secs = s.p99_secs;
        d.slo_secs = s.slo_secs;
        d.hit_ratio = s.hit_ratio;
        d.access_rate = s.access_rate;
        d.throughput = s.throughput;
        d.sampled.clone_from(&s.sampled);
        d.touched.clone_from(&s.touched);
        d.slo_violated = s.slo_violated;
    }
    dst.extend(src[filled..].iter().cloned());
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::statics::StaticPolicy;
    use mtat_tiermem::{GIB, MIB};

    /// Small-scale workloads fitting the small test memory (1 GiB FMem,
    /// 8 GiB SMem, 1 MiB pages).
    fn small_lc() -> LcSpec {
        let mut s = LcSpec::redis();
        s.rss_bytes = (1.2 * GIB as f64) as u64;
        s
    }

    fn small_be() -> BeSpec {
        let mut s = BeSpec::sssp();
        s.rss_bytes = 2 * GIB;
        s
    }

    fn experiment(load: LoadPattern) -> Experiment {
        Experiment::new(SimConfig::small_test(), small_lc(), load, vec![small_be()])
            .with_duration(30.0)
    }

    #[test]
    fn fmem_all_meets_slo_at_moderate_load() {
        let exp = experiment(LoadPattern::Constant(0.5));
        let mut p = StaticPolicy::fmem_all();
        let r = exp.run(&mut p);
        assert_eq!(r.policy, "fmem_all");
        assert_eq!(r.ticks.len(), 30);
        assert_eq!(
            r.violation_rate(),
            0.0,
            "worst p99 {}",
            r.worst_p99_after(0.0)
        );
        // LC holds the whole FMem (1 GiB of its 1.2 GiB set).
        assert!(r.mean_lc_fmem_ratio() > 0.8);
    }

    #[test]
    fn smem_all_violates_at_max_load() {
        let exp = experiment(LoadPattern::Constant(1.0));
        let mut p = StaticPolicy::smem_all();
        let r = exp.run(&mut p);
        // Reference max assumes full FMem; from SMem it saturates.
        assert!(
            r.violation_rate_after(10.0) > 0.5,
            "rate {}",
            r.violation_rate_after(10.0)
        );
        // And the BE workload picks up the FMem the LC cannot use.
        let last = r.final_tick().expect("run produced ticks");
        assert_eq!(last.fmem_bytes[0], 0);
        assert!(last.fmem_bytes[1] > 0);
    }

    #[test]
    fn be_throughput_reflects_fmem_share() {
        // Under FMEM_ALL the BE runs from SMem; under SMEM_ALL it gets
        // all of FMem and must be faster.
        let exp = experiment(LoadPattern::Constant(0.2));
        let r_fmem = exp.run(&mut StaticPolicy::fmem_all());
        let r_smem = exp.run(&mut StaticPolicy::smem_all());
        assert!(
            r_smem.be_avg_throughput[0] > r_fmem.be_avg_throughput[0] * 1.05,
            "{} vs {}",
            r_smem.be_avg_throughput[0],
            r_fmem.be_avg_throughput[0]
        );
        assert!(r_smem.fairness() > r_fmem.fairness());
    }

    #[test]
    fn find_max_load_orders_policies() {
        let exp = experiment(LoadPattern::Constant(1.0));
        let opts = MaxLoadSearch {
            probe_secs: 20.0,
            grace_secs: 8.0,
            scan_step: 0.1,
            iterations: 4,
            ..MaxLoadSearch::default()
        };
        let max_fmem = exp.find_max_load(&mut || Box::new(StaticPolicy::fmem_all()), &opts);
        let max_smem = exp.find_max_load(&mut || Box::new(StaticPolicy::smem_all()), &opts);
        assert!(max_fmem > 0.0);
        assert!(
            max_smem < max_fmem,
            "SMem-only max {max_smem} must lag FMem-pinned {max_fmem}"
        );
    }

    #[test]
    fn burstiness_is_mean_preserving() {
        let mut cfg = SimConfig::small_test();
        cfg.burst_sigma = 0.3;
        let exp = Experiment::new(cfg, small_lc(), LoadPattern::Constant(0.5), vec![])
            .with_duration(200.0);
        let mut p = StaticPolicy::fmem_all();
        let r = exp.run(&mut p);
        let mean_load: f64 =
            r.ticks.iter().map(|t| t.lc_load_rps).sum::<f64>() / r.ticks.len() as f64;
        let offered = 0.5 * exp.lc_max_ref;
        assert!(
            (mean_load / offered - 1.0).abs() < 0.1,
            "mean {mean_load} vs offered {offered}"
        );
    }

    #[test]
    fn migration_accounting_is_reported() {
        let exp = experiment(LoadPattern::Constant(0.3));
        let mut p = StaticPolicy::smem_all(); // evicting LC costs bandwidth
        let r = exp.run(&mut p);
        assert!(r.total_migration_bytes > 0);
        assert!(r.avg_migration_bw() > 0.0);
        assert!(r.avg_migration_bw() <= exp.cfg.migration_bw);
    }

    #[test]
    fn service_time_adds_smem_cost() {
        let lat_f = 73e-9;
        let lat_s = 202e-9;
        let base = service_time(1e-6, 10.0, 0.5, lat_f, lat_s, 0.0);
        let pen = service_time(1e-6, 10.0, 0.5, lat_f, lat_s, 100e-9);
        // 10 accesses × 0.5 smem × 100ns = 500ns.
        assert!((pen - base - 500e-9).abs() < 1e-15);
        // At hit ratio 1 the penalty disappears.
        assert_eq!(
            service_time(1e-6, 10.0, 1.0, lat_f, lat_s, 100e-9),
            service_time(1e-6, 10.0, 1.0, lat_f, lat_s, 0.0)
        );
        // Inflated latencies raise the service time.
        assert!(service_time(1e-6, 10.0, 0.5, lat_f * 2.0, lat_s * 2.0, 0.0) > base);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = FaultPlan::new(77)
            .with(FaultKind::SamplerBlackout, 5.0, 10.0)
            .with(FaultKind::MigrationFlaky { prob: 0.4 }, 0.0, 30.0)
            .with(FaultKind::TelemetryNoise { amplitude: 0.2 }, 0.0, 30.0)
            .with(FaultKind::TelemetryStale { ticks: 2 }, 10.0, 10.0);
        let exp = experiment(LoadPattern::Constant(0.5)).with_fault_plan(plan);
        let a = exp.run(&mut StaticPolicy::smem_all());
        let b = exp.run(&mut StaticPolicy::smem_all());
        assert_eq!(a.ticks.len(), b.ticks.len());
        for (x, y) in a.ticks.iter().zip(&b.ticks) {
            assert_eq!(x.lc_p99.to_bits(), y.lc_p99.to_bits());
            assert_eq!(x.fmem_bytes, y.fmem_bytes);
        }
        assert_eq!(a.failed_moves, b.failed_moves);
    }

    #[test]
    fn bandwidth_spike_inflates_latency() {
        let plan = FaultPlan::new(1).with(FaultKind::BandwidthSpike { extra: 0.9 }, 10.0, 10.0);
        let calm = experiment(LoadPattern::Constant(0.6));
        let spiky = calm.clone().with_fault_plan(plan);
        let r_calm = calm.run(&mut StaticPolicy::fmem_all());
        let r_spiky = spiky.run(&mut StaticPolicy::fmem_all());
        // Outside the window the runs agree; inside, latency is worse.
        assert_eq!(
            r_calm.ticks[5].lc_p99.to_bits(),
            r_spiky.ticks[5].lc_p99.to_bits()
        );
        assert!(
            r_spiky.ticks[15].lc_p99 > r_calm.ticks[15].lc_p99,
            "{} !> {}",
            r_spiky.ticks[15].lc_p99,
            r_calm.ticks[15].lc_p99
        );
    }

    #[test]
    fn migration_stall_blocks_all_moves() {
        let plan = FaultPlan::new(2).with(FaultKind::MigrationStall, 0.0, 1e9);
        let exp = experiment(LoadPattern::Constant(0.3)).with_fault_plan(plan);
        // smem_all evicts the LC set, which normally costs bandwidth
        // (see migration_accounting_is_reported); a full stall stops it.
        let r = exp.run(&mut StaticPolicy::smem_all());
        assert_eq!(r.total_migration_bytes, 0);
        assert_eq!(
            r.failed_moves, 0,
            "stall starves budget, it does not fail moves"
        );
    }

    #[test]
    fn flaky_migration_surfaces_failed_moves() {
        let plan = FaultPlan::new(3).with(FaultKind::MigrationFlaky { prob: 0.5 }, 0.0, 1e9);
        let exp = experiment(LoadPattern::Constant(0.3)).with_fault_plan(plan);
        let r = exp.run(&mut StaticPolicy::smem_all());
        assert!(r.failed_moves > 0, "half the granted moves should fail");
        let r_clean = experiment(LoadPattern::Constant(0.3)).run(&mut StaticPolicy::smem_all());
        assert_eq!(r_clean.failed_moves, 0);
    }

    #[test]
    fn workload_names_and_order_in_result() {
        let exp = experiment(LoadPattern::Constant(0.2));
        let r = exp.run(&mut StaticPolicy::fmem_all());
        assert_eq!(r.lc_name, "redis");
        assert_eq!(r.be_names, vec!["sssp".to_string()]);
        assert_eq!(r.be_perf_full.len(), 1);
        assert!(r.be_perf_full[0] > 0.0);
        let _ = MIB; // keep the import used in all cfg combinations
    }
}
