//! # mtat-core — MTAT: adaptive FMem management for co-located LC/BE workloads
//!
//! This crate is the heart of the reproduction of *MTAT: Adaptive Fast
//! Memory Management for Co-located Latency-Critical Workloads in Tiered
//! Memory System* (Middleware '25). It implements:
//!
//! * the **Partition Policy Maker** ([`ppm`]) — reinforcement-learning
//!   LC partition sizing (§3.2.1, Algorithm 1) and fairness-driven
//!   simulated-annealing BE partitioning (§3.2.2, Algorithm 2) on top of
//!   offline throughput profiles;
//! * the **Partition Policy Enforcer** ([`ppe`]) — LC-first time-sliced
//!   partition adjustment (§3.3.1, Algorithm 3) and hotness-aware page
//!   placement with exponential-bin histograms (§3.3.2, Fig. 4);
//! * the **baseline policies** ([`policy`]) the paper compares against —
//!   MEMTIS-like global hotness placement, TPP-like fault-driven
//!   promotion, and the FMEM_ALL / SMEM_ALL static placements;
//! * the **simulation driver** ([`runner`]) that co-locates workloads on
//!   the tiered-memory substrate and measures P99 latencies, SLO
//!   violation rates, throughput, and fairness (Eq. 3).
//!
//! ## Quick start
//!
//! ```
//! use mtat_core::config::SimConfig;
//! use mtat_core::policy::statics::StaticPolicy;
//! use mtat_core::runner::Experiment;
//! use mtat_workloads::lc::LcSpec;
//! use mtat_workloads::load::LoadPattern;
//!
//! // A short FMEM_ALL run of Redis at half load on a small system.
//! let mut lc = LcSpec::redis();
//! lc.rss_bytes = 1 << 30; // shrink to the test-scale memory
//! let exp = Experiment::new(
//!     SimConfig::small_test(),
//!     lc,
//!     LoadPattern::Constant(0.5),
//!     vec![],
//! )
//! .with_duration(10.0);
//! let result = exp.run(&mut StaticPolicy::fmem_all());
//! assert_eq!(result.violation_rate(), 0.0);
//! ```

pub mod config;
pub mod hardening;
pub mod health;
pub mod policy;
pub mod ppe;
pub mod ppm;
pub mod runner;
pub mod stats;
pub mod supervisor;
pub mod tracker;

pub use config::SimConfig;
pub use hardening::{Hardening, HardeningCfg, LeakCfg, PressureCfg, ThrashCfg};
pub use health::{HealthConfig, HealthMonitor, HealthState, HealthSummary, RecoveryMode};
pub use policy::hotset::HotsetPolicy;
pub use policy::memtis::MemtisPolicy;
pub use policy::mtat::{MtatConfig, MtatPolicy, MtatVariant};
pub use policy::statics::StaticPolicy;
pub use policy::tpp::TppPolicy;
pub use policy::Policy;
pub use runner::{CheckpointCfg, Experiment, MaxLoadSearch};
pub use stats::RunResult;
pub use supervisor::{DegradationState, Supervisor, SupervisorConfig};
