//! Static baselines: FMEM_ALL and SMEM_ALL (§5, *Comparisons*).
//!
//! * **FMEM_ALL** pins the LC workload into FMem (as much of its
//!   resident set as fits) and leaves BE workloads entirely in SMem. It
//!   is the LC performance ceiling everything in Fig. 8 is normalized
//!   against.
//! * **SMEM_ALL** forces the LC workload to run from SMem only; the BE
//!   workloads then compete for the whole FMem pool with ordinary
//!   hotness-based placement. It is the LC performance floor.

use mtat_tiermem::memory::{InitialPlacement, TieredMemory};
use mtat_tiermem::page::{Tier, WorkloadId};

use crate::policy::{Policy, SimState, WorkloadClass, WorkloadObs};
use crate::ppe::placement;
use crate::tracker::HotnessTracker;

/// Which static placement to apply to the LC workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    /// LC exclusively occupies FMem.
    FmemAll,
    /// LC uses only SMem; BE workloads share FMem by hotness.
    SmemAll,
}

/// The static LC-placement policy.
#[derive(Debug)]
pub struct StaticPolicy {
    kind: StaticKind,
    tracker: Option<HotnessTracker>,
    lc: Option<WorkloadId>,
    pairs_per_tick: u64,
}

impl StaticPolicy {
    /// Creates FMEM_ALL.
    pub fn fmem_all() -> Self {
        Self {
            kind: StaticKind::FmemAll,
            tracker: None,
            lc: None,
            pairs_per_tick: 1024,
        }
    }

    /// Creates SMEM_ALL.
    pub fn smem_all() -> Self {
        Self {
            kind: StaticKind::SmemAll,
            tracker: None,
            lc: None,
            pairs_per_tick: 1024,
        }
    }

    /// The configured kind.
    pub fn kind(&self) -> StaticKind {
        self.kind
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> &str {
        match self.kind {
            StaticKind::FmemAll => "fmem_all",
            StaticKind::SmemAll => "smem_all",
        }
    }

    fn initial_placement(&self, class: WorkloadClass) -> InitialPlacement {
        match (self.kind, class) {
            (StaticKind::FmemAll, WorkloadClass::Lc) => InitialPlacement::FmemFirst,
            (StaticKind::SmemAll, WorkloadClass::Lc) => InitialPlacement::AllSmem,
            (_, WorkloadClass::Be) => InitialPlacement::AllSmem,
        }
    }

    fn init(&mut self, mem: &TieredMemory, workloads: &[WorkloadObs]) {
        self.tracker = Some(HotnessTracker::new(mem));
        self.lc = workloads.iter().find(|w| w.is_lc()).map(|w| w.id);
    }

    fn fmem_target(&self, w: WorkloadId) -> Option<u64> {
        let lc = self.lc?;
        if w != lc {
            return None;
        }
        Some(match self.kind {
            StaticKind::FmemAll => u64::MAX, // "all of FMem"
            StaticKind::SmemAll => 0,
        })
    }

    fn wants_page_samples(&self) -> bool {
        // FMEM_ALL pins by residency targets alone and never consults
        // page hotness: the LC set is placed FmemFirst at registration
        // (so the pin holds from tick 0) and BE workloads are never
        // promoted, so the eviction path below cannot trigger. SMEM_ALL
        // runs hotness competition among the BEs and needs the samples.
        self.kind == StaticKind::SmemAll
    }

    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        let tracker = self.tracker.as_mut().expect("init() must run first");
        if self.kind == StaticKind::SmemAll {
            tracker.record_tick(sim.workloads);
            if sim.interval_boundary {
                tracker.age_all();
            }
        }
        let Some(lc) = self.lc else { return };
        let bes: Vec<WorkloadId> = sim
            .workloads
            .iter()
            .filter(|w| !w.is_lc())
            .map(|w| w.id)
            .collect();
        match self.kind {
            StaticKind::FmemAll => {
                // Keep the LC resident set pinned into FMem; drift can
                // only appear at startup, after which this is a no-op.
                let target = sim
                    .mem
                    .spec()
                    .fmem_pages()
                    .min(sim.mem.region(lc).n_pages as u64);
                let current = sim.mem.residency(lc).fmem_pages;
                if current < target {
                    // Evict any BE squatters first.
                    let need =
                        target - current - sim.mem.free_pages(Tier::FMem).min(target - current);
                    if need > 0 {
                        for &b in &bes {
                            let pages = tracker.coldest_fmem(sim.mem, b, need as usize);
                            let granted =
                                sim.migration.try_consume_pages(pages.len() as u64) as usize;
                            for &p in pages.iter().take(granted) {
                                let _ = sim.mem.migrate(p, Tier::SMem);
                            }
                        }
                    }
                    placement::enforce_target(sim.mem, sim.migration, tracker, lc, target);
                }
                // BE workloads stay in SMem: nothing else to do.
            }
            StaticKind::SmemAll => {
                // Evict any LC pages from FMem, then let BE compete.
                placement::enforce_target(sim.mem, sim.migration, tracker, lc, 0);
                let pool_cap = sim.mem.spec().fmem_pages();
                placement::compete(
                    sim.mem,
                    sim.migration,
                    tracker,
                    &bes,
                    pool_cap,
                    self.pairs_per_tick,
                    crate::ppe::HOTNESS_HYSTERESIS,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtat_tiermem::memory::MemorySpec;
    use mtat_tiermem::migration::MigrationEngine;
    use mtat_tiermem::MIB;

    fn obs(
        mem: &TieredMemory,
        w: WorkloadId,
        class: WorkloadClass,
        sampled: Vec<u64>,
    ) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    fn setup(lc_placement: InitialPlacement) -> (TieredMemory, WorkloadId, WorkloadId) {
        let spec = MemorySpec::new(4 * MIB, 32 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let lc = mem.register_workload(6 * MIB, lc_placement).unwrap();
        let be = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        (mem, lc, be)
    }

    #[test]
    fn fmem_all_pins_lc() {
        let (mut mem, lc, be) = setup(InitialPlacement::AllSmem);
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = StaticPolicy::fmem_all();
        let w = [
            obs(&mem, lc, WorkloadClass::Lc, vec![1; 6]),
            obs(&mem, be, WorkloadClass::Be, vec![100; 8]),
        ];
        p.init(&mem, &w);
        for t in 0..4 {
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: false,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            p.on_tick(&mut sim);
        }
        // LC occupies all 4 FMem pages despite BE being far hotter.
        assert_eq!(mem.residency(lc).fmem_pages, 4);
        assert_eq!(mem.residency(be).fmem_pages, 0);
        assert_eq!(p.fmem_target(lc), Some(u64::MAX));
        assert_eq!(p.fmem_target(be), None);
    }

    #[test]
    fn smem_all_evicts_lc_and_shares_among_be() {
        let (mut mem, lc, be) = setup(InitialPlacement::FmemFirst);
        assert_eq!(mem.residency(lc).fmem_pages, 4);
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = StaticPolicy::smem_all();
        let w = [
            obs(&mem, lc, WorkloadClass::Lc, vec![50; 6]),
            obs(&mem, be, WorkloadClass::Be, vec![10; 8]),
        ];
        p.init(&mem, &w);
        for t in 0..4 {
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t == 2,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            p.on_tick(&mut sim);
        }
        // LC fully evicted even though its pages are hotter; BE fills in.
        assert_eq!(mem.residency(lc).fmem_pages, 0);
        assert_eq!(mem.residency(be).fmem_pages, 4);
        assert_eq!(p.fmem_target(lc), Some(0));
    }

    #[test]
    fn initial_placement_hints() {
        let f = StaticPolicy::fmem_all();
        assert_eq!(
            f.initial_placement(WorkloadClass::Lc),
            InitialPlacement::FmemFirst
        );
        let s = StaticPolicy::smem_all();
        assert_eq!(
            s.initial_placement(WorkloadClass::Lc),
            InitialPlacement::AllSmem
        );
        assert_eq!(
            s.initial_placement(WorkloadClass::Be),
            InitialPlacement::AllSmem
        );
        assert_eq!(f.kind(), StaticKind::FmemAll);
        assert_eq!(f.name(), "fmem_all");
        assert_eq!(s.name(), "smem_all");
    }
}
