//! The MTAT policy: PP-M + PP-E glued behind the [`Policy`] interface.
//!
//! Two variants, as evaluated in the paper:
//!
//! * **MTAT (Full)** — the RL agent sizes the LC partition and the
//!   simulated-annealing search explicitly partitions the remaining FMem
//!   among the BE workloads (fairness-driven, Algorithm 2); PP-E
//!   enforces every partition with LC-first time slicing (Algorithm 3)
//!   and per-partition hotness refinement (Fig. 4).
//! * **MTAT (LC Only)** — only the LC partition is enforced; the BE
//!   workloads compete for the residual pool with ordinary
//!   frequency-based placement.
//!
//! Because experiments start from a fresh process while the paper's
//! daemon has been learning for its whole uptime, the SAC agent is
//! pretrained on the analytic environment ([`crate::ppm::env`]) and the
//! trained network is cached per (workload, cores, FMem) configuration —
//! repeated runs (e.g. the Fig. 8 binary search) reuse it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mtat_obs::event::Severity;
use mtat_obs::provenance::{AnnealTrace, EnforceOutcome, PlanProvenance, SacTrace};
use mtat_obs::Obs;
use mtat_rl::sac::{Sac, SacConfig};
use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::WorkloadId;
use mtat_tiermem::GIB;
use mtat_workloads::be::BeSpec;
use mtat_workloads::lc::LcSpec;

use crate::config::SimConfig;
use crate::hardening::{Hardening, HardeningCfg};
use crate::policy::{Policy, SimState, WorkloadObs};
use crate::ppe::PartitionPolicyEnforcer;
use crate::ppm::annealing::AnnealingConfig;
use crate::ppm::be::BePartitioner;
use crate::ppm::controller::{ControllerConfig, ProportionalController};
use crate::ppm::lc::{LcObservation, LcPartitioner, LcPartitionerConfig};
use crate::ppm::profiler::profile_all;
use crate::ppm::{LcSizer, PartitionPlan, PartitionPolicyMaker};
use crate::supervisor::{DegradationState, Supervisor, SupervisorConfig};

/// Which MTAT variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtatVariant {
    /// Explicit partitions for LC and every BE workload.
    Full,
    /// Explicit partition for LC only; BE workloads compete.
    LcOnly,
}

/// MTAT policy construction options.
#[derive(Debug, Clone)]
pub struct MtatConfig {
    /// Full or LC-only partitioning.
    pub variant: MtatVariant,
    /// Use the paper's RL sizer (`true`) or the ablation controller.
    pub use_rl: bool,
    /// Keep learning online during the run.
    pub online_learning: bool,
    /// Pretraining interactions on the analytic environment.
    pub pretrain_steps: usize,
    /// SLO-guard growth (fraction of the Eq. 1 bound) applied on a
    /// violated interval; `None` disables the guard.
    pub slo_guard_step: Option<f64>,
    /// Per-tick refinement appetite per workload (page pairs).
    pub refine_pairs: u64,
    /// RNG seed for pretraining and annealing.
    pub seed: u64,
    /// §7 extension: pause placement churn when FMem bandwidth
    /// utilization exceeds this threshold (`None` disables).
    pub bandwidth_freeze_util: Option<f64>,
    /// Run the policy under a graceful-degradation [`Supervisor`] that
    /// demotes the RL sizer to the proportional controller (and, as a
    /// last resort, a static LC-priority split) on divergence, stale
    /// telemetry, dead sensors, or sustained SLO violation (`None`
    /// disables — the paper's unsupervised behavior).
    pub supervisor: Option<SupervisorConfig>,
    /// Adversarial-dynamics guards ([`crate::hardening`]): thrash
    /// quarantine, working-set-pressure throttle, leak renormalization
    /// (`None` disables — the naive ablation arm).
    pub hardening: Option<HardeningCfg>,
}

impl MtatConfig {
    /// MTAT (Full) with paper defaults.
    pub fn full() -> Self {
        Self {
            variant: MtatVariant::Full,
            use_rl: true,
            online_learning: true,
            pretrain_steps: 12_000,
            slo_guard_step: Some(1.0),
            refine_pairs: 256,
            seed: 0x517A7,
            bandwidth_freeze_util: None,
            supervisor: None,
            hardening: None,
        }
    }

    /// MTAT (LC Only) with paper defaults.
    pub fn lc_only() -> Self {
        Self {
            variant: MtatVariant::LcOnly,
            ..Self::full()
        }
    }

    /// Swap the RL sizer for the proportional controller (ablation).
    pub fn with_heuristic_sizer(mut self) -> Self {
        self.use_rl = false;
        self
    }

    /// Enables the §7 bandwidth-aware extension: placement churn pauses
    /// whenever FMem bandwidth utilization exceeds `threshold`.
    pub fn with_bandwidth_awareness(mut self, threshold: f64) -> Self {
        self.bandwidth_freeze_util = Some(threshold);
        self
    }

    /// Runs the policy under a graceful-degradation supervisor with the
    /// given thresholds.
    pub fn with_supervisor(mut self, cfg: SupervisorConfig) -> Self {
        self.supervisor = Some(cfg);
        self
    }

    /// Runs the policy under a supervisor with default thresholds.
    pub fn supervised(self) -> Self {
        self.with_supervisor(SupervisorConfig::default())
    }

    /// Arms the adversarial-dynamics guards (thrash quarantine,
    /// pressure throttle, leak renormalization) with default
    /// thresholds. Hardening implies supervision: the pressure guard
    /// escalates through the supervisor's ladder, so one is installed
    /// if not already configured.
    pub fn hardened(mut self) -> Self {
        self.hardening = Some(HardeningCfg::hardened());
        if self.supervisor.is_none() {
            self.supervisor = Some(SupervisorConfig::default());
        }
        self
    }
}

/// The MTAT policy.
#[derive(Debug)]
pub struct MtatPolicy {
    cfg: MtatConfig,
    name: String,
    ppm: PartitionPolicyMaker,
    ppe: Option<PartitionPolicyEnforcer>,
    lc_id: Option<WorkloadId>,
    page_size: u64,
    /// Reference access rate (accesses/s at the workload's max load) for
    /// normalizing the Memory Access Count state component.
    ref_access_rate: f64,
    // Interval accumulators.
    acc_violated: bool,
    acc_worst_p99: f64,
    acc_access_rate: f64,
    acc_hit_ratio: f64,
    acc_load_rps: f64,
    acc_ticks: u32,
    latest_plan: Option<PartitionPlan>,
    /// Graceful-degradation supervisor (None = unsupervised).
    supervisor: Option<Supervisor>,
    /// Adversarial-dynamics guards (None = naive). Ephemeral state:
    /// excluded from checkpoints (like PP-E, it models monitoring that
    /// survives a daemon crash in place) and reset on cold restart.
    hardening: Option<Hardening>,
    /// True while the PP-M daemon is crashed
    /// ([`crate::policy::Policy::on_controller_crash`]): PP-E keeps
    /// enforcing the last plan; no new decisions are made.
    ppm_down: bool,
    // Construction parameters retained for cold restarts (rebuilding a
    // fresh sizer when no usable checkpoint exists).
    lc_spec: LcSpec,
    fmem_total: u64,
    max_step_bytes: f64,
    /// Telemetry handle ([`Policy::set_obs`]); disabled (inert) by
    /// default. Never consulted by any control path.
    obs: Obs,
    /// Open provenance record awaiting its enforcement outcome, plus
    /// the migration-engine counter snapshot taken when its plan was
    /// installed. Telemetry only: excluded from checkpoints, and never
    /// read by any control path.
    prov_snap: Option<ProvSnap>,
}

/// Migration-engine counters at plan-installation time; the deltas at
/// the next decision boundary become the plan's enforcement outcome.
#[derive(Debug, Clone, Copy)]
struct ProvSnap {
    seq: u64,
    moved: u64,
    failed: u64,
    retried: u64,
}

/// Pretrained-agent cache keyed by (workload, cores, FMem, step,
/// pretrain-steps). Each key maps to its own slot mutex so concurrent
/// builders of the *same* configuration (e.g. parallel bench-matrix
/// cells) block on one pretraining run instead of duplicating it, while
/// distinct configurations still pretrain concurrently.
type AgentSlot = Arc<Mutex<Option<Sac>>>;

fn agent_cache() -> &'static Mutex<HashMap<String, AgentSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<String, AgentSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the cached agent for `key`, pretraining it via `train` if
/// absent. Pretraining is deterministic, so whichever thread wins the
/// per-key slot produces the same agent any other would have.
fn cached_agent(key: &str, train: impl FnOnce() -> Sac) -> Sac {
    let slot = Arc::clone(
        agent_cache()
            .lock()
            .expect("cache lock")
            .entry(key.to_string())
            .or_default(),
    );
    let mut guard = slot.lock().expect("cache slot lock");
    guard.get_or_insert_with(train).clone()
}

impl MtatPolicy {
    /// Builds an MTAT policy for an experiment co-locating `lc_spec`
    /// with `be_specs` under `sim`. Pretraining (or cache lookup) and BE
    /// profiling happen here, before the run starts — both are offline
    /// activities in the paper's prototype.
    pub fn new(cfg: MtatConfig, sim: &SimConfig, lc_spec: &LcSpec, be_specs: &[BeSpec]) -> Self {
        let fmem_total = sim.mem.fmem_bytes();
        let max_step_bytes = sim.migration_bw * sim.interval_secs / 2.0;
        let lc_cfg = LcPartitionerConfig {
            fmem_total,
            max_step_bytes,
            online_learning: cfg.online_learning,
            explore: false,
        };

        let sizer = if cfg.use_rl {
            let key = format!(
                "{}/c{}/f{}/s{}/p{}",
                lc_spec.name,
                lc_spec.cores,
                fmem_total / GIB,
                max_step_bytes as u64 / GIB,
                cfg.pretrain_steps
            );
            let agent = cached_agent(&key, || {
                LcPartitioner::pretrained(lc_spec, lc_cfg.clone(), cfg.pretrain_steps, cfg.seed)
                    .agent()
                    .clone()
            });
            LcSizer::Rl(LcPartitioner::new(lc_spec.clone(), lc_cfg, agent))
        } else {
            LcSizer::Heuristic(ProportionalController::new(ControllerConfig::new(
                fmem_total,
                lc_spec.rss_bytes,
                max_step_bytes,
                lc_spec.slo_secs,
            )))
        };

        let be = match cfg.variant {
            MtatVariant::Full => Some(BePartitioner::new(
                profile_all(be_specs, fmem_total, sim.mem.page_size()),
                AnnealingConfig::default(),
                cfg.seed ^ 0xBE,
            )),
            MtatVariant::LcOnly => None,
        };

        let mut ppm =
            PartitionPolicyMaker::new(sizer, be, fmem_total, max_step_bytes, cfg.slo_guard_step);
        if cfg.supervisor.is_some() {
            // Degradation ladder: proportional latency-headroom control,
            // then the static LC-priority split (all the FMem the LC
            // resident set can use).
            let fallback = ProportionalController::new(ControllerConfig::new(
                fmem_total,
                lc_spec.rss_bytes,
                max_step_bytes,
                lc_spec.slo_secs,
            ));
            ppm = ppm.with_fallback(fallback, fmem_total.min(lc_spec.rss_bytes));
        }
        let mut name = match (cfg.variant, cfg.use_rl) {
            (MtatVariant::Full, true) => "mtat_full",
            (MtatVariant::LcOnly, true) => "mtat_lc_only",
            (MtatVariant::Full, false) => "mtat_full_heuristic",
            (MtatVariant::LcOnly, false) => "mtat_lc_only_heuristic",
        }
        .to_string();
        if cfg.hardening.is_some() {
            // Hardened implies supervised; one suffix names the arm.
            name.push_str("_hardened");
        } else if cfg.supervisor.is_some() {
            name.push_str("_supervised");
        }
        let ref_access_rate =
            lc_spec.max_load(lc_spec.full_fmem_hit_ratio(fmem_total)) * lc_spec.accesses_per_req;
        let supervisor = cfg.supervisor.clone().map(Supervisor::new);
        let hardening = cfg.hardening.clone().map(Hardening::new);
        Self {
            cfg,
            name,
            ppm,
            ppe: None,
            lc_id: None,
            page_size: sim.mem.page_size(),
            ref_access_rate,
            acc_violated: false,
            acc_worst_p99: 0.0,
            acc_access_rate: 0.0,
            acc_hit_ratio: 0.0,
            acc_load_rps: 0.0,
            acc_ticks: 0,
            latest_plan: None,
            supervisor,
            hardening,
            ppm_down: false,
            lc_spec: lc_spec.clone(),
            fmem_total,
            max_step_bytes,
            obs: Obs::disabled(),
            prov_snap: None,
        }
    }

    /// Exports the interval's control-plane diagnostics: plan deltas,
    /// SAC learner health, annealing search stats, and enforcement
    /// backlog. Called only on the enabled path.
    fn emit_interval_telemetry(&self, now_secs: f64, plan: &PartitionPlan, prev_lc_bytes: u64) {
        self.obs.count("mtat.plans", 1);
        self.obs.gauge("mtat.plan_lc_bytes", plan.lc_bytes as f64);
        let delta = plan.lc_bytes as f64 - prev_lc_bytes as f64;
        self.obs.gauge("mtat.plan_lc_delta_bytes", delta);
        self.obs
            .observe("mtat.plan_lc_delta_abs_bytes", delta.abs() as u64);
        if let Some(sac) = self.ppm.sac_agent() {
            self.obs.gauge("mtat.sac_alpha", sac.alpha());
            self.obs
                .gauge("mtat.sac_updates", sac.updates_done() as f64);
            self.obs
                .gauge("mtat.sac_replay_len", sac.replay_len() as f64);
            self.obs
                .gauge("mtat.sac_critic_loss", sac.last_critic_loss());
            self.obs.gauge("mtat.sac_entropy", sac.last_entropy());
            self.obs
                .gauge("mtat.sac_critic_param_l2", sac.critic_param_l2());
        }
        if let Some(a) = self.ppm.last_anneal() {
            self.obs
                .gauge("mtat.anneal_iterations", a.iterations as f64);
            self.obs.gauge("mtat.anneal_best_score", a.best_score);
            self.obs.gauge("mtat.anneal_temperature", a.final_temp);
        }
        self.obs.event(
            now_secs,
            "mtat",
            Severity::Info,
            "plan",
            &[
                ("lc_bytes", plan.lc_bytes.to_string()),
                ("delta_bytes", format!("{delta:.0}")),
                ("be_workloads", plan.be_bytes.len().to_string()),
                ("mode", self.ppm.mode().label().to_string()),
            ],
        );
    }

    /// The most recent PP-M plan (diagnostics).
    pub fn latest_plan(&self) -> Option<&PartitionPlan> {
        self.latest_plan.as_ref()
    }

    /// Live hardening-guard state (None unless configured via
    /// [`MtatConfig::hardened`]) — diagnostics and tests.
    pub fn hardening_state(&self) -> Option<&Hardening> {
        self.hardening.as_ref()
    }

    /// Opens the provenance record for a freshly decided `plan` —
    /// interval inputs, supervisor mode, SAC/anneal telemetry, clamp
    /// diagnostics — and snapshots the migration-engine counters that
    /// the next decision boundary diffs into the enforcement outcome.
    /// Tracing path only (callers guard on [`Obs::tracing_enabled`]).
    fn open_plan_provenance(
        &mut self,
        sim: &SimState<'_>,
        obs: &LcObservation,
        plan: &PartitionPlan,
    ) {
        let meta = self.ppm.last_decision();
        let sac = match (
            self.ppm.mode(),
            self.ppm.sac_agent(),
            self.ppm.rl_raw_action(),
        ) {
            (DegradationState::Rl, Some(agent), Some(raw)) => Some(SacTrace {
                raw_action: raw,
                alpha: agent.alpha(),
                entropy: agent.last_entropy(),
            }),
            _ => None,
        };
        let anneal = self.ppm.last_anneal().map(|a| AnnealTrace {
            iterations: a.iterations as u64,
            best_score: a.best_score,
            final_temp: a.final_temp,
        });
        let rec = PlanProvenance {
            seq: 0,
            tick: (sim.now_secs / sim.tick_secs).round() as u64,
            now_secs: sim.now_secs,
            usage_ratio: obs.usage_ratio,
            access_ratio: obs.access_ratio,
            access_count_norm: obs.access_count_norm,
            p99_secs: obs.p99_secs,
            violated: obs.violated,
            scenario_phase: sim.scenario_phase,
            mode: self.ppm.mode().label(),
            sac,
            anneal,
            sizer_bytes: meta.map_or(plan.lc_bytes, |m| m.sizer_bytes),
            guard_floor_bytes: meta.map_or(0, |m| m.guard_floor_bytes),
            guard_applied: meta.is_some_and(|m| m.guard_applied),
            fmem_clamped: meta.is_some_and(|m| m.fmem_clamped),
            lc_bytes: plan.lc_bytes,
            be_total_bytes: plan.be_bytes.iter().sum(),
            enforce: None,
        };
        if let Some(seq) = self.obs.provenance_open(rec) {
            self.prov_snap = Some(ProvSnap {
                seq,
                moved: sim.migration.total_pages_moved(),
                failed: sim.migration.failed_moves(),
                retried: sim.migration.retried_moves(),
            });
        }
    }

    fn reset_accumulators(&mut self) {
        self.acc_violated = false;
        self.acc_worst_p99 = 0.0;
        self.acc_access_rate = 0.0;
        self.acc_hit_ratio = 0.0;
        self.acc_load_rps = 0.0;
        self.acc_ticks = 0;
    }

    /// The supervisor's transition log (empty when unsupervised).
    pub fn supervisor_transitions(&self) -> &[crate::supervisor::Transition] {
        self.supervisor.as_ref().map_or(&[], |s| s.transitions())
    }

    /// True while the PP-M daemon is crashed (enforce-only operation).
    pub fn controller_down(&self) -> bool {
        self.ppm_down
    }

    /// Serializes the full PP-M control state — the sizer (including
    /// the SAC agent's networks, optimizers, replay buffer, and RNG),
    /// the BE annealing seed, the SLO guard, the supervisor's ladder
    /// position, the interval accumulators, and the latest plan — as a
    /// raw checkpoint payload. PP-E state (hotness histograms, retry
    /// queue, adjustment schedule) is deliberately excluded: it models
    /// the in-kernel enforcer, which survives a daemon crash in place.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        use mtat_snapshot::{Snap, SnapWriter};
        let mut w = SnapWriter::new();
        self.ppm.save_state(&mut w);
        self.supervisor.snap(&mut w);
        w.put_bool(self.acc_violated);
        w.put_f64(self.acc_worst_p99);
        w.put_f64(self.acc_access_rate);
        w.put_f64(self.acc_hit_ratio);
        w.put_f64(self.acc_load_rps);
        w.put_u32(self.acc_ticks);
        self.latest_plan.snap(&mut w);
        // v1-compatible tail extension: the supervisor's quarantine
        // latch rides after everything v1 wrote, and the decoder reads
        // it only when present — payloads from before the health
        // subsystem still decode (latch clear).
        w.put_bool(self.supervisor.as_ref().is_some_and(Supervisor::is_latched));
        w.into_bytes()
    }

    /// Restores control state captured by [`Self::encode_checkpoint`].
    /// The checkpoint's structure must match this policy's
    /// configuration (sizer kind, BE partitioning, supervision); a
    /// mismatch or short payload is rejected. On `Err` the policy may
    /// be partially overwritten — callers fall back to
    /// [`Self::cold_restart`], which resets everything the decode
    /// touches.
    pub fn decode_checkpoint(&mut self, bytes: &[u8]) -> Result<(), mtat_snapshot::SnapError> {
        use mtat_snapshot::{Snap, SnapError, SnapReader};
        let mut r = SnapReader::new(bytes);
        self.ppm.load_state(&mut r)?;
        let supervisor: Option<Supervisor> = Snap::unsnap(&mut r)?;
        match (&mut self.supervisor, supervisor) {
            (Some(cur), Some(restored)) => *cur = restored,
            (None, None) => {}
            _ => return Err(SnapError::Malformed("checkpoint supervision mismatch")),
        }
        self.acc_violated = r.get_bool()?;
        self.acc_worst_p99 = r.get_f64()?;
        self.acc_access_rate = r.get_f64()?;
        self.acc_hit_ratio = r.get_f64()?;
        self.acc_load_rps = r.get_f64()?;
        self.acc_ticks = r.get_u32()?;
        self.latest_plan = Snap::unsnap(&mut r)?;
        let latched = if r.is_exhausted() {
            false // pre-latch v1 payload
        } else {
            r.get_bool()?
        };
        if let Some(sup) = &mut self.supervisor {
            sup.restore_latched(latched);
        }
        if !r.is_exhausted() {
            return Err(SnapError::Malformed("trailing checkpoint bytes"));
        }
        Ok(())
    }

    /// Cold restart: the daemon is back but all user-space state is
    /// lost. The RL variant returns with a *fresh, untrained* network —
    /// relearning from scratch is exactly the cost checkpointing
    /// exists to avoid — the annealing seed rewinds, the supervisor
    /// restarts at the top of its ladder, and the sizer target realigns
    /// to the placement PP-E actually maintained through the outage.
    pub fn cold_restart(&mut self, mem: &TieredMemory) {
        let lc_cfg = LcPartitionerConfig {
            fmem_total: self.fmem_total,
            max_step_bytes: self.max_step_bytes,
            online_learning: self.cfg.online_learning,
            explore: false,
        };
        let sizer = if self.cfg.use_rl {
            let mut sac_cfg = SacConfig::paper(3, 1);
            sac_cfg.update_every = 2;
            LcSizer::Rl(LcPartitioner::new(
                self.lc_spec.clone(),
                lc_cfg,
                Sac::new(sac_cfg, self.cfg.seed),
            ))
        } else {
            LcSizer::Heuristic(ProportionalController::new(ControllerConfig::new(
                self.fmem_total,
                self.lc_spec.rss_bytes,
                self.max_step_bytes,
                self.lc_spec.slo_secs,
            )))
        };
        self.ppm.cold_restart(sizer, self.cfg.seed ^ 0xBE);
        if let Some(sup) = &mut self.supervisor {
            *sup = Supervisor::new(self.cfg.supervisor.clone().unwrap_or_default());
        }
        if let Some(h) = &mut self.hardening {
            h.reset();
        }
        self.latest_plan = None;
        self.reset_accumulators();
        if let Some(lc_id) = self.lc_id {
            self.ppm.set_lc_target_bytes(mem.fmem_bytes_of(lc_id));
        }
    }
}

impl Policy for MtatPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        // PP-M opens the sac-forward / anneal child spans itself; PP-E
        // (created later, in init) is wired there.
        self.ppm.set_obs(obs.clone());
        if let Some(ppe) = &mut self.ppe {
            ppe.set_obs(obs.clone());
        }
    }

    fn init(&mut self, mem: &TieredMemory, workloads: &[WorkloadObs]) {
        let lc = workloads
            .iter()
            .find(|w| w.is_lc())
            .expect("MTAT needs an LC workload");
        self.lc_id = Some(lc.id);
        let p_max_pairs = 512;
        let mut ppe =
            PartitionPolicyEnforcer::new(mem, lc.id.index(), p_max_pairs, self.cfg.refine_pairs);
        // The runner attaches the handle before init; forward it to the
        // freshly built enforcer.
        ppe.set_obs(self.obs.clone());
        self.ppe = Some(ppe);
        // Align the sizer's starting target with the initial placement.
        self.ppm.set_lc_target_bytes(mem.fmem_bytes_of(lc.id));
        self.reset_accumulators();
    }

    fn fmem_target(&self, w: WorkloadId) -> Option<u64> {
        let ppe = self.ppe.as_ref()?;
        ppe.target_pages(w).map(|pages| pages * self.page_size)
    }

    fn degradation(&self) -> Option<DegradationState> {
        self.supervisor.as_ref().map(|s| s.state())
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        Some(self.encode_checkpoint())
    }

    fn on_controller_crash(&mut self) {
        self.ppm_down = true;
    }

    fn on_controller_restart(&mut self, mem: &TieredMemory, checkpoint: Option<&[u8]>) {
        self.ppm_down = false;
        if let Some(payload) = checkpoint {
            if self.decode_checkpoint(payload).is_ok() {
                return;
            }
        }
        self.cold_restart(mem);
    }

    fn health_probe(&self) -> Result<(), String> {
        // The SAC diagnostics last_critic_loss / last_entropy are
        // legitimately NaN before the first gradient round and after a
        // restore (they are excluded from checkpoints), so the sentinel
        // deliberately skips them. acc_worst_p99 may be +inf on a
        // saturated interval; only NaN is poison there.
        if let Some(sac) = self.ppm.sac_agent() {
            if !sac.actor_param_l2().is_finite() {
                return Err("sac_actor_params".to_string());
            }
            if !sac.alpha().is_finite() {
                return Err("sac_alpha".to_string());
            }
        }
        if let Some(raw) = self.ppm.rl_raw_action() {
            if !raw.is_finite() {
                return Err("sac_raw_action".to_string());
            }
        }
        if self.acc_worst_p99.is_nan()
            || self.acc_access_rate.is_nan()
            || self.acc_hit_ratio.is_nan()
            || self.acc_load_rps.is_nan()
        {
            return Err("interval_accumulators".to_string());
        }
        if let Some(plan) = &self.latest_plan {
            let be_total: u64 = plan.be_bytes.iter().sum();
            let total = plan.lc_bytes.saturating_add(be_total);
            if total > self.fmem_total {
                return Err(format!(
                    "plan_overcommit: {total} > fmem {}",
                    self.fmem_total
                ));
            }
        }
        Ok(())
    }

    fn inject_poison(&mut self) {
        if let Some(sac) = self.ppm.sac_agent_mut() {
            sac.poison_actor();
        }
    }

    fn enter_quarantine(&mut self, now_secs: f64) {
        if let Some(sup) = &mut self.supervisor {
            // Latch the ladder at its trustworthy last rung; on_interval
            // holds there with no re-promotion.
            sup.set_latched(true, now_secs);
            self.ppm.set_mode(DegradationState::Static);
        } else {
            // Unsupervised: park the daemon entirely. PP-E keeps
            // enforcing the last plan — the paper's crash-survival
            // posture, reused as containment.
            self.ppm_down = true;
        }
    }

    fn after_rollback(&mut self, now_secs: f64) {
        // Re-enter via a conservative rung: the restored agent proved
        // trustworthy once, but the condition that poisoned its
        // successor may still be live. The ladder re-promotes to RL
        // only after its healthy window.
        if let Some(sup) = &mut self.supervisor {
            sup.force_demote(DegradationState::Proportional, now_secs);
            self.ppm.set_mode(DegradationState::Proportional);
        }
    }

    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        let lc_id = self.lc_id.expect("init() must run first");
        let mut ppe = self.ppe.take().expect("init() must run first");
        {
            let _track = self.obs.span(sim.now_secs, "track");
            ppe.record_tick(sim.workloads);
        }

        if self.ppm_down {
            // The user-space daemon is dead. The in-kernel enforcer
            // carries on alone: it keeps enforcing and refining the
            // last plan and ages its histograms on the usual cadence,
            // but no observation is accumulated and no decision made.
            if sim.interval_boundary {
                ppe.age();
            }
            let _enforce = self.obs.span(sim.now_secs, "ppe-enforce");
            ppe.tick(sim.mem, sim.migration);
            self.ppe = Some(ppe);
            return;
        }

        // Accumulate the interval's LC observation.
        let lc = &sim.workloads[lc_id.index()];
        self.acc_violated |= lc.slo_violated;
        self.acc_worst_p99 = self.acc_worst_p99.max(lc.p99_secs);
        self.acc_access_rate += lc.access_rate;
        self.acc_hit_ratio += lc.hit_ratio;
        self.acc_load_rps += lc.load_rps;
        self.acc_ticks += 1;
        if let Some(sup) = &mut self.supervisor {
            sup.note_tick(sim.obs_age_ticks);
        }

        if sim.interval_boundary && self.acc_ticks > 0 {
            let transitions_before = self
                .supervisor
                .as_ref()
                .map_or(0, |s| s.transitions().len());
            // Adversarial-dynamics guards observe the interval first:
            // a pressure escalation must land on the supervisor before
            // its own on_interval runs, so the demotion takes effect in
            // this decision rather than the next.
            let guard_acts = self
                .hardening
                .as_mut()
                .map(|h| h.on_interval(sim.mem, sim.workloads))
                .unwrap_or_default();
            if guard_acts.escalate_pressure {
                if let Some(sup) = &mut self.supervisor {
                    sup.force_demote(DegradationState::Proportional, sim.now_secs);
                }
            }
            let prev_lc_bytes = self
                .latest_plan
                .as_ref()
                .map_or_else(|| self.ppm.lc_target_bytes(), |p| p.lc_bytes);
            let n = self.acc_ticks as f64;
            let usage = sim.mem.residency(lc_id).fmem_usage_ratio();
            let obs = LcObservation {
                usage_ratio: usage,
                access_ratio: self.acc_hit_ratio / n,
                access_count_norm: (self.acc_access_rate / n) / self.ref_access_rate,
                p99_secs: self.acc_worst_p99,
                violated: self.acc_violated,
            };
            // The previous plan has had its full interval of
            // enforcement: close its provenance record from the
            // migration-engine counter deltas, before set_plan clears
            // the retry queue and replaces the schedule.
            if let Some(snap) = self.prov_snap.take() {
                self.obs.provenance_finalize(
                    snap.seq,
                    EnforceOutcome {
                        granted_pages: sim.migration.total_pages_moved() - snap.moved,
                        failed_pages: sim.migration.failed_moves() - snap.failed,
                        retried_pages: sim.migration.retried_moves() - snap.retried,
                        deferred_pages: ppe.deferred_pages(),
                        schedule_done: !ppe.adjusting(),
                    },
                );
            }
            let plan_span = self.obs.span(sim.now_secs, "ppm-plan");
            if let Some(sup) = &mut self.supervisor {
                // Dead-sensor signature: requests are being served (the
                // LC server knows its own offered load) yet the sampled
                // access rate is zero — a PEBS blackout, not idleness.
                let sensor_dead = obs.access_count_norm <= 1e-6 && self.acc_load_rps / n > 0.0;
                let mode = sup.on_interval(sim.now_secs, obs.violated, sensor_dead);
                self.ppm.set_mode(mode);
            }
            let mut plan = self.ppm.decide(&obs);
            // Migration quarantine applies Jenga-style hysteresis to the
            // throughput side of the plan: while the thrash guard holds,
            // the BE-to-BE split is pinned at its pre-quarantine
            // proportions (rescaled into whatever pool the fresh
            // decision leaves the BEs), so the annealer stops feeding
            // Algorithm 3 slab flip-flops. The LC target keeps tracking
            // load — the SLO constraint always outranks the hysteresis,
            // so a load surge or drop re-sizes the LC partition even
            // mid-quarantine. The quarantine is bounded, so the full
            // plan always resumes within `quarantine_intervals`.
            let hold_plan = self.hardening.as_ref().is_some_and(Hardening::quarantined);
            if hold_plan {
                if let Some(prev) = &self.latest_plan {
                    let pool: u64 = plan.be_bytes.iter().sum();
                    let held: u64 = prev.be_bytes.iter().sum();
                    if held > 0 && prev.be_bytes.len() == plan.be_bytes.len() {
                        for (b, &h) in plan.be_bytes.iter_mut().zip(&prev.be_bytes) {
                            *b = (u128::from(h) * u128::from(pool) / u128::from(held)) as u64;
                        }
                    }
                }
            }
            if self.supervisor.is_some() && self.ppm.mode() == DegradationState::Rl {
                if let Some(raw) = self.ppm.rl_raw_action() {
                    if !raw.is_finite() {
                        // Diverged network: the partitioner held its
                        // target this interval; demote at the next
                        // boundary.
                        if let Some(sup) = &mut self.supervisor {
                            sup.note_nonfinite();
                        }
                    }
                }
            }

            // Convert the byte plan into PP-E page targets.
            let mut targets = vec![None; sim.workloads.len()];
            targets[lc_id.index()] = Some(plan.lc_bytes / self.page_size);
            if self.cfg.variant == MtatVariant::Full {
                let mut be_iter = plan.be_bytes.iter();
                for w in sim.workloads.iter() {
                    if !w.is_lc() {
                        if let Some(&bytes) = be_iter.next() {
                            targets[w.id.index()] = Some(bytes / self.page_size);
                        }
                    }
                }
            }
            ppe.set_plan(sim.mem, targets);
            ppe.age();
            if guard_acts.extra_age {
                // Leak-drift renormalization: one extra halving round
                // drains the popularity mass that dead (leaked) pages
                // accumulated, so live pages win refinement again.
                ppe.age();
            }
            drop(plan_span);
            if self.obs.tracing_enabled() {
                self.open_plan_provenance(sim, &obs, &plan);
            }
            if self.obs.is_enabled() {
                if let Some(h) = &self.hardening {
                    self.obs.gauge("mtat.thrash_signal", h.thrash_signal());
                    self.obs
                        .gauge("mtat.guard_throttle_shift", h.throttle_shift() as f64);
                    let fire = |kind: &str| {
                        self.obs.count("mtat.guard_events", 1);
                        self.obs.event(
                            sim.now_secs,
                            "mtat",
                            Severity::Warn,
                            "guard",
                            &[("kind", kind.to_string())],
                        );
                    };
                    if guard_acts.quarantine_entered {
                        fire("quarantine_entered");
                    }
                    if guard_acts.quarantine_exited {
                        fire("quarantine_exited");
                    }
                    if guard_acts.escalate_pressure {
                        fire("pressure_escalation");
                    }
                    if guard_acts.extra_age {
                        fire("leak_renorm");
                    }
                    if hold_plan {
                        fire("plan_held");
                    }
                }
                self.emit_interval_telemetry(sim.now_secs, &plan, prev_lc_bytes);
                if let Some(sup) = &self.supervisor {
                    let transitions = sup.transitions();
                    if transitions.len() > transitions_before {
                        let t = transitions.last().expect("length just checked");
                        self.obs.count("mtat.supervisor_transitions", 1);
                        self.obs.event(
                            sim.now_secs,
                            "mtat",
                            Severity::Warn,
                            "supervisor_transition",
                            &[("to", t.to.label().to_string())],
                        );
                        self.obs.dump_flight_recorder("supervisor transition");
                    }
                }
            }
            self.latest_plan = Some(plan);
            self.reset_accumulators();
        }

        // Placement freeze composes two causes: the §7 bandwidth
        // extension and the thrash guard's quarantine. Either alone
        // freezes; the setter only runs when at least one knob is
        // configured so the plain paper configuration is untouched.
        let bw_frozen = self
            .cfg
            .bandwidth_freeze_util
            .is_some_and(|t| sim.fmem_bw_util > t);
        let quarantined = self.hardening.as_ref().is_some_and(Hardening::quarantined);
        if self.cfg.bandwidth_freeze_util.is_some() || self.hardening.is_some() {
            ppe.set_placement_frozen(bw_frozen || quarantined);
        }
        if let Some(h) = &self.hardening {
            ppe.set_migration_throttle(h.throttle_shift());
        }
        {
            let _enforce = self.obs.span(sim.now_secs, "ppe-enforce");
            ppe.tick(sim.mem, sim.migration);
        }
        if self.obs.is_enabled() {
            self.obs
                .gauge("mtat.ppe_deferred_pages", ppe.deferred_pages() as f64);
        }
        self.ppe = Some(ppe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::policy::WorkloadClass;
    use mtat_tiermem::memory::InitialPlacement;

    fn small_lc() -> LcSpec {
        let mut s = LcSpec::redis();
        // Shrink the resident set so tests run on the small memory spec.
        s.rss_bytes = 512 * mtat_tiermem::MIB;
        s
    }

    fn small_be() -> BeSpec {
        let mut s = BeSpec::sssp();
        s.rss_bytes = 512 * mtat_tiermem::MIB;
        s
    }

    fn obs(
        mem: &TieredMemory,
        w: WorkloadId,
        class: WorkloadClass,
        sampled: Vec<u64>,
        violated: bool,
        load: f64,
    ) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * mem.spec().page_size(),
            cores: 1,
            load_rps: load,
            p99_secs: if violated { 1.0 } else { 1e-3 },
            slo_secs: 20e-3,
            hit_ratio: mem.residency(w).fmem_usage_ratio(),
            access_rate: load * 28.0,
            throughput: load,
            sampled,
            touched: Default::default(),
            slo_violated: violated,
        }
    }

    /// Heuristic-sizer MTAT on a miniature system: a violated interval
    /// grows the LC partition; a calm one shrinks it.
    #[test]
    fn mtat_grows_lc_partition_on_violation() {
        let sim_cfg = SimConfig::small_test();
        let lc_spec = small_lc();
        let be_spec = small_be();
        let mut policy = MtatPolicy::new(
            MtatConfig::full().with_heuristic_sizer(),
            &sim_cfg,
            &lc_spec,
            std::slice::from_ref(&be_spec),
        );

        let mut mem = TieredMemory::new(sim_cfg.mem);
        let lc = mem
            .register_workload(lc_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let be = mem
            .register_workload(be_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = mtat_tiermem::migration::MigrationEngine::new(
            sim_cfg.migration_bw,
            sim_cfg.mem.page_size(),
            sim_cfg.interval_secs,
        )
        .unwrap();

        let n_lc = mem.region(lc).n_pages as usize;
        let n_be = mem.region(be).n_pages as usize;
        let init = [
            obs(&mem, lc, WorkloadClass::Lc, vec![0; n_lc], false, 0.0),
            obs(&mem, be, WorkloadClass::Be, vec![0; n_be], false, 0.0),
        ];
        policy.init(&mem, &init);
        assert_eq!(policy.name(), "mtat_full_heuristic");

        // Drive several intervals of SLO violations.
        for t in 0..30 {
            let w = [
                obs(&mem, lc, WorkloadClass::Lc, vec![1; n_lc], true, 1000.0),
                obs(&mem, be, WorkloadClass::Be, vec![3; n_be], false, 0.0),
            ];
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t > 0 && t % 5 == 0,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
        let grown = mem.residency(lc).fmem_pages;
        assert!(grown > 0, "LC partition should have grown, got {grown}");
        let plan = policy.latest_plan().expect("plan exists").clone();
        assert!(plan.lc_bytes > 0);
        assert_eq!(plan.be_bytes.len(), 1);

        // Now calm intervals: partition should shrink back.
        for t in 30..80 {
            let w = [
                obs(&mem, lc, WorkloadClass::Lc, vec![1; n_lc], false, 10.0),
                obs(&mem, be, WorkloadClass::Be, vec![3; n_be], false, 0.0),
            ];
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t % 5 == 0,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
        let shrunk = mem.residency(lc).fmem_pages;
        assert!(
            shrunk < grown,
            "LC partition should shrink when idle: {grown} -> {shrunk}"
        );
        mem.check_invariants().unwrap();
    }

    /// The supervised policy demotes to the proportional controller
    /// after a sustained SLO-violation streak and re-promotes to the RL
    /// sizer once the configured healthy window passes.
    #[test]
    fn supervisor_demotes_on_violation_streak_and_repromotes() {
        let sim_cfg = SimConfig::small_test();
        let lc_spec = small_lc();
        let be_spec = small_be();
        let mut policy = MtatPolicy::new(
            MtatConfig::full().with_heuristic_sizer().supervised(),
            &sim_cfg,
            &lc_spec,
            std::slice::from_ref(&be_spec),
        );
        assert_eq!(policy.name(), "mtat_full_heuristic_supervised");
        assert_eq!(policy.degradation(), Some(DegradationState::Rl));

        let mut mem = TieredMemory::new(sim_cfg.mem);
        let lc = mem
            .register_workload(lc_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let be = mem
            .register_workload(be_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = mtat_tiermem::migration::MigrationEngine::new(
            sim_cfg.migration_bw,
            sim_cfg.mem.page_size(),
            sim_cfg.interval_secs,
        )
        .unwrap();
        let n_lc = mem.region(lc).n_pages as usize;
        let n_be = mem.region(be).n_pages as usize;
        let init = [
            obs(&mem, lc, WorkloadClass::Lc, vec![0; n_lc], false, 0.0),
            obs(&mem, be, WorkloadClass::Be, vec![0; n_be], false, 0.0),
        ];
        policy.init(&mem, &init);

        let drive = |policy: &mut MtatPolicy,
                     mem: &mut TieredMemory,
                     engine: &mut mtat_tiermem::migration::MigrationEngine,
                     t0: usize,
                     ticks: usize,
                     violated: bool| {
            for t in t0..t0 + ticks {
                let w = [
                    obs(mem, lc, WorkloadClass::Lc, vec![1; n_lc], violated, 800.0),
                    obs(mem, be, WorkloadClass::Be, vec![3; n_be], false, 0.0),
                ];
                engine.begin_tick(1.0);
                let mut sim = SimState {
                    mem,
                    migration: engine,
                    workloads: &w,
                    tick_secs: 1.0,
                    now_secs: t as f64,
                    interval_boundary: t > 0 && t % 5 == 0,
                    obs_age_ticks: 0,
                    fmem_bw_util: 0.0,
                    smem_bw_util: 0.0,
                    scenario_phase: 0,
                };
                policy.on_tick(&mut sim);
            }
        };

        // Default thresholds demote after 3 consecutive violating
        // intervals: 4 intervals of violations are plenty.
        drive(&mut policy, &mut mem, &mut engine, 0, 21, true);
        assert_eq!(
            policy.degradation(),
            Some(DegradationState::Proportional),
            "sustained violations should demote the RL sizer"
        );
        assert!(!policy.supervisor_transitions().is_empty());

        // A healthy window re-promotes.
        drive(&mut policy, &mut mem, &mut engine, 21, 25, false);
        assert_eq!(
            policy.degradation(),
            Some(DegradationState::Rl),
            "healthy intervals should re-promote to the RL sizer"
        );
    }

    /// A PEBS blackout (zero sampled access rate while requests are
    /// being served) demotes immediately — and keeps the policy demoted
    /// for as long as the sensor stays dead.
    #[test]
    fn supervisor_demotes_on_dead_sensor() {
        let sim_cfg = SimConfig::small_test();
        let lc_spec = small_lc();
        let mut policy = MtatPolicy::new(
            MtatConfig::lc_only().with_heuristic_sizer().supervised(),
            &sim_cfg,
            &lc_spec,
            &[],
        );
        let mut mem = TieredMemory::new(sim_cfg.mem);
        let lc = mem
            .register_workload(lc_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = mtat_tiermem::migration::MigrationEngine::new(
            sim_cfg.migration_bw,
            sim_cfg.mem.page_size(),
            sim_cfg.interval_secs,
        )
        .unwrap();
        let n_lc = mem.region(lc).n_pages as usize;
        let init = [obs(&mem, lc, WorkloadClass::Lc, vec![0; n_lc], false, 0.0)];
        policy.init(&mem, &init);

        for t in 0..11 {
            // Requests flow (load 800) but the sampler reports nothing.
            let mut lc_obs = obs(&mem, lc, WorkloadClass::Lc, vec![0; n_lc], false, 800.0);
            lc_obs.access_rate = 0.0;
            let w = [lc_obs];
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t > 0 && t % 5 == 0,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
        assert_eq!(
            policy.degradation(),
            Some(DegradationState::Proportional),
            "a dead sensor should demote even without SLO violations"
        );
    }

    #[test]
    fn lc_only_variant_has_no_be_targets() {
        let sim_cfg = SimConfig::small_test();
        let lc_spec = small_lc();
        let be_spec = small_be();
        let mut policy = MtatPolicy::new(
            MtatConfig::lc_only().with_heuristic_sizer(),
            &sim_cfg,
            &lc_spec,
            std::slice::from_ref(&be_spec),
        );
        let mut mem = TieredMemory::new(sim_cfg.mem);
        let lc = mem
            .register_workload(lc_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let be = mem
            .register_workload(be_spec.rss_bytes, InitialPlacement::AllSmem)
            .unwrap();
        let n_lc = mem.region(lc).n_pages as usize;
        let n_be = mem.region(be).n_pages as usize;
        let init = [
            obs(&mem, lc, WorkloadClass::Lc, vec![0; n_lc], false, 0.0),
            obs(&mem, be, WorkloadClass::Be, vec![0; n_be], false, 0.0),
        ];
        policy.init(&mem, &init);
        assert_eq!(policy.name(), "mtat_lc_only_heuristic");

        let mut engine = mtat_tiermem::migration::MigrationEngine::new(
            sim_cfg.migration_bw,
            sim_cfg.mem.page_size(),
            sim_cfg.interval_secs,
        )
        .unwrap();
        for t in 0..12 {
            let w = [
                obs(&mem, lc, WorkloadClass::Lc, vec![1; n_lc], true, 500.0),
                obs(&mem, be, WorkloadClass::Be, vec![5; n_be], false, 0.0),
            ];
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t > 0 && t % 5 == 0,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
        // LC has an explicit target; BE does not.
        assert!(policy.fmem_target(lc).is_some());
        assert_eq!(policy.fmem_target(be), None);
    }
}
