//! TPP-like baseline: fault-driven promotion with LRU-style demotion.
//!
//! TPP (ASPLOS '23) relies on the kernel's NUMA-hint page faults: a page
//! accessed while resident in the slow tier takes a minor fault, which
//! both *costs latency on the access path* and nominates the page for
//! promotion; demotion pressure comes from an active/inactive LRU list
//! that evicts the least-recently-touched FMem pages when the fast tier
//! runs low. Two consequences the paper highlights:
//!
//! * continuous page-fault-induced migration makes TPP's LC latency
//!   *worse than running from SMem outright* (Fig. 5: "TPP experiences
//!   even more severe latency degradation than SMEM_ALL"), and
//! * promotion-on-touch with no per-tenant accounting produces severe
//!   FMem thrash between co-located workloads (lowest fairness, Fig. 6).
//!
//! The reproduction models the hint-fault cost as a per-SMem-access
//! latency penalty ([`Policy::smem_access_penalty`]) and the placement
//! loop as promote-recently-touched / demote-least-recently-touched
//! under a free-frame watermark.

use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::{PageId, Tier, WorkloadId};

use crate::policy::{Policy, SimState, WorkloadObs};

/// Configuration of the TPP-like policy.
#[derive(Debug, Clone)]
pub struct TppConfig {
    /// Fraction of SMem accesses that take a NUMA-hint minor fault.
    pub hint_fault_prob: f64,
    /// Latency of one hint fault (seconds).
    pub fault_cost_secs: f64,
    /// Maximum promotions per tick (pages).
    pub promotions_per_tick: u64,
    /// Keep this fraction of FMem frames free (demotion watermark).
    pub free_watermark: f64,
}

impl Default for TppConfig {
    fn default() -> Self {
        Self {
            // Calibrated so that an LC workload running entirely from
            // SMem under TPP sustains ~90 % of what it would without the
            // fault overhead — landing TPP below SMEM_ALL as in Fig. 8.
            hint_fault_prob: 0.05,
            fault_cost_secs: 1.5e-6,
            promotions_per_tick: 512,
            free_watermark: 0.01,
        }
    }
}

/// The TPP-like fault-driven policy.
#[derive(Debug)]
pub struct TppPolicy {
    cfg: TppConfig,
    /// Per-page tick of last observed access (0 = never).
    last_access: Vec<u64>,
    tick_index: u64,
}

impl TppPolicy {
    /// Creates the policy with default calibration.
    pub fn new() -> Self {
        Self::with_config(TppConfig::default())
    }

    /// Creates the policy with explicit parameters.
    pub fn with_config(cfg: TppConfig) -> Self {
        Self {
            cfg,
            last_access: Vec::new(),
            tick_index: 0,
        }
    }
}

impl Default for TppPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for TppPolicy {
    fn name(&self) -> &str {
        "tpp"
    }

    fn init(&mut self, mem: &TieredMemory, _workloads: &[WorkloadObs]) {
        self.last_access = vec![0; mem.page_count()];
        self.tick_index = 0;
    }

    fn smem_access_penalty(&self, _w: WorkloadId) -> f64 {
        self.cfg.hint_fault_prob * self.cfg.fault_cost_secs
    }

    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        self.tick_index += 1;
        let now = self.tick_index;

        // Record touches and collect promotion candidates: pages touched
        // while in SMem this tick (hotter candidates first so the budget
        // goes to the most active pages, as fault frequency would).
        let mut candidates: Vec<(u64, PageId)> = Vec::new();
        for obs in sim.workloads {
            let region = sim.mem.region(obs.id);
            for (rank, &est) in obs.sampled.iter().enumerate() {
                if est == 0 {
                    continue;
                }
                let page = region.page(rank as u32);
                self.last_access[page.index()] = now;
                if sim.mem.tier_of_unchecked(page) == Tier::SMem {
                    candidates.push((est, page));
                }
            }
        }
        candidates.sort_unstable_by_key(|&(est, _)| std::cmp::Reverse(est));
        candidates.truncate(self.cfg.promotions_per_tick as usize);

        if candidates.is_empty() {
            return;
        }

        // Demote least-recently-used FMem pages to restore the free-frame
        // watermark plus room for this tick's promotions.
        let fmem_pages = sim.mem.spec().fmem_pages();
        let watermark = (fmem_pages as f64 * self.cfg.free_watermark).ceil() as u64;
        let free = sim.mem.free_pages(Tier::FMem);
        let wanted = candidates.len() as u64 + watermark;
        if free < wanted {
            let need = wanted - free;
            // Gather (last_access, page) for all FMem-resident pages.
            let mut lru: Vec<(u64, PageId)> = Vec::new();
            for w in 0..sim.mem.workload_count() {
                let id = WorkloadId(w as u16);
                for p in sim.mem.pages_in_tier(id, Tier::FMem).collect::<Vec<_>>() {
                    lru.push((self.last_access[p.index()], p));
                }
            }
            lru.sort_unstable_by_key(|&(t, _)| t);
            let take = (need as usize).min(lru.len());
            let granted = sim.migration.try_consume_pages(take as u64) as usize;
            for &(_, p) in lru.iter().take(granted) {
                // Skip pages that cannot move right now (e.g. a full
                // slow tier) instead of panicking; the watermark check
                // simply runs again next tick.
                let _ = sim.mem.migrate(p, Tier::SMem);
            }
        }

        // Promote candidates into whatever frames are free now.
        let room = sim
            .mem
            .free_pages(Tier::FMem)
            .saturating_sub(watermark)
            .min(candidates.len() as u64);
        let granted = sim.migration.try_consume_pages(room) as usize;
        for &(_, p) in candidates.iter().take(granted) {
            let _ = sim.mem.migrate(p, Tier::FMem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WorkloadClass;
    use mtat_tiermem::memory::{InitialPlacement, MemorySpec};
    use mtat_tiermem::migration::MigrationEngine;
    use mtat_tiermem::MIB;

    fn obs(mem: &TieredMemory, w: WorkloadId, sampled: Vec<u64>) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class: WorkloadClass::Be,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    fn run_tick(
        policy: &mut TppPolicy,
        mem: &mut TieredMemory,
        engine: &mut MigrationEngine,
        w: &[WorkloadObs],
        t: f64,
    ) {
        engine.begin_tick(1.0);
        let mut sim = SimState {
            mem,
            migration: engine,
            workloads: w,
            tick_secs: 1.0,
            now_secs: t,
            interval_boundary: false,
            obs_age_ticks: 0,
            fmem_bw_util: 0.0,
            smem_bw_util: 0.0,
            scenario_phase: 0,
        };
        policy.on_tick(&mut sim);
    }

    #[test]
    fn promotes_touched_smem_pages() {
        let spec = MemorySpec::new(8 * MIB, 32 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = TppPolicy::new();
        let w = [obs(&mem, a, vec![5, 0, 3, 0, 0, 0, 0, 0])];
        p.init(&mem, &w);
        run_tick(&mut p, &mut mem, &mut engine, &w, 0.0);
        let region = mem.region(a);
        assert_eq!(mem.tier_of(region.page(0)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(2)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(1)).unwrap(), Tier::SMem);
    }

    #[test]
    fn lru_demotion_under_pressure() {
        let spec = MemorySpec::new(4 * MIB, 32 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = TppPolicy::new();
        p.init(&mem, &[obs(&mem, a, vec![0; 8])]);
        // Tick 1: ranks 0..4 are resident (FmemFirst takes 4); touch only
        // ranks 0 and 1, so 2 and 3 become the LRU victims.
        let w1 = [obs(&mem, a, vec![9, 9, 0, 0, 0, 0, 0, 0])];
        run_tick(&mut p, &mut mem, &mut engine, &w1, 0.0);
        // Tick 2: touch SMem ranks 4 and 5 -> they need frames; LRU
        // evicts the untouched ranks.
        let w2 = [obs(&mem, a, vec![9, 9, 0, 0, 7, 7, 0, 0])];
        run_tick(&mut p, &mut mem, &mut engine, &w2, 1.0);
        let region = mem.region(a);
        assert_eq!(mem.tier_of(region.page(4)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(5)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(2)).unwrap(), Tier::SMem);
        assert_eq!(mem.tier_of(region.page(3)).unwrap(), Tier::SMem);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn fault_penalty_is_constant_per_smem_access() {
        let p = TppPolicy::new();
        let pen = p.smem_access_penalty(WorkloadId(0));
        assert!((pen - 0.05 * 1.5e-6).abs() < 1e-18);
    }

    #[test]
    fn thrash_between_competing_workloads() {
        // Two workloads alternately touching their pages keep stealing
        // the two FMem frames from each other — TPP's pathology.
        let spec = MemorySpec::new(2 * MIB, 16 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(2 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let b = mem
            .register_workload(2 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = TppPolicy::with_config(TppConfig {
            free_watermark: 0.0,
            ..TppConfig::default()
        });
        p.init(&mem, &[obs(&mem, a, vec![0; 2]), obs(&mem, b, vec![0; 2])]);
        let mut moves = 0;
        for t in 0..6 {
            let (sa, sb) = if t % 2 == 0 {
                (vec![5, 5], vec![0, 0])
            } else {
                (vec![0, 0], vec![5, 5])
            };
            let w = [obs(&mem, a, sa), obs(&mem, b, sb)];
            run_tick(&mut p, &mut mem, &mut engine, &w, t as f64);
            moves += engine.bytes_moved_this_tick() / MIB;
        }
        // Constant churn: far more movement than the 2-frame pool size.
        assert!(moves >= 10, "only {moves} page moves");
    }

    #[test]
    fn budget_limits_promotions() {
        let spec = MemorySpec::new(8 * MIB, 32 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        // Engine that can move only 2 pages per tick.
        let mut engine = MigrationEngine::new(2.0 * MIB as f64, MIB, 10.0).unwrap();
        let mut p = TppPolicy::new();
        let w = [obs(&mem, a, vec![9; 8])];
        p.init(&mem, &w);
        run_tick(&mut p, &mut mem, &mut engine, &w, 0.0);
        assert_eq!(mem.residency(a).fmem_pages, 2);
    }
}
