//! MEMTIS-like baseline: global hotness-histogram page placement.
//!
//! MEMTIS (SOSP '23) keeps per-page access histograms and migrates the
//! hottest pages into FMem regardless of which tenant owns them — there
//! is no notion of partitions or SLOs. That is exactly the behaviour the
//! paper's motivation section dissects: stable, high-frequency BE pages
//! monopolize FMem while the LC workload's uniformly-touched pages look
//! cold and are displaced, so its FMem residency collapses (Fig. 2) and
//! its SLO is violated under load (Fig. 5, Table 4).
//!
//! The reproduction implements the placement core — sampled counts into
//! exponential-bin histograms, periodic aging, promote-hottest /
//! demote-coldest competition over the whole FMem pool — and inherits
//! its observable consequences from the workload models.

use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::WorkloadId;

use crate::policy::{Policy, SimState, WorkloadObs};
use crate::ppe::placement;
use crate::tracker::HotnessTracker;

/// The MEMTIS-like global hotness policy.
#[derive(Debug)]
pub struct MemtisPolicy {
    tracker: Option<HotnessTracker>,
    /// Migration appetite per tick, in page pairs.
    pairs_per_tick: u64,
    /// Candidate buffers reused across ticks.
    scratch: placement::PlacementScratch,
    /// Workload-id buffer reused across ticks.
    all_ids: Vec<WorkloadId>,
    /// Telemetry handle; phase spans for tracking vs placement.
    obs: mtat_obs::Obs,
}

impl MemtisPolicy {
    /// Creates the policy with the default per-tick migration appetite.
    pub fn new() -> Self {
        Self {
            tracker: None,
            pairs_per_tick: 1024,
            scratch: placement::PlacementScratch::default(),
            all_ids: Vec::new(),
            obs: mtat_obs::Obs::disabled(),
        }
    }

    /// Overrides the per-tick migration appetite (page pairs).
    pub fn with_pairs_per_tick(mut self, pairs: u64) -> Self {
        self.pairs_per_tick = pairs;
        self
    }
}

impl Default for MemtisPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for MemtisPolicy {
    fn name(&self) -> &str {
        "memtis"
    }

    fn init(&mut self, mem: &TieredMemory, _workloads: &[WorkloadObs]) {
        self.tracker = Some(HotnessTracker::new(mem));
    }

    fn set_obs(&mut self, obs: &mtat_obs::Obs) {
        self.obs = obs.clone();
    }

    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        let tracker = self.tracker.as_mut().expect("init() must run first");
        {
            let _track = self.obs.span(sim.now_secs, "track");
            tracker.record_tick(sim.workloads);
            if sim.interval_boundary {
                tracker.age_all();
            }
        }
        let _place = self.obs.span(sim.now_secs, "ppe-enforce");
        self.all_ids.clear();
        self.all_ids.extend(sim.workloads.iter().map(|w| w.id));
        let pool_cap = sim.mem.spec().fmem_pages();
        placement::compete_with(
            &mut self.scratch,
            sim.mem,
            sim.migration,
            tracker,
            &self.all_ids,
            pool_cap,
            self.pairs_per_tick,
            crate::ppe::HOTNESS_HYSTERESIS,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WorkloadClass;
    use mtat_tiermem::memory::{InitialPlacement, MemorySpec};
    use mtat_tiermem::migration::MigrationEngine;
    use mtat_tiermem::MIB;

    fn obs(
        mem: &TieredMemory,
        w: WorkloadId,
        class: WorkloadClass,
        sampled: Vec<u64>,
    ) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    /// The paper's motivating pathology in miniature: an LC workload that
    /// starts fully FMem-resident is displaced by a BE workload whose
    /// pages are individually hotter.
    #[test]
    fn be_displaces_lc_under_memtis() {
        let spec = MemorySpec::new(4 * MIB, 32 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let lc = mem
            .register_workload(4 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let be = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();

        let mut policy = MemtisPolicy::new();
        let init_obs = [
            obs(&mem, lc, WorkloadClass::Lc, vec![0; 4]),
            obs(&mem, be, WorkloadClass::Be, vec![0; 8]),
        ];
        policy.init(&mem, &init_obs);

        for tick in 0..6 {
            // LC touches each page once (uniform, sparse); BE hammers
            // its first four pages.
            let w = [
                obs(&mem, lc, WorkloadClass::Lc, vec![1; 4]),
                obs(
                    &mem,
                    be,
                    WorkloadClass::Be,
                    vec![200, 180, 160, 140, 0, 0, 0, 0],
                ),
            ];
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem: &mut mem,
                migration: &mut engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: tick as f64,
                interval_boundary: false,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
        // BE's four hot pages now own the whole FMem pool.
        assert_eq!(mem.residency(be).fmem_pages, 4);
        assert_eq!(mem.residency(lc).fmem_pages, 0, "LC displaced to SMem");
    }

    #[test]
    fn aging_happens_on_interval_boundary() {
        let spec = MemorySpec::new(2 * MIB, 16 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(2 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut policy = MemtisPolicy::new();
        let w = [obs(&mem, a, WorkloadClass::Be, vec![8, 0])];
        policy.init(&mem, &w);
        engine.begin_tick(1.0);
        let mut sim = SimState {
            mem: &mut mem,
            migration: &mut engine,
            workloads: &w,
            tick_secs: 1.0,
            now_secs: 0.0,
            interval_boundary: true,
            obs_age_ticks: 0,
            fmem_bw_util: 0.0,
            smem_bw_util: 0.0,
            scenario_phase: 0,
        };
        policy.on_tick(&mut sim);
        // Recorded 8, then aged to 4.
        assert_eq!(policy.tracker.as_ref().unwrap().histogram(a).total(), 4);
    }

    #[test]
    fn name_and_default() {
        assert_eq!(MemtisPolicy::default().name(), "memtis");
    }
}
