//! The page-placement policy abstraction and the built-in policies.
//!
//! Every memory-management scheme evaluated in the paper — MTAT (Full),
//! MTAT (LC Only), MEMTIS, TPP, FMEM_ALL, and SMEM_ALL — implements
//! [`Policy`]. The simulation driver calls [`Policy::on_tick`] once per
//! tick with a [`SimState`] view: the page table, the metered migration
//! engine, and per-workload observations (sampled access counts, loads,
//! latencies). The policy migrates pages; the driver measures the
//! consequences.

pub mod hotset;
pub mod memtis;
pub mod mtat;
pub mod statics;
pub mod tpp;

use mtat_obs::Obs;
use mtat_tiermem::memory::{InitialPlacement, TieredMemory};
use mtat_tiermem::migration::MigrationEngine;
use mtat_tiermem::page::WorkloadId;

use crate::supervisor::DegradationState;

/// Whether a workload is latency-critical or best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Latency-critical: has an SLO, load varies.
    Lc,
    /// Best-effort: runs flat out, measured by throughput.
    Be,
}

/// Per-workload observations for the current tick, produced by the
/// simulation driver before the policy runs.
#[derive(Debug, Clone)]
pub struct WorkloadObs {
    /// The workload's id in the page table.
    pub id: WorkloadId,
    /// LC or BE.
    pub class: WorkloadClass,
    /// Benchmark name.
    pub name: String,
    /// Resident set size in bytes.
    pub rss_bytes: u64,
    /// Cores serving this workload.
    pub cores: usize,
    /// Offered load in requests/second (0 for BE).
    pub load_rps: f64,
    /// P99 response time observed last tick (seconds; infinite when
    /// saturated, 0 for BE).
    pub p99_secs: f64,
    /// The workload's SLO (infinite for BE).
    pub slo_secs: f64,
    /// FMem hit ratio observed last tick.
    pub hit_ratio: f64,
    /// True memory accesses per second this tick.
    pub access_rate: f64,
    /// Achieved throughput (requests/s for LC, ops/s for BE).
    pub throughput: f64,
    /// PEBS-estimated access counts per page rank for this tick
    /// (sampled events × sampling period).
    pub sampled: Vec<u64>,
    /// Dirty-rank bitset over `sampled`: which ranks the sampler
    /// scattered events into this tick. Consumers walk set bits (in
    /// ascending rank order, matching a dense front-to-back scan)
    /// instead of every page. The default is the conservative all-dirty
    /// state, which preserves dense semantics for hand-built
    /// observations and the legacy accounting path.
    pub touched: mtat_tiermem::sampler::TouchedSet,
    /// Whether the last tick violated the SLO.
    pub slo_violated: bool,
}

impl WorkloadObs {
    /// Convenience: is this the latency-critical workload?
    pub fn is_lc(&self) -> bool {
        self.class == WorkloadClass::Lc
    }
}

/// Mutable view of the system handed to a policy each tick.
///
/// `mem` and `migration` are disjoint fields, so a policy can hold
/// references to both simultaneously. All migrations must be paid for
/// through `migration` (`try_consume_pages`) before being applied to
/// `mem` — the driver resets the per-tick budget before each call.
#[derive(Debug)]
pub struct SimState<'a> {
    /// The page table.
    pub mem: &'a mut TieredMemory,
    /// The bandwidth-metered migration engine.
    pub migration: &'a mut MigrationEngine,
    /// Per-workload observations (indexed by `WorkloadId`).
    pub workloads: &'a [WorkloadObs],
    /// Tick length in seconds.
    pub tick_secs: f64,
    /// Simulation time at the start of this tick.
    pub now_secs: f64,
    /// True when a partitioning interval boundary has just been reached
    /// (PP-M runs, histograms age).
    pub interval_boundary: bool,
    /// Age of `workloads` in ticks: 0 when observations are current,
    /// larger under injected telemetry staleness
    /// ([`mtat_tiermem::faults::FaultKind::TelemetryStale`]). Policies
    /// with a supervisor use this to detect a lagging telemetry path.
    pub obs_age_ticks: u64,
    /// Fast-tier bandwidth utilization (0..1) observed last tick — the
    /// signal the §7 bandwidth-aware extension reacts to.
    pub fmem_bw_util: f64,
    /// Slow-tier bandwidth utilization (0..1) observed last tick.
    pub smem_bw_util: f64,
    /// Active adversarial-scenario phase id (0 = no scenario). Threaded
    /// into decision provenance so "what was the workload doing when
    /// this plan landed" reconstructs post-hoc; policies must not act
    /// on it (the scenario is the adversary, not a sensor).
    pub scenario_phase: u32,
}

/// A page-placement policy under evaluation.
pub trait Policy {
    /// Short display name (e.g. `"memtis"`).
    fn name(&self) -> &str;

    /// Called once after all workloads are registered, before the first
    /// tick. Policies build their histograms and initial targets here.
    fn init(&mut self, _mem: &TieredMemory, _workloads: &[WorkloadObs]) {}

    /// Hands the policy the run's telemetry handle before the first
    /// tick. Policies that export internal state (plan deltas, learner
    /// diagnostics, supervisor transitions) keep a clone; the default
    /// ignores it. The handle may be disabled — every call on it is
    /// then a no-op — and instrumentation must never influence the
    /// policy's decisions.
    fn set_obs(&mut self, _obs: &Obs) {}

    /// Called every tick; the policy observes and migrates.
    fn on_tick(&mut self, sim: &mut SimState<'_>);

    /// Where workload pages should initially be placed for this policy.
    /// Defaults to the paper's setup: the LC workload starts resident in
    /// FMem (Fig. 2: "Redis initially occupies 100 % of available
    /// FMem"), BE workloads start cold in SMem.
    fn initial_placement(&self, class: WorkloadClass) -> InitialPlacement {
        match class {
            WorkloadClass::Lc => InitialPlacement::FmemFirst,
            WorkloadClass::Be => InitialPlacement::AllSmem,
        }
    }

    /// Extra latency (seconds) added to each *SMem* access of workload
    /// `w` — e.g. TPP's NUMA-hint page-fault stalls. The driver folds
    /// this into the workload's service time.
    fn smem_access_penalty(&self, _w: WorkloadId) -> f64 {
        0.0
    }

    /// The policy's current FMem partition target for `w` in bytes, if it
    /// maintains explicit partitions (diagnostics; `None` for
    /// hotness-competition policies).
    fn fmem_target(&self, _w: WorkloadId) -> Option<u64> {
        None
    }

    /// The policy's current degradation state, if it runs under a
    /// [`crate::supervisor::Supervisor`]; `None` for unsupervised
    /// policies. The driver records this in every
    /// [`crate::stats::TickRecord`].
    fn degradation(&self) -> Option<DegradationState> {
        None
    }

    /// Whether this policy consumes the per-page sampled access counts
    /// in [`WorkloadObs::sampled`]. The driver skips the PEBS sampling
    /// pass entirely for policies that return `false` — a real daemon
    /// would not program the PMU with no consumer attached — leaving
    /// `sampled` all-zero. The simulation physics (hit ratios, latency,
    /// throughput) never read the sampled counts, so skipping them
    /// changes no run output for such a policy.
    fn wants_page_samples(&self) -> bool {
        true
    }

    /// Serializes the policy's user-space controller state (the PP-M
    /// daemon's view: learned weights, replay buffer, schedules,
    /// accumulators) for crash recovery. `None` — the default — means
    /// the policy has no controller state worth persisting; the driver
    /// then skips checkpointing entirely.
    ///
    /// The returned bytes are a raw payload: the driver seals them into
    /// the versioned, checksummed envelope
    /// ([`mtat_snapshot::seal`]) before writing anything to disk.
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// The policy's controller daemon has crashed
    /// ([`mtat_tiermem::faults::FaultKind::PpmCrash`]). Until
    /// [`Policy::on_controller_restart`] is called, [`Policy::on_tick`]
    /// keeps running every tick — modeling the in-kernel enforcement
    /// half that outlives the daemon — but the policy must make no new
    /// control decisions. Policies without a daemon/enforcer split may
    /// ignore the hook (default: no-op).
    fn on_controller_crash(&mut self) {}

    /// The controller daemon has been restarted. `checkpoint` carries
    /// the payload of the latest valid checkpoint (already unsealed and
    /// checksum-verified by the driver), or `None` when no usable
    /// checkpoint survives — the policy then performs a cold restart
    /// from `mem`'s current placement alone. Default: no-op.
    fn on_controller_restart(&mut self, _mem: &TieredMemory, _checkpoint: Option<&[u8]>) {}

    /// Scans the policy's numeric surfaces for poison (NaN/Inf where
    /// finiteness is an invariant). `Ok(())` means every sentinel is
    /// quiet; `Err` names the first poisoned surface. The driver's
    /// health monitor calls this every tick (and before marking a
    /// checkpoint known-good), so implementations must be cheap.
    /// Default: no numeric surfaces, always healthy.
    fn health_probe(&self) -> Result<(), String> {
        Ok(())
    }

    /// Fault injection: corrupt the policy's learned state
    /// ([`mtat_tiermem::faults::FaultKind::SacPoison`]). Policies
    /// without learned state ignore the hook (default: no-op).
    fn inject_poison(&mut self) {}

    /// The health monitor has exhausted its rollback budget: park the
    /// policy on its most trustworthy fallback permanently (e.g. latch
    /// a supervisor at its Static rung). Default: no-op.
    fn enter_quarantine(&mut self, _now_secs: f64) {}

    /// A rollback just restored this policy from a known-good
    /// checkpoint. Re-enter conservatively (e.g. force the supervisor
    /// ladder to a non-RL rung) instead of resuming nominal control on
    /// the first post-rollback tick. Default: no-op.
    fn after_rollback(&mut self, _now_secs: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl Policy for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn on_tick(&mut self, _sim: &mut SimState<'_>) {}
    }

    #[test]
    fn default_trait_methods() {
        let mut p = Noop;
        assert_eq!(p.checkpoint(), None);
        p.on_controller_crash();
        let mem = TieredMemory::new(
            mtat_tiermem::memory::MemorySpec::new(1 << 20, 1 << 20, 1 << 20).unwrap(),
        );
        p.on_controller_restart(&mem, None);
        p.on_controller_restart(&mem, Some(&[1, 2, 3]));
        assert_eq!(p.name(), "noop");
        assert_eq!(p.smem_access_penalty(WorkloadId(0)), 0.0);
        assert_eq!(p.fmem_target(WorkloadId(0)), None);
        assert_eq!(p.degradation(), None);
        assert_eq!(
            p.initial_placement(WorkloadClass::Lc),
            InitialPlacement::FmemFirst
        );
        assert_eq!(
            p.initial_placement(WorkloadClass::Be),
            InitialPlacement::AllSmem
        );
    }

    #[test]
    fn workload_obs_is_lc() {
        let obs = WorkloadObs {
            id: WorkloadId(0),
            class: WorkloadClass::Lc,
            name: "x".into(),
            rss_bytes: 1,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: 1.0,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled: vec![],
            touched: Default::default(),
            slo_violated: false,
        };
        assert!(obs.is_lc());
    }
}
