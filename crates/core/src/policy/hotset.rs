//! vTMM-style baseline: FMem partitioned in proportion to hot-set size.
//!
//! vTMM (EuroSys '23, discussed in the paper's §6) defines each tenant's
//! *hot set size* as the number of its pages whose access count exceeds
//! a base threshold and allocates FMem to tenants proportionally to
//! those sizes, enforcing the shares with ordinary hotness-based
//! placement inside each share.
//!
//! It is an instructive middle point between MEMTIS (no partitions at
//! all) and MTAT (SLO-aware partitions): it *does* isolate tenants, but
//! its sizing signal is still pure access frequency — so a uniform,
//! bursty LC workload still under-claims FMem relative to what its SLO
//! needs, and there is no fairness objective among the BE workloads.

use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::page::WorkloadId;

use crate::policy::{Policy, SimState, WorkloadObs};
use crate::ppe::placement;
use crate::ppe::HOTNESS_HYSTERESIS;
use crate::tracker::HotnessTracker;

/// Configuration of the hot-set partitioning baseline.
#[derive(Debug, Clone)]
pub struct HotsetConfig {
    /// A page is "hot" if its (aged) access count is at least this.
    pub hot_threshold: u64,
    /// Per-tick placement appetite per workload, in page pairs.
    pub pairs_per_tick: u64,
}

impl Default for HotsetConfig {
    fn default() -> Self {
        Self {
            hot_threshold: 8,
            pairs_per_tick: 256,
        }
    }
}

/// The vTMM-like hot-set-proportional policy.
#[derive(Debug)]
pub struct HotsetPolicy {
    cfg: HotsetConfig,
    tracker: Option<HotnessTracker>,
    targets: Vec<u64>,
    page_size: u64,
}

impl HotsetPolicy {
    /// Creates the policy with default parameters.
    pub fn new() -> Self {
        Self::with_config(HotsetConfig::default())
    }

    /// Creates the policy with explicit parameters.
    pub fn with_config(cfg: HotsetConfig) -> Self {
        Self {
            cfg,
            tracker: None,
            targets: Vec::new(),
            page_size: 0,
        }
    }

    /// Hot-set size (pages over the threshold) of workload `w`.
    fn hot_set_size(&self, w: WorkloadId) -> u64 {
        let tracker = self.tracker.as_ref().expect("init() must run first");
        tracker
            .histogram(w)
            .iter()
            .filter(|&(_, c)| c >= self.cfg.hot_threshold)
            .count() as u64
    }

    /// Recomputes per-workload FMem page targets proportional to hot-set
    /// sizes (even split if every hot set is empty).
    fn recompute_targets(&mut self, mem: &TieredMemory) {
        let n = mem.workload_count();
        let fmem = mem.spec().fmem_pages();
        let sizes: Vec<u64> = (0..n)
            .map(|i| self.hot_set_size(WorkloadId(i as u16)))
            .collect();
        let total: u64 = sizes.iter().sum();
        self.targets = if total == 0 {
            vec![fmem / n as u64; n]
        } else {
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let share = (fmem as u128 * s as u128 / total as u128) as u64;
                    // Cap at the workload's resident set.
                    share.min(mem.region(WorkloadId(i as u16)).n_pages as u64)
                })
                .collect()
        };
    }
}

impl Default for HotsetPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for HotsetPolicy {
    fn name(&self) -> &str {
        "hotset"
    }

    fn init(&mut self, mem: &TieredMemory, _workloads: &[WorkloadObs]) {
        self.tracker = Some(HotnessTracker::new(mem));
        self.targets = vec![0; mem.workload_count()];
        self.page_size = mem.spec().page_size();
    }

    fn fmem_target(&self, w: WorkloadId) -> Option<u64> {
        self.targets
            .get(w.index())
            .map(|&pages| pages * self.page_size)
    }

    fn on_tick(&mut self, sim: &mut SimState<'_>) {
        {
            let tracker = self.tracker.as_mut().expect("init() must run first");
            tracker.record_tick(sim.workloads);
        }
        if sim.interval_boundary {
            self.recompute_targets(sim.mem);
            self.tracker.as_mut().expect("initialized").age_all();
        }
        if self.targets.iter().all(|&t| t == 0) {
            self.recompute_targets(sim.mem);
        }

        // Enforce shares: demote over-quota workloads first, then promote
        // under-quota ones, then refine within each share.
        let tracker = self.tracker.as_ref().expect("initialized");
        let n = sim.mem.workload_count();
        for i in 0..n {
            let w = WorkloadId(i as u16);
            if sim.mem.residency(w).fmem_pages > self.targets[i] {
                placement::enforce_target(sim.mem, sim.migration, tracker, w, self.targets[i]);
            }
        }
        for i in 0..n {
            let w = WorkloadId(i as u16);
            if sim.mem.residency(w).fmem_pages < self.targets[i] {
                placement::enforce_target(sim.mem, sim.migration, tracker, w, self.targets[i]);
            }
            placement::refine_swaps(
                sim.mem,
                sim.migration,
                tracker,
                w,
                self.cfg.pairs_per_tick,
                HOTNESS_HYSTERESIS,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WorkloadClass;
    use mtat_tiermem::memory::{InitialPlacement, MemorySpec};
    use mtat_tiermem::migration::MigrationEngine;
    use mtat_tiermem::MIB;

    fn obs(mem: &TieredMemory, w: WorkloadId, sampled: Vec<u64>) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class: WorkloadClass::Be,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    fn run_ticks(
        policy: &mut HotsetPolicy,
        mem: &mut TieredMemory,
        engine: &mut MigrationEngine,
        mk: impl Fn(&TieredMemory) -> Vec<WorkloadObs>,
        ticks: usize,
        interval_every: usize,
    ) {
        for t in 0..ticks {
            let w = mk(mem);
            engine.begin_tick(1.0);
            let mut sim = SimState {
                mem,
                migration: engine,
                workloads: &w,
                tick_secs: 1.0,
                now_secs: t as f64,
                interval_boundary: t > 0 && t % interval_every == 0,
                obs_age_ticks: 0,
                fmem_bw_util: 0.0,
                smem_bw_util: 0.0,
                scenario_phase: 0,
            };
            policy.on_tick(&mut sim);
        }
    }

    #[test]
    fn fmem_split_follows_hot_set_sizes() {
        let spec = MemorySpec::new(8 * MIB, 64 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let b = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = HotsetPolicy::new();
        p.init(&mem, &[obs(&mem, a, vec![0; 8]), obs(&mem, b, vec![0; 8])]);
        // a has 6 hot pages, b has 2.
        run_ticks(
            &mut p,
            &mut mem,
            &mut engine,
            |m| {
                vec![
                    obs(m, a, vec![20, 20, 20, 20, 20, 20, 0, 0]),
                    obs(m, b, vec![20, 20, 0, 0, 0, 0, 0, 0]),
                ]
            },
            8,
            2,
        );
        let ra = mem.residency(a).fmem_pages;
        let rb = mem.residency(b).fmem_pages;
        assert_eq!(ra, 6, "a holds its hot set: {ra}");
        assert_eq!(rb, 2, "b holds its hot set: {rb}");
        mem.check_invariants().unwrap();
    }

    #[test]
    fn uniform_cold_workload_underclaims() {
        // The baseline's blind spot (and MTAT's motivation): a workload
        // whose pages never cross the hot threshold gets almost nothing,
        // regardless of its latency needs.
        let spec = MemorySpec::new(8 * MIB, 64 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let lc = mem
            .register_workload(8 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let be = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        let mut p = HotsetPolicy::new();
        p.init(
            &mem,
            &[obs(&mem, lc, vec![0; 8]), obs(&mem, be, vec![0; 8])],
        );
        run_ticks(
            &mut p,
            &mut mem,
            &mut engine,
            |m| {
                vec![
                    obs(m, lc, vec![1; 8]),   // uniform, sub-threshold
                    obs(m, be, vec![100; 8]), // every page hot
                ]
            },
            10,
            2,
        );
        assert_eq!(mem.residency(lc).fmem_pages, 0, "LC displaced");
        assert_eq!(mem.residency(be).fmem_pages, 8);
    }

    #[test]
    fn empty_hot_sets_split_evenly() {
        let spec = MemorySpec::new(8 * MIB, 64 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let b = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut p = HotsetPolicy::new();
        p.init(&mem, &[obs(&mem, a, vec![0; 8]), obs(&mem, b, vec![0; 8])]);
        p.recompute_targets(&mem);
        assert_eq!(p.targets, vec![4, 4]);
        assert_eq!(p.name(), "hotset");
    }
}
