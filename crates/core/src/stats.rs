//! Experiment metrics: time series, SLO accounting, fairness.

use mtat_tiermem::error::TierMemError;
use serde::{Deserialize, Serialize};

use crate::supervisor::DegradationState;

/// One simulation tick's observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Simulation time at the start of the tick (seconds).
    pub t: f64,
    /// LC offered load this tick (requests/s, after burstiness).
    pub lc_load_rps: f64,
    /// LC P99 response time (seconds; may be infinite when saturated).
    pub lc_p99: f64,
    /// Whether the LC SLO was violated this tick.
    pub lc_violated: bool,
    /// Fraction of the LC resident set in FMem.
    pub lc_fmem_ratio: f64,
    /// FMem bytes held by each workload (LC first, then BEs).
    pub fmem_bytes: Vec<u64>,
    /// Instantaneous throughput of each BE workload (ops/s).
    pub be_throughput: Vec<f64>,
    /// Migration bandwidth consumed this tick (bytes/s).
    pub migration_bw: f64,
    /// Fast-tier bandwidth utilization seen this tick (0..1).
    pub fmem_bw_util: f64,
    /// Slow-tier bandwidth utilization seen this tick (0..1).
    pub smem_bw_util: f64,
    /// Degradation state reported by the policy this tick (`None` for
    /// unsupervised policies).
    pub degradation: Option<DegradationState>,
}

/// One SLO alert state transition, as recorded in the run summary.
///
/// A serializable mirror of [`mtat_obs::alert::AlertTransition`] —
/// states are carried as their lowercase labels so the record survives
/// serde round-trips without coupling the obs crate to serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Rule name (`slo_fast_burn`, ...).
    pub rule: String,
    /// Sim time of the transition (seconds).
    pub at_secs: f64,
    /// State label before (`inactive`/`pending`/`firing`).
    pub from: String,
    /// State label after.
    pub to: String,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

impl From<&mtat_obs::alert::AlertTransition> for AlertRecord {
    fn from(t: &mtat_obs::alert::AlertTransition) -> Self {
        Self {
            rule: t.rule.clone(),
            at_secs: t.at_secs,
            from: t.from.label().to_string(),
            to: t.to.label().to_string(),
            fast_burn: t.fast_burn,
            slow_burn: t.slow_burn,
        }
    }
}

impl AlertRecord {
    /// One-line JSON record (the alert-log JSONL format).
    #[must_use]
    pub fn to_json(&self) -> String {
        use mtat_obs::export::{json_f64, json_string};
        format!(
            "{{\"rule\":{},\"at_secs\":{},\"from\":{},\"to\":{},\
             \"fast_burn\":{},\"slow_burn\":{}}}",
            json_string(&self.rule),
            json_f64(self.at_secs),
            json_string(&self.from),
            json_string(&self.to),
            json_f64(self.fast_burn),
            json_f64(self.slow_burn),
        )
    }
}

/// The result of one co-location run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Policy name.
    pub policy: String,
    /// LC workload name.
    pub lc_name: String,
    /// BE workload names, in registration order.
    pub be_names: Vec<String>,
    /// Per-tick time series.
    pub ticks: Vec<TickRecord>,
    /// Total LC requests offered.
    pub lc_requests: f64,
    /// LC requests offered during SLO-violating ticks.
    pub lc_violated_requests: f64,
    /// Average achieved throughput per BE workload (ops/s).
    pub be_avg_throughput: Vec<f64>,
    /// `Perf_full` per BE workload (Eq. 3 denominator): throughput with
    /// exclusive access to all of FMem.
    pub be_perf_full: Vec<f64>,
    /// Total bytes migrated during the run (§5.5 overhead).
    pub total_migration_bytes: u64,
    /// Page moves that consumed bandwidth but failed under injected
    /// faults (0 in fault-free runs).
    pub failed_moves: u64,
    /// Previously failed page moves that enforcement retried.
    pub retried_moves: u64,
    /// Run length in seconds.
    pub duration_secs: f64,
    /// Tick length in seconds.
    pub tick_secs: f64,
    /// Self-healing accounting (`None` when the health subsystem is
    /// disabled for the run).
    pub health: Option<crate::health::HealthSummary>,
    /// SLO burn-rate alert transitions, in sim-time order (empty when
    /// no alert rules were armed). Deterministic across replays —
    /// timestamps included — because the engine runs on sim time only.
    #[serde(default)]
    pub alerts: Vec<AlertRecord>,
}

impl RunResult {
    /// The last tick of the run, or [`TierMemError::EmptyRun`] when the
    /// run produced no ticks (zero duration, or a tick length longer
    /// than the run). Prefer this over `ticks.last().unwrap()` in
    /// callers that inspect final state.
    ///
    /// # Errors
    ///
    /// Returns [`TierMemError::EmptyRun`] when `ticks` is empty.
    pub fn final_tick(&self) -> Result<&TickRecord, TierMemError> {
        self.ticks.last().ok_or(TierMemError::EmptyRun)
    }

    /// Fraction of LC requests that arrived during SLO-violating ticks
    /// (the Table 4 metric).
    pub fn violation_rate(&self) -> f64 {
        if self.lc_requests <= 0.0 {
            0.0
        } else {
            self.lc_violated_requests / self.lc_requests
        }
    }

    /// Violation rate counting only ticks at or after `grace_secs`
    /// (allows adaptive policies their convergence window).
    pub fn violation_rate_after(&self, grace_secs: f64) -> f64 {
        let mut requests = 0.0;
        let mut violated = 0.0;
        for tick in &self.ticks {
            if tick.t >= grace_secs {
                let reqs = tick.lc_load_rps * self.tick_secs;
                requests += reqs;
                if tick.lc_violated {
                    violated += reqs;
                }
            }
        }
        if requests <= 0.0 {
            0.0
        } else {
            violated / requests
        }
    }

    /// Normalized performance `NP_i` (Eq. 3) per BE workload.
    pub fn np(&self) -> Vec<f64> {
        self.be_avg_throughput
            .iter()
            .zip(&self.be_perf_full)
            .map(|(&t, &f)| if f > 0.0 { t / f } else { 0.0 })
            .collect()
    }

    /// The paper's fairness metric: the smallest `NP_i` (§5.1).
    pub fn fairness(&self) -> f64 {
        self.np().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Sum of average BE throughputs (the Fig. 6b metric).
    pub fn be_total_throughput(&self) -> f64 {
        self.be_avg_throughput.iter().sum()
    }

    /// The worst LC P99 observed at or after `grace_secs`.
    pub fn worst_p99_after(&self, grace_secs: f64) -> f64 {
        self.ticks
            .iter()
            .filter(|t| t.t >= grace_secs)
            .map(|t| t.lc_p99)
            .fold(0.0, f64::max)
    }

    /// Mean LC FMem residency ratio over the run.
    pub fn mean_lc_fmem_ratio(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        self.ticks.iter().map(|t| t.lc_fmem_ratio).sum::<f64>() / self.ticks.len() as f64
    }

    /// Average migration bandwidth over the run (bytes/s) — the §5.5
    /// PP-E overhead number.
    pub fn avg_migration_bw(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            0.0
        } else {
            self.total_migration_bytes as f64 / self.duration_secs
        }
    }

    /// Fraction of ticks at or after `grace_secs` spent in a degraded
    /// (non-RL) state. 0.0 for unsupervised policies, whose ticks carry
    /// no degradation state at all.
    pub fn degraded_tick_fraction(&self, grace_secs: f64) -> f64 {
        let mut total = 0u64;
        let mut degraded = 0u64;
        for tick in &self.ticks {
            if tick.t >= grace_secs {
                total += 1;
                if matches!(
                    tick.degradation,
                    Some(DegradationState::Proportional) | Some(DegradationState::Static)
                ) {
                    degraded += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            degraded as f64 / total as f64
        }
    }

    /// The first time at or after `after_secs` at which the policy
    /// reports the nominal RL state, or `None` if it never recovers (or
    /// never reports a state). Subtracting the fault-clearance time
    /// gives the time-to-recover metric.
    pub fn first_rl_at_or_after(&self, after_secs: f64) -> Option<f64> {
        self.ticks
            .iter()
            .find(|t| t.t >= after_secs && t.degradation == Some(DegradationState::Rl))
            .map(|t| t.t)
    }

    /// Writes the per-tick time series as TSV (header + one row per
    /// tick), the format the plotting scripts and committed `results/`
    /// files use.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_tsv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "t\tlc_load_rps\tlc_p99_ms\tlc_violated\tlc_fmem_ratio")?;
        for name in std::iter::once(&self.lc_name).chain(&self.be_names) {
            write!(w, "\tfmem_{name}_bytes")?;
        }
        for name in &self.be_names {
            write!(w, "\tthr_{name}")?;
        }
        writeln!(w, "\tmigration_bw\tfmem_bw_util\tsmem_bw_util\tdegradation")?;
        for tick in &self.ticks {
            let p99_ms = if tick.lc_p99.is_finite() {
                tick.lc_p99 * 1e3
            } else {
                -1.0
            };
            write!(
                w,
                "{:.3}\t{:.3}\t{:.4}\t{}\t{:.4}",
                tick.t, tick.lc_load_rps, p99_ms, tick.lc_violated as u8, tick.lc_fmem_ratio
            )?;
            for &b in &tick.fmem_bytes {
                write!(w, "\t{b}")?;
            }
            for &thr in &tick.be_throughput {
                write!(w, "\t{thr:.1}")?;
            }
            writeln!(
                w,
                "\t{:.1}\t{:.4}\t{:.4}\t{}",
                tick.migration_bw,
                tick.fmem_bw_util,
                tick.smem_bw_util,
                tick.degradation.map_or("-", |d| d.label())
            )?;
        }
        Ok(())
    }

    /// FNV-1a-64 digest over the bit patterns of every tick record —
    /// any single-ULP divergence anywhere in the run changes the
    /// digest. This is the replay-identity check used by the soak and
    /// fleet harnesses: two runs of the same configuration must produce
    /// equal digests regardless of worker count, shard execution order,
    /// or whether observability was attached (instrumentation never
    /// feeds back into physics).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.ticks.len() * 64);
        for t in &self.ticks {
            bytes.extend_from_slice(&t.t.to_bits().to_le_bytes());
            bytes.extend_from_slice(&t.lc_load_rps.to_bits().to_le_bytes());
            bytes.extend_from_slice(&t.lc_p99.to_bits().to_le_bytes());
            bytes.push(u8::from(t.lc_violated));
            bytes.extend_from_slice(&t.lc_fmem_ratio.to_bits().to_le_bytes());
            for &b in &t.fmem_bytes {
                bytes.extend_from_slice(&b.to_le_bytes());
            }
            for &thr in &t.be_throughput {
                bytes.extend_from_slice(&thr.to_bits().to_le_bytes());
            }
            bytes.extend_from_slice(&t.migration_bw.to_bits().to_le_bytes());
        }
        mtat_snapshot::fnv1a64(&bytes)
    }

    /// The alert transition log as JSONL (one record per line; empty
    /// string when no rules were armed or none transitioned). This is
    /// the artifact format the soak harness dumps and CI uploads.
    #[must_use]
    pub fn alerts_jsonl(&self) -> String {
        let mut out = String::new();
        for a in &self.alerts {
            out.push_str(&a.to_json());
            out.push('\n');
        }
        out
    }

    /// The TSV time series as a `String` (see [`Self::write_tsv`]).
    pub fn to_tsv_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_tsv(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("TSV output is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        let mk = |t: f64, violated: bool, load: f64| TickRecord {
            t,
            lc_load_rps: load,
            lc_p99: if violated { 1.0 } else { 1e-3 },
            lc_violated: violated,
            lc_fmem_ratio: 0.5,
            fmem_bytes: vec![0, 0, 0],
            be_throughput: vec![50.0, 100.0],
            migration_bw: 0.0,
            fmem_bw_util: 0.0,
            smem_bw_util: 0.0,
            degradation: None,
        };
        RunResult {
            policy: "test".into(),
            lc_name: "redis".into(),
            be_names: vec!["a".into(), "b".into()],
            ticks: vec![
                mk(0.0, true, 100.0),
                mk(1.0, false, 100.0),
                mk(2.0, false, 100.0),
                mk(3.0, true, 100.0),
            ],
            lc_requests: 400.0,
            lc_violated_requests: 200.0,
            be_avg_throughput: vec![50.0, 100.0],
            be_perf_full: vec![100.0, 400.0],
            total_migration_bytes: 8_000_000_000,
            failed_moves: 0,
            retried_moves: 0,
            duration_secs: 4.0,
            tick_secs: 1.0,
            health: None,
            alerts: Vec::new(),
        }
    }

    #[test]
    fn violation_rates() {
        let r = result();
        assert!((r.violation_rate() - 0.5).abs() < 1e-12);
        // After t >= 1: one violating tick of three.
        assert!((r.violation_rate_after(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.violation_rate_after(100.0), 0.0);
    }

    #[test]
    fn fairness_is_min_np() {
        let r = result();
        let np = r.np();
        assert!((np[0] - 0.5).abs() < 1e-12);
        assert!((np[1] - 0.25).abs() < 1e-12);
        assert!((r.fairness() - 0.25).abs() < 1e-12);
        assert!((r.be_total_throughput() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates() {
        let r = result();
        assert_eq!(r.worst_p99_after(0.0), 1.0);
        assert_eq!(r.worst_p99_after(1.0), 1.0);
        assert!((r.mean_lc_fmem_ratio() - 0.5).abs() < 1e-12);
        assert!((r.avg_migration_bw() - 2e9).abs() < 1e-3);
    }

    #[test]
    fn tsv_export_shape() {
        let r = result();
        let tsv = r.to_tsv_string();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + r.ticks.len());
        let header_cols = lines[0].split('\t').count();
        for line in &lines[1..] {
            assert_eq!(line.split('\t').count(), header_cols, "{line}");
        }
        assert!(lines[0].contains("fmem_redis_bytes"));
        assert!(lines[0].contains("thr_a"));
        // Violated ticks flagged.
        assert!(lines[1].split('\t').nth(3) == Some("1"));
    }

    #[test]
    fn degradation_helpers() {
        let mut r = result();
        // Unsupervised: no state anywhere.
        assert_eq!(r.degraded_tick_fraction(0.0), 0.0);
        assert_eq!(r.first_rl_at_or_after(0.0), None);
        // Demoted at t=1..2, recovered at t=3.
        r.ticks[0].degradation = Some(DegradationState::Rl);
        r.ticks[1].degradation = Some(DegradationState::Proportional);
        r.ticks[2].degradation = Some(DegradationState::Static);
        r.ticks[3].degradation = Some(DegradationState::Rl);
        assert!((r.degraded_tick_fraction(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.first_rl_at_or_after(1.0), Some(3.0));
        assert_eq!(r.first_rl_at_or_after(4.0), None);
        // The TSV column renders the labels.
        let tsv = r.to_tsv_string();
        let lines: Vec<&str> = tsv.lines().collect();
        assert!(lines[0].ends_with("\tdegradation"));
        assert!(lines[1].ends_with("\trl"));
        assert!(lines[2].ends_with("\tproportional"));
        assert!(lines[3].ends_with("\tstatic"));
    }

    #[test]
    fn digest_is_stable_and_bit_sensitive() {
        let r = result();
        let d = r.digest();
        assert_eq!(d, r.clone().digest(), "digest must be deterministic");
        let mut nudged = r.clone();
        nudged.ticks[2].lc_p99 = f64::from_bits(nudged.ticks[2].lc_p99.to_bits() ^ 1);
        assert_ne!(d, nudged.digest(), "a single-ULP change must be visible");
        let mut flagged = r;
        flagged.ticks[1].lc_violated = true;
        assert_ne!(d, flagged.digest());
    }

    #[test]
    fn empty_run_is_safe() {
        let mut r = result();
        r.ticks.clear();
        r.lc_requests = 0.0;
        r.duration_secs = 0.0;
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.mean_lc_fmem_ratio(), 0.0);
        assert_eq!(r.avg_migration_bw(), 0.0);
        assert!(matches!(r.final_tick(), Err(TierMemError::EmptyRun)));
    }

    #[test]
    fn final_tick_returns_last() {
        let r = result();
        let last = r.final_tick().expect("nonempty run");
        assert_eq!(last.t, 3.0);
    }
}
