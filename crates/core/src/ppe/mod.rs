//! The Partition Policy Enforcer (PP-E, §3.3).
//!
//! PP-E turns PP-M's partitioning plans into page migrations:
//!
//! 1. **LC-first adjustment** (Algorithm 3, [`adjust`]): the gap between
//!    the current and desired allocations is executed in bandwidth-
//!    bounded time slices, LC movement first, overhead spread across BE
//!    workloads proportionally to their demands.
//! 2. **Hotness-aware placement** (Fig. 4, [`placement`]): during and
//!    between adjustments, each workload's FMem partition is kept "hot"
//!    by promoting from the highest histogram bins and demoting from the
//!    lowest, strictly within the partition — preserving isolation.
//!
//! [`PartitionPolicyEnforcer`] is the stateful component combining both
//! with the per-workload access histograms ([`crate::tracker`]).

pub mod adjust;
pub mod placement;

use std::collections::VecDeque;

use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::migration::MigrationEngine;
use mtat_tiermem::page::{Tier, WorkloadId};

use crate::policy::WorkloadObs;
use crate::ppe::adjust::AdjustmentSchedule;
use crate::tracker::HotnessTracker;

/// Per-workload partition directive: an enforced page count, or free
/// competition in the residual pool (MTAT (LC Only)'s BE workloads).
pub type PartitionTarget = Option<u64>;

/// A promotion must beat the page it displaces by this count factor —
/// suppresses migration churn caused by sampling noise between pages of
/// near-equal hotness.
pub const HOTNESS_HYSTERESIS: f64 = 2.0;

/// Upper bound on outstanding deferred moves — keeps the retry queue
/// from growing without bound under a persistent fault.
const MAX_DEFERRED: usize = 64;
/// A deferred move is dropped after this many failed retry attempts;
/// the next partitioning interval recomputes the deficit from actual
/// residency anyway.
const MAX_RETRY_ATTEMPTS: u32 = 5;
/// Exponential backoff cap: retry delays run 1, 2, 4, 8, 8, ... ticks.
const RETRY_BACKOFF_CAP_LOG2: u32 = 3;

/// An adjustment move that failed mid-interval (transient migration
/// fault) and is queued for retry in a later time slice.
#[derive(Debug, Clone, Copy)]
struct DeferredMove {
    /// Workload index whose pages failed to move.
    workload: usize,
    /// How many pages are still owed.
    pages: u64,
    /// Promotion (SMem → FMem) or demotion.
    promote: bool,
    /// Ticks to wait before the next attempt.
    delay_ticks: u32,
    /// Retry attempts made so far (drives the backoff).
    attempt: u32,
}

/// The Partition Policy Enforcer.
#[derive(Debug)]
pub struct PartitionPolicyEnforcer {
    tracker: HotnessTracker,
    schedule: Option<AdjustmentSchedule>,
    targets_pages: Vec<PartitionTarget>,
    lc_index: usize,
    p_max_pairs: u64,
    refine_pairs_per_workload: u64,
    placement_frozen: bool,
    /// Working-set-pressure throttle: both migration budgets above are
    /// right-shifted by this many bits while the hardening guard holds
    /// the throttle (0 = nominal).
    throttle_shift: u32,
    /// Moves that failed under transient migration faults, awaiting
    /// retry with capped exponential backoff. Empty whenever no fault
    /// injection is active (the engine never fails moves then).
    retry_queue: VecDeque<DeferredMove>,
    /// Candidate-list buffers reused across ticks.
    scratch: placement::PlacementScratch,
    /// Slice-execution candidate buffer reused across ticks.
    slice_pages: Vec<mtat_tiermem::page::PageId>,
    /// Ranked eviction-candidate buffer reused across ticks.
    ranked_buf: Vec<(u64, mtat_tiermem::page::PageId)>,
    /// Telemetry handle; phase spans for adjustment vs refinement.
    obs: mtat_obs::Obs,
}

impl PartitionPolicyEnforcer {
    /// Creates an enforcer for the registered workloads. `p_max_pairs`
    /// is Algorithm 3's per-slice cap; `refine_pairs_per_workload`
    /// bounds Fig.-4b refinement churn per tick.
    pub fn new(
        mem: &TieredMemory,
        lc_index: usize,
        p_max_pairs: u64,
        refine_pairs_per_workload: u64,
    ) -> Self {
        let n = mem.workload_count();
        assert!(lc_index < n, "lc_index out of range");
        Self {
            tracker: HotnessTracker::new(mem),
            schedule: None,
            targets_pages: vec![None; n],
            lc_index,
            p_max_pairs: p_max_pairs.max(1),
            refine_pairs_per_workload,
            placement_frozen: false,
            throttle_shift: 0,
            retry_queue: VecDeque::new(),
            scratch: placement::PlacementScratch::default(),
            slice_pages: Vec::new(),
            ranked_buf: Vec::new(),
            obs: mtat_obs::Obs::disabled(),
        }
    }

    /// Attaches a telemetry handle (spans for the adjust / refine
    /// sub-phases of each enforcement tick).
    pub fn set_obs(&mut self, obs: mtat_obs::Obs) {
        self.obs = obs;
    }

    /// Suspends (or resumes) hotness refinement and residual-pool
    /// competition — the §7 bandwidth-aware extension: when the fast
    /// tier's bandwidth is saturated, extra promotions only add traffic,
    /// so placement churn pauses. Partition adjustments (Algorithm 3)
    /// still execute: the LC reservation is never sacrificed.
    pub fn set_placement_frozen(&mut self, frozen: bool) {
        self.placement_frozen = frozen;
    }

    /// Whether placement refinement is currently suspended.
    pub fn placement_frozen(&self) -> bool {
        self.placement_frozen
    }

    /// Sets the working-set-pressure migration throttle: per-slice pair
    /// caps and per-workload refinement appetite are right-shifted by
    /// `shift` bits (0 = nominal). Used by the hardening pressure guard
    /// to stop the enforcer from burning the migration budget chasing a
    /// blown-up working set; the slice cap keeps a floor of one pair so
    /// Algorithm 3 always makes forward progress.
    pub fn set_migration_throttle(&mut self, shift: u32) {
        self.throttle_shift = shift.min(16);
    }

    /// The current migration-throttle shift.
    pub fn migration_throttle(&self) -> u32 {
        self.throttle_shift
    }

    /// The access histograms (shared with diagnostics/tests).
    pub fn tracker(&self) -> &HotnessTracker {
        &self.tracker
    }

    /// Feeds this tick's sampled accesses into the histograms.
    pub fn record_tick(&mut self, workloads: &[WorkloadObs]) {
        self.tracker.record_tick(workloads);
    }

    /// Ages all histograms (called at each partitioning interval).
    pub fn age(&mut self) {
        self.tracker.age_all();
    }

    /// Current partition target of workload `w` in pages.
    pub fn target_pages(&self, w: WorkloadId) -> PartitionTarget {
        self.targets_pages[w.index()]
    }

    /// Whether an adjustment is still being executed.
    pub fn adjusting(&self) -> bool {
        self.schedule.as_ref().is_some_and(|s| !s.is_complete())
    }

    /// Installs a new partitioning plan and builds the Algorithm 3
    /// schedule from the deltas between current residencies and the
    /// enforced targets. Targets are clamped to each workload's resident
    /// set size.
    pub fn set_plan(&mut self, mem: &TieredMemory, plan: Vec<PartitionTarget>) {
        assert_eq!(plan.len(), self.targets_pages.len(), "plan arity mismatch");
        self.targets_pages = plan
            .iter()
            .enumerate()
            .map(|(i, t)| t.map(|pages| pages.min(mem.region(WorkloadId(i as u16)).n_pages as u64)))
            .collect();
        let deltas: Vec<i64> = self
            .targets_pages
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Some(target) => {
                    *target as i64 - mem.residency(WorkloadId(i as u16)).fmem_pages as i64
                }
                None => 0,
            })
            .collect();
        self.schedule = Some(AdjustmentSchedule::new(
            deltas,
            self.lc_index,
            self.p_max_pairs,
        ));
        // The new schedule is computed from *actual* residency, so it
        // already covers any moves still owed: outstanding retries would
        // double-move. Deferred moves only live within an interval.
        self.retry_queue.clear();
    }

    /// Pages currently owed by the deferred-move retry queue.
    pub fn deferred_pages(&self) -> u64 {
        self.retry_queue.iter().map(|d| d.pages).sum()
    }

    /// One PP-E tick: execute the next adjustment slice if one is
    /// pending, then refine placement (within enforced partitions) and
    /// let unenforced workloads compete for the residual pool.
    pub fn tick(&mut self, mem: &mut TieredMemory, engine: &mut MigrationEngine) {
        // --- Algorithm 3 slice execution ---
        // Time slices are finer than simulation ticks: keep draining
        // p_max-bounded slices until the tick's bandwidth budget is
        // spent or the adjustment completes. LC-first ordering holds
        // within every slice.
        let adjust_span = self.obs.span_here("adjust");
        // Pressure throttle: shrink both budgets while the guard holds
        // it, but keep one adjustment pair so Algorithm 3 stays live.
        let p_max = (self.p_max_pairs >> self.throttle_shift).max(1);
        let refine_budget = self.refine_pairs_per_workload >> self.throttle_shift;
        loop {
            let slice = match &mut self.schedule {
                Some(schedule) if !schedule.is_complete() => {
                    let pairs = (engine.remaining_tick_pages() / 2).min(p_max);
                    if pairs == 0 {
                        break;
                    }
                    schedule.next_slice(pairs)
                }
                _ => break,
            };
            if slice.is_empty() {
                break;
            }
            // Demotions first to free frames for promotions.
            for &(i, m) in &slice.moves {
                if m < 0 {
                    let w = WorkloadId(i as u16);
                    let mut pages = std::mem::take(&mut self.slice_pages);
                    self.tracker
                        .coldest_fmem_into(&mut pages, mem, w, (-m) as usize);
                    let granted = engine.try_consume_pages(pages.len() as u64) as usize;
                    self.note_fault_failures(i, false, engine);
                    // Range-batched application of the granted prefix. A
                    // full slow tier makes the tail unsatisfiable right
                    // now; the batch stops there rather than panic — the
                    // next plan recomputes from actual residency.
                    mem.migrate_batch(&pages[..granted], Tier::SMem);
                    self.slice_pages = pages;
                }
            }
            for &(i, m) in &slice.moves {
                if m > 0 {
                    let w = WorkloadId(i as u16);
                    let need = m as u64;
                    // If unenforced workloads hold the frames this
                    // promotion needs (LC Only), evict their coldest.
                    let free = mem.free_pages(Tier::FMem);
                    if free < need {
                        self.make_room(mem, engine, need - free);
                    }
                    let want = need.min(mem.free_pages(Tier::FMem)) as usize;
                    let mut pages = std::mem::take(&mut self.slice_pages);
                    self.tracker.hottest_smem_into(&mut pages, mem, w, want);
                    let granted = engine.try_consume_pages(pages.len() as u64) as usize;
                    self.note_fault_failures(i, true, engine);
                    mem.migrate_batch(&pages[..granted], Tier::FMem);
                    self.slice_pages = pages;
                }
            }
        }
        // Re-drive moves that failed under transient faults in earlier
        // slices, using whatever budget this tick has left.
        self.retry_deferred(mem, engine);
        drop(adjust_span);
        let schedule_done = self.schedule.as_ref().is_none_or(|s| s.is_complete());

        // --- Fig. 4b refinement within enforced partitions ---
        // One span covers refinement plus residual-pool competition
        // (the guard also closes correctly on the frozen early return).
        let _refine_span = self.obs.span_here("refine");
        if schedule_done && !self.placement_frozen {
            for i in 0..self.targets_pages.len() {
                if let Some(target) = self.targets_pages[i] {
                    let w = WorkloadId(i as u16);
                    // Drift correction (e.g. promotions that found no
                    // candidates during adjustment).
                    placement::enforce_target_with(
                        &mut self.scratch,
                        mem,
                        engine,
                        &self.tracker,
                        w,
                        target,
                    );
                    placement::refine_swaps_with(
                        &mut self.scratch,
                        mem,
                        engine,
                        &self.tracker,
                        w,
                        refine_budget,
                        HOTNESS_HYSTERESIS,
                    );
                }
            }
        }

        // --- Residual-pool competition for unenforced workloads ---
        if self.placement_frozen {
            return;
        }
        let unenforced: Vec<WorkloadId> = self
            .targets_pages
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_none())
            .map(|(i, _)| WorkloadId(i as u16))
            .collect();
        if !unenforced.is_empty() {
            let reserved: u64 = self.targets_pages.iter().flatten().sum();
            let pool_cap = mem.spec().fmem_pages().saturating_sub(reserved);
            placement::compete_with(
                &mut self.scratch,
                mem,
                engine,
                &self.tracker,
                &unenforced,
                pool_cap,
                refine_budget * unenforced.len() as u64,
                HOTNESS_HYSTERESIS,
            );
        }
    }

    /// Demotes the coldest pages of unenforced workloads to free `need`
    /// FMem frames for an enforced promotion.
    fn make_room(&mut self, mem: &mut TieredMemory, engine: &mut MigrationEngine, need: u64) {
        let mut candidates = std::mem::take(&mut self.ranked_buf);
        let mut pages = std::mem::take(&mut self.slice_pages);
        candidates.clear();
        for (i, t) in self.targets_pages.iter().enumerate() {
            if t.is_none() {
                let w = WorkloadId(i as u16);
                let hist = self.tracker.histogram(w);
                self.tracker
                    .coldest_fmem_into(&mut pages, mem, w, need as usize);
                for &p in &pages {
                    candidates.push((hist.count(p), p));
                }
            }
        }
        candidates.sort_unstable_by_key(|&(c, _)| c);
        let take = (need as usize).min(candidates.len());
        let granted = engine.try_consume_pages(take as u64) as usize;
        pages.clear();
        pages.extend(candidates.iter().take(granted).map(|&(_, p)| p));
        mem.migrate_batch(&pages, Tier::SMem);
        self.ranked_buf = candidates;
        self.slice_pages = pages;
    }

    /// Queues a deferred move when the engine reports fault-failed pages
    /// from the immediately preceding `try_consume_pages` call. Budget
    /// shortfalls (granted < requested with zero failures) are *not*
    /// deferred — they are ordinary backpressure the schedule already
    /// handles — so with fault injection disabled this never fires and
    /// enforcement behavior is bit-identical.
    fn note_fault_failures(&mut self, workload: usize, promote: bool, engine: &MigrationEngine) {
        let failed = engine.failed_in_last_call();
        if failed > 0 && self.retry_queue.len() < MAX_DEFERRED {
            self.retry_queue.push_back(DeferredMove {
                workload,
                pages: failed,
                promote,
                delay_ticks: 1,
                attempt: 0,
            });
        }
    }

    /// Drains due entries of the deferred-move queue: demotions first
    /// (they free frames), then promotions. Each successful re-driven
    /// page is credited to the engine's `retried_moves` counter; moves
    /// that fail again back off exponentially (capped) and are dropped
    /// after [`MAX_RETRY_ATTEMPTS`].
    fn retry_deferred(&mut self, mem: &mut TieredMemory, engine: &mut MigrationEngine) {
        if self.retry_queue.is_empty() {
            return;
        }
        let mut pending: Vec<DeferredMove> = self.retry_queue.drain(..).collect();
        // Demotions before promotions so freed frames are visible to
        // promotion retries within the same tick.
        pending.sort_by_key(|d| d.promote);
        for mut d in pending {
            if d.delay_ticks > 0 {
                d.delay_ticks -= 1;
                self.retry_queue.push_back(d);
                continue;
            }
            let w = WorkloadId(d.workload as u16);
            let mut candidates = std::mem::take(&mut self.slice_pages);
            if d.promote {
                let want = (d.pages).min(mem.free_pages(Tier::FMem)) as usize;
                self.tracker
                    .hottest_smem_into(&mut candidates, mem, w, want);
            } else {
                self.tracker
                    .coldest_fmem_into(&mut candidates, mem, w, d.pages as usize);
            }
            let blocked = candidates.is_empty();
            let completed = if blocked {
                0
            } else {
                engine.try_consume_pages(candidates.len() as u64) as usize
            };
            let faulted_again = !blocked && engine.failed_in_last_call() > 0;
            if completed > 0 {
                engine.note_retried(completed as u64);
                let tier = if d.promote { Tier::FMem } else { Tier::SMem };
                mem.migrate_batch(&candidates[..completed], tier);
            }
            let reachable = if blocked {
                d.pages
            } else {
                candidates.len() as u64
            };
            let owed = reachable.saturating_sub(completed as u64);
            if owed > 0 && d.attempt < MAX_RETRY_ATTEMPTS {
                // Escalate the backoff only when the move actually
                // failed or was blocked — a pure budget shortfall just
                // waits for the next tick.
                let attempt = d.attempt + u32::from(faulted_again || blocked);
                self.retry_queue.push_back(DeferredMove {
                    workload: d.workload,
                    pages: owed,
                    promote: d.promote,
                    delay_ticks: 1 << attempt.min(RETRY_BACKOFF_CAP_LOG2),
                    attempt,
                });
            }
            self.slice_pages = candidates;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{WorkloadClass, WorkloadObs};
    use mtat_tiermem::memory::{InitialPlacement, MemorySpec};
    use mtat_tiermem::MIB;

    fn obs(mem: &TieredMemory, w: WorkloadId, sampled: Vec<u64>) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class: WorkloadClass::Be,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    /// 8-page FMem; LC (6 pages) + two BE workloads (8 pages each).
    fn setup() -> (TieredMemory, MigrationEngine) {
        let spec = MemorySpec::new(8 * MIB, 64 * MIB, MIB).unwrap();
        let mut mem = TieredMemory::new(spec);
        mem.register_workload(6 * MIB, InitialPlacement::AllSmem)
            .unwrap(); // LC
        mem.register_workload(8 * MIB, InitialPlacement::FmemFirst)
            .unwrap(); // BE0: 8 in FMem
        mem.register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap(); // BE1
        let engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        (mem, engine)
    }

    #[test]
    fn full_plan_reaches_targets() {
        let (mut mem, mut engine) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 4, 8);
        let all = [
            obs(&mem, WorkloadId(0), vec![2; 6]),
            obs(&mem, WorkloadId(1), vec![3; 8]),
            obs(&mem, WorkloadId(2), vec![4; 8]),
        ];
        ppe.record_tick(&all);
        // LC gets 4 pages, BE0 gets 2, BE1 gets 2.
        ppe.set_plan(&mem, vec![Some(4), Some(2), Some(2)]);
        assert!(ppe.adjusting());
        for _ in 0..10 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        assert!(!ppe.adjusting());
        assert_eq!(mem.residency(WorkloadId(0)).fmem_pages, 4);
        assert_eq!(mem.residency(WorkloadId(1)).fmem_pages, 2);
        assert_eq!(mem.residency(WorkloadId(2)).fmem_pages, 2);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn adjustment_is_bandwidth_bounded_per_tick() {
        let (mut mem, _) = setup();
        // An engine that can move only 4 pages per 1 s tick.
        let mut engine = MigrationEngine::new(4.0 * MIB as f64, MIB, 10.0).unwrap();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 2, 0);
        let all = [
            obs(&mem, WorkloadId(0), vec![2; 6]),
            obs(&mem, WorkloadId(1), vec![3; 8]),
            obs(&mem, WorkloadId(2), vec![0; 8]),
        ];
        ppe.record_tick(&all);
        ppe.set_plan(&mem, vec![Some(6), Some(2), Some(0)]);
        engine.begin_tick(1.0);
        ppe.tick(&mut mem, &mut engine);
        // The tick budget (4 page moves) is a hard cap even though the
        // adjustment drains multiple p_max slices per tick.
        assert!(engine.bytes_moved_this_tick() <= 4 * MIB);
        assert!(
            ppe.adjusting(),
            "a 12-page adjustment outlives one 4-page tick"
        );
        // With ample budget the same adjustment completes in one tick.
        let (mut mem2, mut engine2) = setup();
        let mut ppe2 = PartitionPolicyEnforcer::new(&mem2, 0, 2, 0);
        ppe2.record_tick(&all);
        ppe2.set_plan(&mem2, vec![Some(6), Some(2), Some(0)]);
        engine2.begin_tick(1.0);
        ppe2.tick(&mut mem2, &mut engine2);
        assert!(!ppe2.adjusting());
    }

    #[test]
    fn lc_only_plan_competes_for_residual_pool() {
        let (mut mem, mut engine) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 16);
        // BE1's pages are much hotter than BE0's.
        let all = [
            obs(&mem, WorkloadId(0), vec![1; 6]),
            obs(&mem, WorkloadId(1), vec![2; 8]),
            obs(&mem, WorkloadId(2), vec![50; 8]),
        ];
        ppe.record_tick(&all);
        // Only the LC partition is enforced (4 pages); BE compete for 4.
        ppe.set_plan(&mem, vec![Some(4), None, None]);
        for _ in 0..12 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        assert_eq!(mem.residency(WorkloadId(0)).fmem_pages, 4);
        let be0 = mem.residency(WorkloadId(1)).fmem_pages;
        let be1 = mem.residency(WorkloadId(2)).fmem_pages;
        assert_eq!(be0 + be1, 4, "pool is exactly the residual");
        assert!(be1 > be0, "hotter BE wins the pool: {be0} vs {be1}");
        mem.check_invariants().unwrap();
    }

    #[test]
    fn make_room_evicts_unenforced_donors() {
        let (mut mem, mut engine) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 0);
        let all = [
            obs(&mem, WorkloadId(0), vec![5; 6]),
            obs(&mem, WorkloadId(1), vec![1; 8]),
            obs(&mem, WorkloadId(2), vec![0; 8]),
        ];
        ppe.record_tick(&all);
        // FMem is full (BE0 holds all 8). LC wants 6; BE are unenforced.
        ppe.set_plan(&mem, vec![Some(6), None, None]);
        for _ in 0..6 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        assert_eq!(mem.residency(WorkloadId(0)).fmem_pages, 6);
        mem.check_invariants().unwrap();
    }

    #[test]
    fn refinement_keeps_partition_hot() {
        let (mut mem, mut engine) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 8);
        ppe.set_plan(&mem, vec![Some(0), Some(4), Some(0)]);
        // Converge the plan with initial (uninformative) counts.
        for _ in 0..6 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        // Now BE0's *SMem* ranks 4..8 become the hot set.
        let mut sampled = vec![0u64; 8];
        sampled[4..8].fill(100);
        let all = [
            obs(&mem, WorkloadId(0), vec![0; 6]),
            obs(&mem, WorkloadId(1), sampled),
            obs(&mem, WorkloadId(2), vec![0; 8]),
        ];
        ppe.record_tick(&all);
        engine.begin_tick(1.0);
        ppe.tick(&mut mem, &mut engine);
        // The hot ranks should now be resident, partition size unchanged.
        let region = mem.region(WorkloadId(1));
        assert_eq!(mem.residency(WorkloadId(1)).fmem_pages, 4);
        for r in 4..8 {
            assert_eq!(mem.tier_of(region.page(r)).unwrap(), Tier::FMem, "rank {r}");
        }
    }

    #[test]
    fn aging_runs_through_enforcer() {
        let (mem, _) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 8);
        let all = [
            obs(&mem, WorkloadId(0), vec![8; 6]),
            obs(&mem, WorkloadId(1), vec![0; 8]),
            obs(&mem, WorkloadId(2), vec![0; 8]),
        ];
        ppe.record_tick(&all);
        assert_eq!(ppe.tracker().histogram(WorkloadId(0)).total(), 48);
        ppe.age();
        assert_eq!(ppe.tracker().histogram(WorkloadId(0)).total(), 24);
    }

    /// Transient migration faults defer the failed moves; once the fault
    /// clears, the queue re-drives them and credits `retried_moves`.
    #[test]
    fn fault_failed_moves_are_deferred_and_retried() {
        let (mut mem, mut engine) = setup();
        engine.set_fault_seed(9);
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 0);
        // Freeze placement so drift correction cannot mask the retry
        // path — only slice execution and the queue act.
        ppe.set_placement_frozen(true);
        let all = [
            obs(&mem, WorkloadId(0), vec![2; 6]),
            obs(&mem, WorkloadId(1), vec![3; 8]),
            obs(&mem, WorkloadId(2), vec![4; 8]),
        ];
        ppe.record_tick(&all);
        ppe.set_plan(&mem, vec![Some(4), Some(2), Some(2)]);

        // Every granted move fails this tick.
        engine.set_tick_faults(1.0, 1.0);
        engine.begin_tick(1.0);
        ppe.tick(&mut mem, &mut engine);
        assert_eq!(
            mem.residency(WorkloadId(1)).fmem_pages,
            8,
            "all demotions failed under the fault"
        );
        assert!(engine.failed_moves() > 0);
        assert!(ppe.deferred_pages() > 0, "failed moves must be deferred");

        // Fault clears: deferred demotions are re-driven.
        engine.set_tick_faults(1.0, 0.0);
        for _ in 0..4 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        assert!(
            engine.retried_moves() >= 6,
            "retried {}",
            engine.retried_moves()
        );
        assert_eq!(
            mem.residency(WorkloadId(1)).fmem_pages,
            2,
            "deferred demotions eventually land"
        );
        mem.check_invariants().unwrap();
    }

    /// Under a persistent fault the retry queue backs off and drops
    /// entries after the attempt cap — it stays bounded and drains.
    #[test]
    fn retry_queue_is_bounded_under_persistent_fault() {
        let (mut mem, mut engine) = setup();
        engine.set_fault_seed(11);
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 0);
        ppe.set_placement_frozen(true);
        let all = [
            obs(&mem, WorkloadId(0), vec![2; 6]),
            obs(&mem, WorkloadId(1), vec![3; 8]),
            obs(&mem, WorkloadId(2), vec![4; 8]),
        ];
        ppe.record_tick(&all);
        ppe.set_plan(&mem, vec![Some(4), Some(2), Some(2)]);
        engine.set_tick_faults(1.0, 1.0);
        for _ in 0..64 {
            engine.begin_tick(1.0);
            ppe.tick(&mut mem, &mut engine);
        }
        assert_eq!(
            ppe.deferred_pages(),
            0,
            "attempt cap must drain the queue under a persistent fault"
        );
    }

    /// Installing a new plan clears outstanding deferred moves — the new
    /// schedule is computed from actual residency and subsumes them.
    #[test]
    fn new_plan_clears_deferred_moves() {
        let (mut mem, mut engine) = setup();
        engine.set_fault_seed(5);
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 0);
        ppe.set_placement_frozen(true);
        let all = [
            obs(&mem, WorkloadId(0), vec![2; 6]),
            obs(&mem, WorkloadId(1), vec![3; 8]),
            obs(&mem, WorkloadId(2), vec![4; 8]),
        ];
        ppe.record_tick(&all);
        ppe.set_plan(&mem, vec![Some(4), Some(2), Some(2)]);
        engine.set_tick_faults(1.0, 1.0);
        engine.begin_tick(1.0);
        ppe.tick(&mut mem, &mut engine);
        assert!(ppe.deferred_pages() > 0);
        ppe.set_plan(&mem, vec![Some(4), Some(2), Some(2)]);
        assert_eq!(ppe.deferred_pages(), 0);
    }

    #[test]
    fn targets_clamp_to_rss() {
        let (mem, _) = setup();
        let mut ppe = PartitionPolicyEnforcer::new(&mem, 0, 8, 8);
        ppe.set_plan(&mem, vec![Some(100), None, None]); // LC has only 6 pages
        assert_eq!(ppe.target_pages(WorkloadId(0)), Some(6));
    }
}
