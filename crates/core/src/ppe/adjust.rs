//! LC-first, time-sliced partition adjustment (§3.3.1, Algorithm 3).
//!
//! When PP-M issues a new partitioning plan, PP-E must migrate data
//! between tiers to realize it. Because every page move competes with
//! the workloads for memory bandwidth, the adjustment is divided into
//! time slices of at most `p_max` page-pairs each, and within every
//! slice the LC workload's movement takes precedence: its promotions
//! (demotions) are matched by demotions (promotions) distributed across
//! the BE workloads *proportionally to their respective demands*, so the
//! migration overhead is fairly shared. Only when the LC workload needs
//! nothing does a slice exchange pages among the BE sets.
//!
//! [`AdjustmentSchedule`] is the stateful scheduler: construct it from
//! the per-workload page deltas, then call
//! [`AdjustmentSchedule::next_slice`] once per tick until
//! [`AdjustmentSchedule::is_complete`].

/// Page movements for one time slice: `(workload index, pages)` with
/// positive = promote (SMem→FMem), negative = demote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceMoves {
    /// Per-workload movements, only nonzero entries.
    pub moves: Vec<(usize, i64)>,
}

impl SliceMoves {
    /// Total pages that will physically move (promotions + demotions).
    pub fn total_pages(&self) -> u64 {
        self.moves.iter().map(|&(_, m)| m.unsigned_abs()).sum()
    }

    /// Returns `true` if the slice moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// The Algorithm 3 scheduler.
#[derive(Debug, Clone)]
pub struct AdjustmentSchedule {
    /// Remaining page delta per workload (+ promote / − demote).
    deltas: Vec<i64>,
    /// Index of the LC workload within `deltas`.
    lc_index: usize,
    /// `p_max`: page-pair cap per slice.
    p_max: u64,
}

impl AdjustmentSchedule {
    /// Creates a schedule from per-workload page deltas
    /// (`target − current`, in pages) and the LC workload's index.
    ///
    /// # Panics
    ///
    /// Panics if `lc_index` is out of range or `p_max == 0`.
    pub fn new(deltas: Vec<i64>, lc_index: usize, p_max: u64) -> Self {
        assert!(lc_index < deltas.len(), "lc_index out of range");
        assert!(p_max > 0, "p_max must be nonzero");
        Self {
            deltas,
            lc_index,
            p_max,
        }
    }

    /// Remaining pages to schedule: `max(P_promote, P_demote)`.
    pub fn remaining_pages(&self) -> u64 {
        let promote: u64 = self
            .deltas
            .iter()
            .filter(|&&d| d > 0)
            .map(|&d| d as u64)
            .sum();
        let demote: u64 = self
            .deltas
            .iter()
            .filter(|&&d| d < 0)
            .map(|&d| (-d) as u64)
            .sum();
        promote.max(demote)
    }

    /// Returns `true` once every delta has been scheduled.
    pub fn is_complete(&self) -> bool {
        self.deltas.iter().all(|&d| d == 0)
    }

    /// Remaining delta of workload `i` (diagnostics).
    pub fn delta(&self, i: usize) -> i64 {
        self.deltas[i]
    }

    /// Produces the next slice's movements, bounded by
    /// `min(p_max, budget_pairs)` page-pairs, and advances the schedule.
    ///
    /// The LC workload's movement is satisfied first; matching BE
    /// movement (and, if slice capacity remains after the LC demand is
    /// fully scheduled, BE↔BE exchange) is distributed proportionally to
    /// each BE workload's outstanding demand.
    pub fn next_slice(&mut self, budget_pairs: u64) -> SliceMoves {
        let p = self.p_max.min(budget_pairs);
        let mut moves: Vec<i64> = vec![0; self.deltas.len()];
        if p == 0 || self.is_complete() {
            return SliceMoves { moves: Vec::new() };
        }

        // --- LC-first movement ---
        let lc_delta = self.deltas[self.lc_index];
        let m_lc = if lc_delta > 0 {
            (lc_delta as u64).min(p) as i64
        } else if lc_delta < 0 {
            -(((-lc_delta) as u64).min(p) as i64)
        } else {
            0
        };
        if m_lc != 0 {
            moves[self.lc_index] += m_lc;
            self.deltas[self.lc_index] -= m_lc;
            if m_lc > 0 {
                // LC promotions are paired with BE demotions,
                // distributed proportionally to |Δ_i| over the DemoteSet.
                let shares = self.proportional_be(m_lc as u64, false);
                for (i, s) in shares {
                    moves[i] -= s as i64;
                    self.deltas[i] += s as i64;
                }
            } else {
                // LC demotions free FMem for BE promotions.
                let shares = self.proportional_be((-m_lc) as u64, true);
                for (i, s) in shares {
                    moves[i] += s as i64;
                    self.deltas[i] -= s as i64;
                }
            }
        }

        // --- BE↔BE exchange with any slice capacity left ---
        let used = m_lc.unsigned_abs();
        let p_left = p - used.min(p);
        if p_left > 0 && self.deltas[self.lc_index] == 0 {
            let promote_shares = self.proportional_be(p_left, true);
            for (i, s) in promote_shares {
                moves[i] += s as i64;
                self.deltas[i] -= s as i64;
            }
            let demote_shares = self.proportional_be(p_left, false);
            for (i, s) in demote_shares {
                moves[i] -= s as i64;
                self.deltas[i] += s as i64;
            }
        }

        SliceMoves {
            moves: moves
                .into_iter()
                .enumerate()
                .filter(|&(_, m)| m != 0)
                .collect(),
        }
    }

    /// Distributes up to `amount` pages across the BE workloads in the
    /// PromoteSet (`promote = true`, `Δ_i > 0`) or DemoteSet
    /// (`promote = false`, `Δ_i < 0`), proportionally to their remaining
    /// demands, using largest-remainder rounding. Shares are capped by
    /// each workload's remaining demand, so the returned total may be
    /// less than `amount` when demand is scarce.
    fn proportional_be(&self, amount: u64, promote: bool) -> Vec<(usize, u64)> {
        let demands: Vec<(usize, u64)> = self
            .deltas
            .iter()
            .enumerate()
            .filter(|&(i, &d)| i != self.lc_index && if promote { d > 0 } else { d < 0 })
            .map(|(i, &d)| (i, d.unsigned_abs()))
            .collect();
        let total_demand: u64 = demands.iter().map(|&(_, d)| d).sum();
        if total_demand == 0 || amount == 0 {
            return Vec::new();
        }
        let grant = amount.min(total_demand);

        // Largest-remainder apportionment of `grant` over `demands`.
        let mut shares: Vec<(usize, u64, f64)> = demands
            .iter()
            .map(|&(i, d)| {
                let exact = grant as f64 * d as f64 / total_demand as f64;
                (i, exact.floor() as u64, exact - exact.floor())
            })
            .collect();
        let mut assigned: u64 = shares.iter().map(|&(_, s, _)| s).sum();
        // Hand out the remainder to the largest fractional parts, never
        // exceeding a workload's demand.
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            shares[b]
                .2
                .partial_cmp(&shares[a].2)
                .expect("finite fractions")
        });
        let mut k = 0;
        while assigned < grant && k < order.len() * 2 {
            let idx = order[k % order.len()];
            let demand = demands[idx].1;
            if shares[idx].1 < demand {
                shares[idx].1 += 1;
                assigned += 1;
            }
            k += 1;
        }
        shares
            .into_iter()
            .filter(|&(_, s, _)| s > 0)
            .map(|(i, s, _)| (i, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains a schedule, returning every slice and checking conservation.
    fn drain(mut s: AdjustmentSchedule, budget: u64) -> Vec<SliceMoves> {
        let mut out = Vec::new();
        let mut guard = 0;
        while !s.is_complete() {
            let slice = s.next_slice(budget);
            assert!(!slice.is_empty(), "no progress: {:?}", s);
            out.push(slice);
            guard += 1;
            assert!(guard < 10_000, "schedule did not terminate");
        }
        out
    }

    #[test]
    fn lc_promotion_paired_with_be_demotions() {
        // LC needs +100; BE0 must release 60, BE1 release 40.
        let mut s = AdjustmentSchedule::new(vec![100, -60, -40], 0, 30);
        let slice = s.next_slice(u64::MAX);
        // LC gets the full slice (30), BE demotions proportional 60:40.
        let map: std::collections::HashMap<usize, i64> = slice.moves.iter().copied().collect();
        assert_eq!(map[&0], 30);
        assert_eq!(map[&1], -18);
        assert_eq!(map[&2], -12);
        assert_eq!(slice.total_pages(), 60);
    }

    #[test]
    fn lc_demotion_paired_with_be_promotions() {
        let mut s = AdjustmentSchedule::new(vec![-50, 30, 20], 0, 25);
        let slice = s.next_slice(u64::MAX);
        let map: std::collections::HashMap<usize, i64> = slice.moves.iter().copied().collect();
        assert_eq!(map[&0], -25);
        assert_eq!(map[&1], 15);
        assert_eq!(map[&2], 10);
    }

    #[test]
    fn full_drain_conserves_deltas() {
        let deltas = vec![100i64, -60, -40];
        let s = AdjustmentSchedule::new(deltas.clone(), 0, 7);
        let slices = drain(s, u64::MAX);
        let mut applied = vec![0i64; 3];
        for slice in &slices {
            for &(i, m) in &slice.moves {
                applied[i] += m;
            }
        }
        assert_eq!(applied, deltas);
        // Every slice respects p_max pairs (7 promote + 7 demote = 14).
        for slice in &slices {
            assert!(slice.total_pages() <= 14, "{slice:?}");
        }
    }

    #[test]
    fn be_only_exchange_when_lc_idle() {
        let s = AdjustmentSchedule::new(vec![0, 40, -40], 0, 10);
        let slices = drain(s, u64::MAX);
        // Every slice promotes BE1 and demotes BE2 in equal measure.
        for slice in &slices {
            let map: std::collections::HashMap<usize, i64> = slice.moves.iter().copied().collect();
            assert!(!map.contains_key(&0));
            assert_eq!(map[&1], -map[&2]);
        }
        let total: i64 = slices
            .iter()
            .flat_map(|s| s.moves.iter())
            .filter(|&&(i, _)| i == 1)
            .map(|&(_, m)| m)
            .sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn lc_finishes_before_be_exchange_in_same_run() {
        // LC +10 with p_max 25: first slice covers LC fully (10) and
        // uses remaining capacity (15) for BE exchange.
        let mut s = AdjustmentSchedule::new(vec![10, 20, -30], 0, 25);
        let slice = s.next_slice(u64::MAX);
        let map: std::collections::HashMap<usize, i64> = slice.moves.iter().copied().collect();
        assert_eq!(map[&0], 10);
        // BE demotions pair LC promotions (10) plus exchange (15): -25.
        assert_eq!(map[&2], -25);
        // BE promotions come only from the exchange capacity: +15.
        assert_eq!(map[&1], 15);
        assert_eq!(s.delta(0), 0);
    }

    #[test]
    fn unmatched_lc_promotion_uses_free_fmem() {
        // LC +20 but no BE demand at all (free FMem absorbs it).
        let s = AdjustmentSchedule::new(vec![20, 0, 0], 0, 8);
        let slices = drain(s, u64::MAX);
        let total: i64 = slices
            .iter()
            .flat_map(|s| s.moves.iter())
            .map(|&(_, m)| m)
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn budget_limits_slice() {
        let mut s = AdjustmentSchedule::new(vec![100, -100], 0, 50);
        let slice = s.next_slice(5); // engine only granted 5 pairs
        let map: std::collections::HashMap<usize, i64> = slice.moves.iter().copied().collect();
        assert_eq!(map[&0], 5);
        assert_eq!(map[&1], -5);
        // Zero budget produces an empty slice without consuming demand.
        let empty = s.next_slice(0);
        assert!(empty.is_empty());
        assert_eq!(s.delta(0), 95);
    }

    #[test]
    fn remaining_pages_is_max_of_directions() {
        let s = AdjustmentSchedule::new(vec![100, -60, -40], 0, 10);
        assert_eq!(s.remaining_pages(), 100);
        let s2 = AdjustmentSchedule::new(vec![10, -60, -40], 0, 10);
        assert_eq!(s2.remaining_pages(), 100);
        let s3 = AdjustmentSchedule::new(vec![0, 0, 0], 0, 10);
        assert_eq!(s3.remaining_pages(), 0);
        assert!(s3.is_complete());
    }

    #[test]
    fn largest_remainder_is_exact() {
        // 10 pages over demands 1:1:1 → 4,3,3 in some order.
        let mut s = AdjustmentSchedule::new(vec![10, -5, -5, -5], 0, 10);
        let slice = s.next_slice(u64::MAX);
        let demoted: u64 = slice
            .moves
            .iter()
            .filter(|&&(i, _)| i != 0)
            .map(|&(_, m)| m.unsigned_abs())
            .sum();
        assert_eq!(demoted, 10);
    }

    #[test]
    #[should_panic(expected = "p_max must be nonzero")]
    fn zero_p_max_panics() {
        let _ = AdjustmentSchedule::new(vec![0], 0, 0);
    }
}
