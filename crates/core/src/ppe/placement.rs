//! Hotness-aware page placement primitives (§3.3.2, Fig. 4).
//!
//! Three building blocks shared by PP-E and the baseline policies:
//!
//! * [`enforce_target`] — move a workload toward its partition size by
//!   promoting its hottest SMem pages or demoting its coldest FMem pages
//!   (Fig. 4a).
//! * [`refine_swaps`] — with the partition size fixed, swap a workload's
//!   hottest SMem pages against its own coldest FMem pages whenever the
//!   former are strictly hotter (Fig. 4b); isolation is preserved because
//!   replacement happens strictly within the workload's partition.
//! * [`compete`] — global hotness competition over a *set* of workloads
//!   sharing an FMem pool (what MEMTIS does across all tenants, what
//!   MTAT (LC Only) lets the BE workloads do in the residual pool).

use mtat_tiermem::memory::TieredMemory;
use mtat_tiermem::migration::MigrationEngine;
use mtat_tiermem::page::{PageId, Tier, WorkloadId};

use crate::tracker::HotnessTracker;

/// Reusable candidate buffers for the placement primitives. Policies
/// hold one instance across ticks so the per-tick candidate queries
/// reuse their allocations instead of building fresh vectors.
#[derive(Debug, Clone, Default)]
pub struct PlacementScratch {
    hot_pages: Vec<PageId>,
    cold_pages: Vec<PageId>,
    hot_ranked: Vec<(u64, PageId)>,
    cold_ranked: Vec<(u64, PageId)>,
    promote_buf: Vec<PageId>,
    pair_buf: Vec<(PageId, PageId)>,
}

/// Moves workload `w` toward `target_pages` of FMem residency, spending
/// at most the engine's remaining tick budget. Promotions require free
/// FMem frames (the caller demotes first to make room). Returns
/// `(promoted, demoted)` page counts.
pub fn enforce_target(
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    w: WorkloadId,
    target_pages: u64,
) -> (u64, u64) {
    enforce_target_with(
        &mut PlacementScratch::default(),
        mem,
        engine,
        tracker,
        w,
        target_pages,
    )
}

/// [`enforce_target`] with caller-owned scratch buffers.
pub fn enforce_target_with(
    scratch: &mut PlacementScratch,
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    w: WorkloadId,
    target_pages: u64,
) -> (u64, u64) {
    let current = mem.residency(w).fmem_pages;
    if current < target_pages {
        let want = (target_pages - current)
            .min(engine.remaining_tick_pages())
            .min(mem.free_pages(Tier::FMem));
        if want == 0 {
            return (0, 0);
        }
        let pages = &mut scratch.hot_pages;
        tracker.hottest_smem_into(pages, mem, w, want as usize);
        let granted = engine.try_consume_pages(pages.len() as u64);
        // One range-batched application of the granted prefix; a lost
        // race for the last free frame stops the batch, exactly where
        // the per-page loop would have kept failing.
        let promoted = mem.migrate_batch(&pages[..granted as usize], Tier::FMem);
        (promoted, 0)
    } else if current > target_pages {
        let want = (current - target_pages).min(engine.remaining_tick_pages());
        if want == 0 {
            return (0, 0);
        }
        let pages = &mut scratch.cold_pages;
        tracker.coldest_fmem_into(pages, mem, w, want as usize);
        let granted = engine.try_consume_pages(pages.len() as u64);
        let demoted = mem.migrate_batch(&pages[..granted as usize], Tier::SMem);
        (0, demoted)
    } else {
        (0, 0)
    }
}

/// Within-partition refinement (Fig. 4b): swaps workload `w`'s hottest
/// SMem pages against its coldest FMem pages while the former are
/// hotter by more than the `hysteresis` factor, up to `max_pairs` swaps
/// and the engine budget. The hysteresis suppresses churn from sampling
/// noise between near-equal pages. The workload's FMem partition size
/// is unchanged. Returns swaps performed.
pub fn refine_swaps(
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    w: WorkloadId,
    max_pairs: u64,
    hysteresis: f64,
) -> u64 {
    refine_swaps_with(
        &mut PlacementScratch::default(),
        mem,
        engine,
        tracker,
        w,
        max_pairs,
        hysteresis,
    )
}

/// [`refine_swaps`] with caller-owned scratch buffers.
pub fn refine_swaps_with(
    scratch: &mut PlacementScratch,
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    w: WorkloadId,
    max_pairs: u64,
    hysteresis: f64,
) -> u64 {
    let budget_pairs = max_pairs.min(engine.remaining_tick_pages() / 2);
    if budget_pairs == 0 {
        return 0;
    }
    let (hot, cold) = (&mut scratch.hot_pages, &mut scratch.cold_pages);
    tracker.hottest_smem_into(hot, mem, w, budget_pairs as usize);
    tracker.coldest_fmem_into(cold, mem, w, budget_pairs as usize);
    let hist = tracker.histogram(w);
    if engine.may_fail() {
        // Fault-injection path: per-pair budget calls, so each pair's
        // per-page failure draws land exactly as they always have.
        let mut swaps = 0;
        for (&h, &c) in hot.iter().zip(cold.iter()) {
            if (hist.count(h) as f64) <= hist.count(c) as f64 * hysteresis {
                break; // candidates are sorted; no further pair can win
            }
            if engine.try_consume_pages(2) < 2 {
                break;
            }
            if mem.exchange(&[h], &[c]).is_ok() {
                swaps += 1;
            }
        }
        return swaps;
    }
    // Fault-free: the winning pairs are a prefix (candidates are sorted
    // and the histogram is immutable here), and `budget_pairs` was
    // pre-clamped to the engine's remaining budget, so the per-pair
    // `try_consume_pages(2)` can never come up short. Count the prefix,
    // pay for it with one budget call, then apply each exchange in the
    // legacy order.
    let winners = hot
        .iter()
        .zip(cold.iter())
        .take_while(|&(&h, &c)| (hist.count(h) as f64) > hist.count(c) as f64 * hysteresis)
        .count();
    if winners == 0 {
        return 0;
    }
    let granted = engine.try_consume_pages(2 * winners as u64);
    debug_assert_eq!(granted, 2 * winners as u64);
    let mut swaps = 0;
    for (&h, &c) in hot.iter().zip(cold.iter()).take(winners) {
        if mem.exchange(&[h], &[c]).is_ok() {
            swaps += 1;
        }
    }
    swaps
}

/// Global hotness competition across the workload set `ws` sharing an
/// FMem pool capped at `pool_cap_pages`: promote the globally hottest
/// SMem pages, demote the globally coldest FMem pages, as long as the
/// promotion candidate is hotter than the page it displaces by more
/// than the `hysteresis` factor (or free pool capacity remains).
/// Returns pages moved.
///
/// With `ws` = every workload and the pool = all of FMem this *is* the
/// frequency-based placement the paper critiques: LC pages, uniformly
/// cold, lose to hot BE pages.
pub fn compete(
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    ws: &[WorkloadId],
    pool_cap_pages: u64,
    max_pairs: u64,
    hysteresis: f64,
) -> u64 {
    compete_with(
        &mut PlacementScratch::default(),
        mem,
        engine,
        tracker,
        ws,
        pool_cap_pages,
        max_pairs,
        hysteresis,
    )
}

/// [`compete`] with caller-owned scratch buffers.
#[allow(clippy::too_many_arguments)]
pub fn compete_with(
    scratch: &mut PlacementScratch,
    mem: &mut TieredMemory,
    engine: &mut MigrationEngine,
    tracker: &HotnessTracker,
    ws: &[WorkloadId],
    pool_cap_pages: u64,
    max_pairs: u64,
    hysteresis: f64,
) -> u64 {
    let k = max_pairs.min(engine.remaining_tick_pages()) as usize;
    if k == 0 {
        return 0;
    }
    // Gather candidates: (count, page) sorted hottest-first / coldest-first.
    let hot = &mut scratch.hot_ranked;
    let cold = &mut scratch.cold_ranked;
    hot.clear();
    cold.clear();
    for &w in ws {
        let hist = tracker.histogram(w);
        tracker.hottest_smem_into(&mut scratch.hot_pages, mem, w, k);
        for &p in &scratch.hot_pages {
            hot.push((hist.count(p), p));
        }
        tracker.coldest_fmem_into(&mut scratch.cold_pages, mem, w, k);
        for &p in &scratch.cold_pages {
            cold.push((hist.count(p), p));
        }
    }
    hot.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));
    cold.sort_unstable_by_key(|&(count, _)| count);

    let mut pool_used: u64 = ws.iter().map(|&w| mem.residency(w).fmem_pages).sum();
    if engine.may_fail() {
        // Fault-injection path: per-move budget calls, preserving the
        // exact per-granted-page failure draws.
        let mut moved = 0;
        let mut ci = 0;
        for &(hcount, hpage) in hot.iter() {
            if hcount == 0 {
                break; // nothing hot left to justify a move
            }
            if pool_used < pool_cap_pages && mem.free_pages(Tier::FMem) > 0 {
                // Free capacity: promote unconditionally.
                if engine.try_consume_pages(1) < 1 {
                    break;
                }
                if mem.migrate(hpage, Tier::FMem).is_ok() {
                    pool_used += 1;
                    moved += 1;
                }
            } else if ci < cold.len() {
                let (ccount, cpage) = cold[ci];
                if (hcount as f64) <= ccount as f64 * hysteresis {
                    break; // the hottest leftover cannot displace anything
                }
                if engine.try_consume_pages(2) < 2 {
                    break;
                }
                if mem.exchange(&[hpage], &[cpage]).is_ok() {
                    moved += 2;
                }
                ci += 1;
            } else {
                break;
            }
        }
        return moved;
    }
    // Fault-free batched selection. The loop below replays the legacy
    // control flow against *virtual* budget/occupancy state instead of
    // paying the migration engine per move:
    //
    // * `pool_used` only ever grows and `free` only ever shrinks
    //   (exchanges are FMem-neutral; a failed exchange touches nothing),
    //   so promotions form a strict prefix of the hot list and the
    //   promote-vs-exchange branch never flips back.
    // * A fault-free promote with `free > 0` cannot fail, so virtual
    //   `free`/`pool_used` track the real values exactly.
    // * The legacy `try_consume_pages(2)` on a 1-page remainder still
    //   consumed that page (granted = 1 < 2, then break) — the virtual
    //   loop adds the leftover to the consume total before breaking so
    //   the engine's budget/byte counters come out identical.
    //
    // One `try_consume_pages(total)` then pays for everything at once,
    // promotions apply as a single range batch, and exchanges replay
    // pair-by-pair in the legacy order (the Kahan-compensated popularity
    // masses are order-sensitive at the last ULP).
    let mut remaining = engine.remaining_tick_pages();
    let mut free = mem.free_pages(Tier::FMem);
    let promotes = &mut scratch.promote_buf;
    let pairs = &mut scratch.pair_buf;
    promotes.clear();
    pairs.clear();
    let mut total: u64 = 0;
    let mut ci = 0;
    for &(hcount, hpage) in hot.iter() {
        if hcount == 0 {
            break;
        }
        if pool_used < pool_cap_pages && free > 0 {
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            total += 1;
            promotes.push(hpage);
            pool_used += 1;
            free -= 1;
        } else if ci < cold.len() {
            let (ccount, cpage) = cold[ci];
            if (hcount as f64) <= ccount as f64 * hysteresis {
                break;
            }
            if remaining < 2 {
                total += remaining;
                break;
            }
            remaining -= 2;
            total += 2;
            pairs.push((hpage, cpage));
            ci += 1;
        } else {
            break;
        }
    }
    if total == 0 {
        return 0;
    }
    let granted = engine.try_consume_pages(total);
    debug_assert_eq!(granted, total);
    let mut moved = mem.migrate_batch(promotes, Tier::FMem);
    for &(h, c) in pairs.iter() {
        if mem.exchange(&[h], &[c]).is_ok() {
            moved += 2;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{WorkloadClass, WorkloadObs};
    use mtat_tiermem::memory::{InitialPlacement, MemorySpec};
    use mtat_tiermem::page::PageId;
    use mtat_tiermem::MIB;

    fn setup(fmem_mb: u64) -> (TieredMemory, MigrationEngine) {
        let spec = MemorySpec::new(fmem_mb * MIB, 64 * MIB, MIB).unwrap();
        let mem = TieredMemory::new(spec);
        let engine = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        (mem, engine)
    }

    fn obs_for(mem: &TieredMemory, w: WorkloadId, sampled: Vec<u64>) -> WorkloadObs {
        WorkloadObs {
            id: w,
            class: WorkloadClass::Be,
            name: format!("w{}", w.0),
            rss_bytes: mem.region(w).n_pages as u64 * MIB,
            cores: 1,
            load_rps: 0.0,
            p99_secs: 0.0,
            slo_secs: f64::INFINITY,
            hit_ratio: 0.0,
            access_rate: 0.0,
            throughput: 0.0,
            sampled,
            touched: Default::default(),
            slo_violated: false,
        }
    }

    #[test]
    fn enforce_target_promotes_hottest() {
        let (mut mem, mut engine) = setup(8);
        let w = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[obs_for(&mem, w, vec![1, 9, 3, 7, 0, 0, 0, 0])]);
        engine.begin_tick(1.0);
        let (p, d) = enforce_target(&mut mem, &mut engine, &tracker, w, 2);
        assert_eq!((p, d), (2, 0));
        // Ranks 1 (count 9) and 3 (count 7) should be the residents.
        let region = mem.region(w);
        assert_eq!(mem.tier_of(region.page(1)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(3)).unwrap(), Tier::FMem);
    }

    #[test]
    fn enforce_target_demotes_coldest() {
        let (mut mem, mut engine) = setup(8);
        let w = mem
            .register_workload(8 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[obs_for(&mem, w, vec![10, 1, 8, 9, 7, 6, 5, 4])]);
        engine.begin_tick(1.0);
        let (p, d) = enforce_target(&mut mem, &mut engine, &tracker, w, 7);
        assert_eq!((p, d), (0, 1));
        // Rank 1 (count 1) is the coldest and should be demoted.
        assert_eq!(mem.tier_of(mem.region(w).page(1)).unwrap(), Tier::SMem);
    }

    #[test]
    fn enforce_target_respects_budget_and_free_space() {
        let (mut mem, mut engine) = setup(4);
        // Fill FMem with another workload first.
        let filler = mem
            .register_workload(4 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let w = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[
            obs_for(&mem, filler, vec![0; 4]),
            obs_for(&mem, w, vec![5; 8]),
        ]);
        engine.begin_tick(1.0);
        // No free FMem: promotion is a no-op.
        let (p, _) = enforce_target(&mut mem, &mut engine, &tracker, w, 4);
        assert_eq!(p, 0);
        // Make room, then budget-limit the engine.
        enforce_target(&mut mem, &mut engine, &tracker, filler, 0);
        let mut tiny = MigrationEngine::new(1e9, MIB, 10.0).unwrap();
        tiny.begin_tick(2.0 * MIB as f64 / 1e9); // budget: 2 pages
        let (p, _) = enforce_target(&mut mem, &mut tiny, &tracker, w, 4);
        assert_eq!(p, 2);
    }

    #[test]
    fn refine_swaps_fixes_misplacement() {
        let (mut mem, mut engine) = setup(2);
        let w = mem
            .register_workload(4 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        // Ranks 0,1 in FMem; but ranks 2,3 are the hot ones.
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[obs_for(&mem, w, vec![1, 2, 100, 50])]);
        engine.begin_tick(1.0);
        let swaps = refine_swaps(&mut mem, &mut engine, &tracker, w, 10, 1.0);
        assert_eq!(swaps, 2);
        let region = mem.region(w);
        assert_eq!(mem.tier_of(region.page(2)).unwrap(), Tier::FMem);
        assert_eq!(mem.tier_of(region.page(3)).unwrap(), Tier::FMem);
        // Partition size unchanged.
        assert_eq!(mem.residency(w).fmem_pages, 2);
        // A second call finds nothing to improve.
        assert_eq!(refine_swaps(&mut mem, &mut engine, &tracker, w, 10, 1.0), 0);
    }

    #[test]
    fn compete_prefers_hotter_workload() {
        let (mut mem, mut engine) = setup(2);
        let a = mem
            .register_workload(4 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let b = mem
            .register_workload(4 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[
            obs_for(&mem, a, vec![100, 90, 1, 1]),
            obs_for(&mem, b, vec![5, 5, 5, 5]),
        ]);
        engine.begin_tick(1.0);
        let moved = compete(&mut mem, &mut engine, &tracker, &[a, b], 2, 64, 1.0);
        assert_eq!(moved, 2);
        // Workload a's two hot pages win the whole pool.
        assert_eq!(mem.residency(a).fmem_pages, 2);
        assert_eq!(mem.residency(b).fmem_pages, 0);
    }

    #[test]
    fn compete_displaces_colder_pages() {
        let (mut mem, mut engine) = setup(2);
        let a = mem
            .register_workload(2 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let b = mem
            .register_workload(4 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        // a's resident pages are cold; b has hot SMem pages.
        tracker.record_tick(&[
            obs_for(&mem, a, vec![1, 1]),
            obs_for(&mem, b, vec![50, 40, 0, 0]),
        ]);
        engine.begin_tick(1.0);
        let moved = compete(&mut mem, &mut engine, &tracker, &[a, b], 2, 64, 1.0);
        assert_eq!(moved, 4); // two exchanges
        assert_eq!(mem.residency(b).fmem_pages, 2);
        assert_eq!(mem.residency(a).fmem_pages, 0);
    }

    #[test]
    fn compete_respects_pool_cap() {
        let (mut mem, mut engine) = setup(8);
        let a = mem
            .register_workload(8 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[obs_for(&mem, a, vec![9; 8])]);
        engine.begin_tick(1.0);
        // Pool capped at 3 pages even though FMem has 8 free.
        compete(&mut mem, &mut engine, &tracker, &[a], 3, 64, 1.0);
        assert_eq!(mem.residency(a).fmem_pages, 3);
    }

    #[test]
    fn compete_ignores_outside_workloads() {
        let (mut mem, mut engine) = setup(4);
        let lc = mem
            .register_workload(2 * MIB, InitialPlacement::FmemFirst)
            .unwrap();
        let be = mem
            .register_workload(4 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let mut tracker = HotnessTracker::new(&mem);
        tracker.record_tick(&[
            obs_for(&mem, lc, vec![0, 0]),
            obs_for(&mem, be, vec![100, 100, 100, 100]),
        ]);
        engine.begin_tick(1.0);
        // BE competes only for the 2 pages not held by the LC partition.
        compete(&mut mem, &mut engine, &tracker, &[be], 2, 64, 1.0);
        assert_eq!(mem.residency(be).fmem_pages, 2);
        assert_eq!(mem.residency(lc).fmem_pages, 2, "LC pages untouched");
    }

    #[test]
    fn cold_pages_never_promoted_by_compete() {
        let (mut mem, mut engine) = setup(4);
        let a = mem
            .register_workload(4 * MIB, InitialPlacement::AllSmem)
            .unwrap();
        let tracker = HotnessTracker::new(&mem); // all counts zero
        engine.begin_tick(1.0);
        let moved = compete(&mut mem, &mut engine, &tracker, &[a], 4, 64, 1.0);
        assert_eq!(moved, 0);
        let _ = PageId(0); // silence unused import in some cfgs
    }
}
