//! Simulation configuration.

use mtat_tiermem::bandwidth::BandwidthModel;
use mtat_tiermem::memory::MemorySpec;
use mtat_tiermem::{GIB, MIB};
use serde::{Deserialize, Serialize};

/// Global configuration of a co-location experiment.
///
/// Defaults reproduce the paper's testbed (§5): 32 GiB FMem, 256 GiB
/// SMem, 73/202 ns tier latencies (baked into the workload models),
/// ~4 GB/s of migration bandwidth (§5.5), and PEBS-style sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Tier capacities and page size.
    pub mem: MemorySpec,
    /// Migration bandwidth `M` in bytes/second (paper measures ~4 GB/s
    /// consumed during partition replacement).
    pub migration_bw: f64,
    /// Simulation tick in seconds (performance is evaluated, accesses
    /// sampled, and migration budget granted per tick).
    pub tick_secs: f64,
    /// Partitioning-policy update interval `t` in seconds. The paper's
    /// prototype updates once per minute; the simulator defaults to 5 s
    /// so that a 240 s Fig.-5 run contains enough decision points to
    /// track the 20 s load steps (`ablation_interval` sweeps this: 5 s
    /// more than halves the transient violations of 10 s, and 60 s —
    /// the paper's cadence — leaves only four decisions per run).
    pub interval_secs: f64,
    /// PEBS-like sampling period (true accesses per sampled event).
    pub sampler_period: f64,
    /// Log-normal burstiness of instantaneous LC load: each tick's
    /// offered load is multiplied by `exp(N(-σ²/2, σ))` (mean 1). Zero
    /// disables bursts. Bursts are what make thin FMem headroom visible
    /// as tail-latency SLO violations (Table 4) rather than a knife-edge.
    pub burst_sigma: f64,
    /// RNG seed for the whole experiment (sampling, bursts, policies).
    pub seed: u64,
    /// Per-tier bandwidth capacities and latency-inflation model (§7
    /// extension). The default is uncontended at the paper's traffic.
    pub bandwidth: BandwidthModel,
}

impl SimConfig {
    /// Paper-scale defaults.
    pub fn paper() -> Self {
        Self {
            mem: MemorySpec::paper_scale(),
            migration_bw: 4.0 * GIB as f64,
            tick_secs: 1.0,
            interval_secs: 5.0,
            sampler_period: 1009.0,
            burst_sigma: 0.10,
            seed: 0xC0FFEE,
            bandwidth: BandwidthModel::paper_scale(),
        }
    }

    /// A small configuration (1 GiB FMem / 8 GiB SMem, 1 MiB pages) for
    /// fast unit and integration tests.
    pub fn small_test() -> Self {
        Self {
            mem: MemorySpec::new(GIB, 8 * GIB, MIB).expect("valid small spec"),
            migration_bw: 1.0 * GIB as f64,
            tick_secs: 1.0,
            interval_secs: 5.0,
            sampler_period: 101.0,
            burst_sigma: 0.0,
            seed: 7,
            bandwidth: BandwidthModel::paper_scale(),
        }
    }

    /// Number of ticks per partitioning interval (at least 1).
    pub fn ticks_per_interval(&self) -> u64 {
        ((self.interval_secs / self.tick_secs).round() as u64).max(1)
    }

    /// Returns a copy with a different seed (for repeated trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy without load burstiness (deterministic queueing).
    pub fn without_bursts(mut self) -> Self {
        self.burst_sigma = 0.0;
        self
    }

    /// Returns a copy with a bandwidth-starved memory system
    /// ([`BandwidthModel::constrained`]) for the §7 extension studies.
    pub fn with_constrained_bandwidth(mut self) -> Self {
        self.bandwidth = BandwidthModel::constrained();
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper();
        assert_eq!(c.mem.fmem_bytes(), 32 * GIB);
        assert_eq!(c.mem.smem_bytes(), 256 * GIB);
        assert_eq!(c.ticks_per_interval(), 5);
    }

    #[test]
    fn with_seed_and_without_bursts() {
        let c = SimConfig::paper().with_seed(9).without_bursts();
        assert_eq!(c.seed, 9);
        assert_eq!(c.burst_sigma, 0.0);
    }

    #[test]
    fn constrained_bandwidth_helper() {
        let c = SimConfig::paper().with_constrained_bandwidth();
        assert!(c.bandwidth.fmem_bytes_per_sec < 30e9);
        // Paper-scale default is effectively uncontended.
        let d = SimConfig::paper();
        assert!(d.bandwidth.fmem_bytes_per_sec >= 100e9);
    }

    #[test]
    fn ticks_per_interval_is_at_least_one() {
        let mut c = SimConfig::small_test();
        c.interval_secs = 0.1;
        c.tick_secs = 1.0;
        assert_eq!(c.ticks_per_interval(), 1);
    }
}
