//! RL-based FMem partitioning for the LC workload (§3.2.1, Algorithm 1).
//!
//! [`LcPartitioner`] wraps a SAC agent. Every partitioning interval the
//! policy maker feeds it the observed state — FMem Usage Ratio, FMem
//! Access Ratio, normalized Memory Access Count — together with the
//! interval's SLO outcome. The partitioner:
//!
//! 1. converts the outcome of the *previous* action into the Eq. (2)
//!    reward and stores the transition in the replay buffer,
//! 2. (optionally) keeps learning online, exactly as the prototype's
//!    user-space daemon does with its 50-sample incremental updates, and
//! 3. emits the next action — a net FMem change clipped to `±M/2t` —
//!    and the resulting target allocation in bytes.

use mtat_rl::replay::Transition;
use mtat_rl::sac::{Sac, SacConfig};
use mtat_workloads::lc::LcSpec;

use crate::ppm::env::{LcEnvConfig, LcPartitionEnv};

/// Observed LC state at a partitioning interval boundary.
#[derive(Debug, Clone, Copy)]
pub struct LcObservation {
    /// Fraction of the LC resident set currently in FMem.
    pub usage_ratio: f64,
    /// Fraction of LC memory accesses that hit FMem last interval.
    pub access_ratio: f64,
    /// Memory accesses per second last interval, normalized to the
    /// workload's access rate at its reference max load.
    pub access_count_norm: f64,
    /// Worst P99 observed during the interval (seconds).
    pub p99_secs: f64,
    /// Whether any tick of the interval violated the SLO.
    pub violated: bool,
}

impl LcObservation {
    fn state(&self) -> Vec<f64> {
        vec![
            self.usage_ratio.clamp(0.0, 1.0),
            self.access_ratio.clamp(0.0, 1.0),
            self.access_count_norm.clamp(0.0, 2.0),
        ]
    }

    /// The Eq. (2) reward for the interval.
    pub fn reward(&self) -> f64 {
        if self.violated {
            -1.0
        } else {
            1.0 - self.usage_ratio.clamp(0.0, 1.0)
        }
    }
}

/// Configuration of the LC partitioner.
#[derive(Debug, Clone)]
pub struct LcPartitionerConfig {
    /// Total FMem in bytes (allocation ceiling, together with the RSS).
    pub fmem_total: u64,
    /// Eq. (1) action bound `M·t/2` in bytes.
    pub max_step_bytes: f64,
    /// Keep learning online from live transitions.
    pub online_learning: bool,
    /// Use stochastic (exploring) actions instead of the deterministic
    /// policy. Exploration is for training; experiments evaluate the
    /// deterministic policy.
    pub explore: bool,
}

/// The RL-based LC FMem partitioner.
#[derive(Debug)]
pub struct LcPartitioner {
    spec: LcSpec,
    cfg: LcPartitionerConfig,
    agent: Sac,
    target_bytes: u64,
    pending: Option<(Vec<f64>, Vec<f64>)>,
    /// Raw (unclamped) action component from the most recent decision —
    /// the supervisor inspects this for divergence (NaN/inf).
    last_raw_action: Option<f64>,
}

impl LcPartitioner {
    /// Creates a partitioner around an existing (possibly pretrained)
    /// agent, starting from a zero-byte target.
    pub fn new(spec: LcSpec, cfg: LcPartitionerConfig, agent: Sac) -> Self {
        Self {
            spec,
            cfg,
            agent,
            target_bytes: 0,
            pending: None,
            last_raw_action: None,
        }
    }

    /// Pretrains a fresh SAC agent on the analytic environment
    /// ([`LcPartitionEnv`]) for `steps` intervals and wraps it. This is
    /// the reproduction's stand-in for the paper's long-lived daemon
    /// whose model has already converged when an experiment starts.
    pub fn pretrained(spec: &LcSpec, cfg: LcPartitionerConfig, steps: usize, seed: u64) -> Self {
        let mut env_cfg = LcEnvConfig::paper_scale(spec);
        env_cfg.fmem_total = cfg.fmem_total;
        env_cfg.max_step_bytes = cfg.max_step_bytes;
        let mut env = LcPartitionEnv::new(spec.clone(), env_cfg, seed ^ 0xE);
        let mut sac_cfg = SacConfig::paper(3, 1);
        sac_cfg.update_every = 2;
        let mut agent = Sac::new(sac_cfg, seed);
        agent.train(&mut env, steps);
        Self::new(spec.clone(), cfg, agent)
    }

    /// The current target allocation in bytes.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }

    /// Overrides the current target (used at experiment start to align
    /// with the actual initial placement).
    pub fn set_target_bytes(&mut self, bytes: u64) {
        self.target_bytes = bytes.min(self.ceiling());
    }

    /// Access to the underlying agent (diagnostics, persistence).
    pub fn agent(&self) -> &Sac {
        &self.agent
    }

    /// Mutable access to the underlying agent. Exists for fault
    /// injection ([`Sac::poison_actor`]); control code must not use it.
    pub fn agent_mut(&mut self) -> &mut Sac {
        &mut self.agent
    }

    /// The raw action component of the most recent decision, before
    /// clamping — `None` until the first decision. A non-finite value
    /// here means the network has diverged.
    pub fn last_raw_action(&self) -> Option<f64> {
        self.last_raw_action
    }

    fn ceiling(&self) -> u64 {
        self.cfg.fmem_total.min(self.spec.rss_bytes)
    }

    /// Serializes the mutable partitioner state: the current target,
    /// the in-flight (state, action) pair awaiting its reward, the last
    /// raw action, and the full SAC agent (networks, optimizers, replay
    /// buffer, RNG). The spec and config are rebuilt from the
    /// experiment configuration on restart.
    pub fn save_state(&self, w: &mut mtat_snapshot::SnapWriter) {
        use mtat_snapshot::Snap;
        w.put_u64(self.target_bytes);
        self.pending.snap(w);
        self.last_raw_action.snap(w);
        self.agent.snap(w);
    }

    /// Restores state captured by [`Self::save_state`] into this
    /// partitioner, replacing its agent.
    pub fn load_state(
        &mut self,
        r: &mut mtat_snapshot::SnapReader<'_>,
    ) -> Result<(), mtat_snapshot::SnapError> {
        use mtat_snapshot::Snap;
        let target = r.get_u64()?;
        self.target_bytes = target.min(self.ceiling());
        self.pending = Snap::unsnap(r)?;
        self.last_raw_action = Snap::unsnap(r)?;
        self.agent = Snap::unsnap(r)?;
        Ok(())
    }

    /// One PP-M decision: consume the interval observation, learn from
    /// the previous action's outcome, and return the new target FMem
    /// allocation in bytes.
    pub fn decide(&mut self, obs: &LcObservation) -> u64 {
        let state = obs.state();

        // Close the loop on the previous action (Algorithm 1 lines 7-13).
        if let Some((prev_state, prev_action)) = self.pending.take() {
            let transition = Transition {
                state: prev_state,
                action: prev_action,
                reward: obs.reward(),
                next_state: state.clone(),
                done: false,
            };
            if self.cfg.online_learning {
                self.agent.observe(transition);
            }
        }

        // Select the next action (line 4-5): a ∈ [-1, 1] scaled to
        // ±max_step_bytes, already respecting the Eq. (1) clip.
        let action = if self.cfg.explore {
            self.agent.act(&state)
        } else {
            self.agent.act_deterministic(&state)
        };
        let raw = action[0];
        self.last_raw_action = Some(raw);
        // A diverged network (NaN/inf action) must not corrupt the
        // target: NaN.clamp is NaN and `as u64` would zero the
        // partition. Hold the current target and let the supervisor
        // (which watches `last_raw_action`) demote the sizer.
        let delta = if raw.is_finite() {
            raw.clamp(-1.0, 1.0) * self.cfg.max_step_bytes
        } else {
            0.0
        };
        let new_target = (self.target_bytes as f64 + delta).clamp(0.0, self.ceiling() as f64);
        self.target_bytes = new_target as u64;
        self.pending = Some((state, action));
        self.target_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtat_rl::env::Environment;
    use mtat_tiermem::GIB;

    fn cfg() -> LcPartitionerConfig {
        LcPartitionerConfig {
            fmem_total: 32 * GIB,
            max_step_bytes: 20.0 * GIB as f64,
            online_learning: false,
            explore: false,
        }
    }

    fn obs(usage: f64, load: f64, violated: bool) -> LcObservation {
        LcObservation {
            usage_ratio: usage,
            access_ratio: usage,
            access_count_norm: load,
            p99_secs: if violated { 1.0 } else { 1e-3 },
            violated,
        }
    }

    #[test]
    fn reward_follows_eq2() {
        assert_eq!(obs(0.3, 0.5, true).reward(), -1.0);
        assert!((obs(0.3, 0.5, false).reward() - 0.7).abs() < 1e-12);
        assert_eq!(obs(1.0, 0.5, false).reward(), 0.0);
    }

    #[test]
    fn decide_respects_bounds() {
        let spec = LcSpec::redis();
        let agent = Sac::new(SacConfig::small(3, 1), 0);
        let mut p = LcPartitioner::new(spec, cfg(), agent);
        for i in 0..20 {
            let t = p.decide(&obs(0.5, (i % 10) as f64 / 10.0, i % 3 == 0));
            assert!(t <= 32 * GIB);
        }
    }

    #[test]
    fn target_moves_by_at_most_the_eq1_bound() {
        let spec = LcSpec::redis();
        let agent = Sac::new(SacConfig::small(3, 1), 1);
        let mut p = LcPartitioner::new(spec, cfg(), agent);
        p.set_target_bytes(16 * GIB);
        let mut prev = p.target_bytes();
        for i in 0..10 {
            let t = p.decide(&obs(0.5, i as f64 / 10.0, false));
            let moved = (t as i64 - prev as i64).unsigned_abs();
            assert!(
                moved as f64 <= 20.0 * GIB as f64 + 1.0,
                "moved {moved} bytes in one interval"
            );
            prev = t;
        }
    }

    #[test]
    fn set_target_clamps_to_ceiling() {
        let spec = LcSpec::memcached(); // RSS 31.4 GiB < 32 GiB FMem
        let rss = spec.rss_bytes;
        let agent = Sac::new(SacConfig::small(3, 1), 2);
        let mut p = LcPartitioner::new(spec, cfg(), agent);
        p.set_target_bytes(u64::MAX);
        assert_eq!(p.target_bytes(), rss);
    }

    #[test]
    fn online_learning_stores_transitions() {
        let spec = LcSpec::redis();
        let agent = Sac::new(SacConfig::small(3, 1), 3);
        let mut c = cfg();
        c.online_learning = true;
        let mut p = LcPartitioner::new(spec, c, agent);
        for i in 0..10 {
            p.decide(&obs(0.4, i as f64 / 10.0, false));
        }
        // First decide has no previous action; 9 transitions afterwards.
        assert_eq!(p.agent().replay_len(), 9);
    }

    /// End-to-end sanity: a briefly pretrained agent should allocate more
    /// FMem at high load than at low load (the monotone response that
    /// makes Fig. 5's allocation track the trapezoid).
    #[test]
    fn pretrained_agent_responds_to_load() {
        let spec = LcSpec::redis();
        let mut p = LcPartitioner::pretrained(&spec, cfg(), 6000, 42);

        // Present a stable low-load picture, let the target settle.
        let mut low_target = 0;
        for _ in 0..8 {
            let usage = p.target_bytes() as f64 / spec.rss_bytes as f64;
            low_target = p.decide(&obs(usage, 0.1, false));
        }
        // Present a saturated, violating high-load picture.
        let mut high_target = 0;
        for _ in 0..8 {
            let usage = p.target_bytes() as f64 / spec.rss_bytes as f64;
            high_target = p.decide(&obs(usage, 1.0, usage < 0.8));
        }
        assert!(
            high_target > low_target,
            "high-load target {high_target} should exceed low-load {low_target}"
        );
    }

    #[test]
    fn env_is_reachable_via_reexports() {
        // Guard that the training env advertises the paper's state shape.
        let spec = LcSpec::silo();
        let env = LcPartitionEnv::new(spec.clone(), LcEnvConfig::paper_scale(&spec), 0);
        assert_eq!(env.state_dim(), 3);
    }
}
