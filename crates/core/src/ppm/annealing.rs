//! Simulated-annealing search over FMem allocations (Algorithm 2).
//!
//! PP-M distributes the FMem left over after the LC reservation among BE
//! workloads by maximizing a performance-degradation objective `P(M)`
//! (in MTAT, the minimum normalized performance `min_i NP_i`). The
//! search starts from an even split, repeatedly shifts ±1 GB between a
//! random pair of workloads, accepts improving moves unconditionally and
//! worsening moves with probability `exp(ΔP/T)`, and cools `T` by a
//! factor `γ` per iteration, remembering the best allocation seen.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the annealing search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnealingConfig {
    /// Initial temperature `T₀`.
    pub t0: f64,
    /// Geometric cooling factor `γ ∈ (0, 1)`.
    pub gamma: f64,
    /// Stop once `T` falls below this.
    pub threshold: f64,
    /// Hard iteration cap `iter_max`.
    pub iter_max: usize,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            t0: 0.1,
            gamma: 0.995,
            threshold: 1e-4,
            iter_max: 2000,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingResult {
    /// Best allocation found (units per workload; sums to the input sum).
    pub best: Vec<u64>,
    /// Objective value of `best`.
    pub best_score: f64,
    /// Iterations actually executed.
    pub iterations: usize,
}

/// Maximizes `objective` over allocations of indivisible units (1 GB in
/// the paper) across `initial.len()` workloads, preserving the total.
///
/// `objective` is called on candidate allocations and must return a
/// finite score (higher is better).
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn anneal<F>(
    initial: &[u64],
    mut objective: F,
    cfg: &AnnealingConfig,
    seed: u64,
) -> AnnealingResult
where
    F: FnMut(&[u64]) -> f64,
{
    assert!(!initial.is_empty(), "annealing needs at least one workload");
    let n = initial.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = initial.to_vec();
    let mut current_score = objective(&current);
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut temp = cfg.t0;
    let mut iter = 0;

    // A single workload (or zero temperature budget) leaves nothing to do.
    if n >= 2 {
        while iter < cfg.iter_max && temp > cfg.threshold {
            // Randomly select distinct i, j and a ±1 unit shift.
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let delta: i64 = if rng.gen::<bool>() { 1 } else { -1 };
            // M'_i = M_i + Δm, M'_j = M_j − Δm; skip infeasible moves.
            let (gain, lose) = if delta > 0 { (i, j) } else { (j, i) };
            iter += 1;
            temp *= cfg.gamma;
            if current[lose] == 0 {
                continue;
            }
            current[gain] += 1;
            current[lose] -= 1;
            let new_score = objective(&current);
            let dp = new_score - current_score;
            if dp > 0.0 || rng.gen::<f64>() < (dp / temp).exp() {
                current_score = new_score;
                if current_score > best_score {
                    best_score = current_score;
                    best = current.clone();
                }
            } else {
                // Revert the rejected move.
                current[gain] -= 1;
                current[lose] += 1;
            }
        }
    }

    AnnealingResult {
        best,
        best_score,
        iterations: iter,
    }
}

/// Builds the even initial split of Algorithm 2:
/// `M_i = (M_total − M_LC) / n`, with the integer remainder handed to
/// the first workloads one unit each.
pub fn even_split(total_units: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "need at least one workload");
    let base = total_units / n as u64;
    let rem = (total_units % n as u64) as usize;
    (0..n).map(|i| base + if i < rem { 1 } else { 0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_conserves_total() {
        assert_eq!(even_split(10, 3), vec![4, 3, 3]);
        assert_eq!(even_split(9, 3), vec![3, 3, 3]);
        assert_eq!(even_split(2, 4), vec![1, 1, 0, 0]);
        let v = even_split(31, 4);
        assert_eq!(v.iter().sum::<u64>(), 31);
    }

    #[test]
    fn total_units_preserved_by_search() {
        let init = even_split(16, 4);
        let res = anneal(&init, |m| -(m[0] as f64), &AnnealingConfig::default(), 1);
        assert_eq!(res.best.iter().sum::<u64>(), 16);
    }

    #[test]
    fn finds_corner_optimum() {
        // Objective: all units to workload 0.
        let init = even_split(12, 3);
        let res = anneal(&init, |m| m[0] as f64, &AnnealingConfig::default(), 2);
        assert!(res.best[0] >= 11, "best {:?}", res.best);
    }

    #[test]
    fn finds_balanced_optimum() {
        // Objective: maximize the minimum (pure fairness) with asymmetric
        // weights — optimum shifts units toward the weaker workload.
        let weights = [1.0, 2.0, 4.0];
        let init = even_split(14, 3);
        let res = anneal(
            &init,
            |m| {
                m.iter()
                    .zip(weights)
                    .map(|(&u, w)| u as f64 * w)
                    .fold(f64::INFINITY, f64::min)
            },
            &AnnealingConfig::default(),
            3,
        );
        // Ideal continuous solution: u ∝ 1/w → 8, 4, 2.
        assert!(res.best[0] >= 7, "{:?}", res.best);
        assert!(res.best[2] <= 3, "{:?}", res.best);
        assert!(res.best_score >= 7.0);
    }

    #[test]
    fn never_goes_negative() {
        let init = vec![1, 0, 0];
        let res = anneal(&init, |m| m[2] as f64, &AnnealingConfig::default(), 4);
        assert!(res.best.iter().all(|&u| u <= 1));
        assert_eq!(res.best.iter().sum::<u64>(), 1);
    }

    #[test]
    fn respects_iteration_cap_and_threshold() {
        let cfg = AnnealingConfig {
            t0: 1.0,
            gamma: 0.5,
            threshold: 0.1,
            iter_max: 1000,
        };
        // T: 1.0 -> below 0.1 after 4 halvings (0.0625 on iter 4).
        let res = anneal(&even_split(4, 2), |_| 0.0, &cfg, 5);
        assert!(res.iterations <= 5, "{}", res.iterations);

        let cfg2 = AnnealingConfig {
            iter_max: 7,
            gamma: 0.999999,
            ..AnnealingConfig::default()
        };
        let res2 = anneal(&even_split(4, 2), |_| 0.0, &cfg2, 5);
        assert_eq!(res2.iterations, 7);
    }

    #[test]
    fn single_workload_is_identity() {
        let res = anneal(&[5], |m| m[0] as f64, &AnnealingConfig::default(), 0);
        assert_eq!(res.best, vec![5]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let init = even_split(20, 4);
        let f = |m: &[u64]| m.iter().map(|&u| (u as f64).sqrt()).sum::<f64>();
        let a = anneal(&init, f, &AnnealingConfig::default(), 42);
        let b = anneal(&init, f, &AnnealingConfig::default(), 42);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn escapes_local_optima_with_temperature() {
        // A deceptive objective with a local trap at the even split:
        // score is high at even split, zero nearby, highest at corner.
        let init = even_split(8, 2);
        let f = |m: &[u64]| {
            if m[0] == 8 {
                10.0
            } else if m[0] == 4 {
                1.0
            } else {
                0.0
            }
        };
        let cfg = AnnealingConfig {
            t0: 2.0,
            gamma: 0.999,
            threshold: 1e-6,
            iter_max: 5000,
        };
        // With enough temperature the walk crosses the zero plateau.
        let res = anneal(&init, f, &cfg, 11);
        assert!(res.best_score >= 10.0, "stuck at {:?}", res.best);
    }
}
