//! Heuristic feedback controller — the ablation baseline for the RL
//! partitioner.
//!
//! DESIGN.md calls out "SAC vs a simple proportional controller" as an
//! ablation target: the paper chooses reinforcement learning, and this
//! controller lets the benches quantify what that buys. It is a
//! latency-headroom proportional controller: when the observed P99 eats
//! into the SLO it grows the LC allocation proportionally to the
//! overshoot; when there is ample headroom it shrinks slowly
//! (multiplicative-increase, linear-decrease — deliberately asymmetric,
//! since under-allocation is the expensive direction for an SLO).

use serde::{Deserialize, Serialize};

use crate::ppm::lc::LcObservation;

/// Configuration of the proportional controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Total FMem in bytes.
    pub fmem_total: u64,
    /// LC resident set size in bytes (allocation ceiling with FMem).
    pub rss_bytes: u64,
    /// Maximum |change| per interval in bytes (the Eq. (1) bound).
    pub max_step_bytes: f64,
    /// Grow when P99 exceeds this fraction of the SLO.
    pub grow_threshold: f64,
    /// Shrink when P99 is below this fraction of the SLO.
    pub shrink_threshold: f64,
    /// Shrink step as a fraction of `max_step_bytes`.
    pub shrink_step: f64,
    /// The SLO in seconds.
    pub slo_secs: f64,
}

impl ControllerConfig {
    /// Reasonable defaults for the paper-scale system.
    pub fn new(fmem_total: u64, rss_bytes: u64, max_step_bytes: f64, slo_secs: f64) -> Self {
        Self {
            fmem_total,
            rss_bytes,
            max_step_bytes,
            grow_threshold: 0.6,
            shrink_threshold: 0.2,
            shrink_step: 0.1,
            slo_secs,
        }
    }
}

/// Proportional LC allocation controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProportionalController {
    cfg: ControllerConfig,
    target_bytes: u64,
}

impl ProportionalController {
    /// Creates a controller starting from a zero target.
    pub fn new(cfg: ControllerConfig) -> Self {
        Self {
            cfg,
            target_bytes: 0,
        }
    }

    /// Current target in bytes.
    pub fn target_bytes(&self) -> u64 {
        self.target_bytes
    }

    /// Overrides the target (e.g. to match the initial placement).
    pub fn set_target_bytes(&mut self, bytes: u64) {
        self.target_bytes = bytes.min(self.ceiling());
    }

    fn ceiling(&self) -> u64 {
        self.cfg.fmem_total.min(self.cfg.rss_bytes)
    }

    /// Serializes the mutable controller state (the target; the config
    /// is rebuilt from the experiment spec on restart).
    pub fn save_state(&self, w: &mut mtat_snapshot::SnapWriter) {
        w.put_u64(self.target_bytes);
    }

    /// Restores state captured by [`Self::save_state`] into this
    /// controller, clamping to the current ceiling.
    pub fn load_state(
        &mut self,
        r: &mut mtat_snapshot::SnapReader<'_>,
    ) -> Result<(), mtat_snapshot::SnapError> {
        let target = r.get_u64()?;
        self.target_bytes = target.min(self.ceiling());
        Ok(())
    }

    /// One decision from the interval observation; returns the new
    /// target allocation in bytes.
    pub fn decide(&mut self, obs: &LcObservation) -> u64 {
        let slo = self.cfg.slo_secs;
        let p99 = obs.p99_secs;
        let step = if obs.violated || !p99.is_finite() {
            // Hard violation: grow at the full Eq. (1) rate.
            self.cfg.max_step_bytes
        } else if p99 > self.cfg.grow_threshold * slo {
            // Proportional response to the headroom deficit.
            let overshoot = (p99 / slo - self.cfg.grow_threshold) / (1.0 - self.cfg.grow_threshold);
            overshoot.clamp(0.0, 1.0) * self.cfg.max_step_bytes
        } else if p99 < self.cfg.shrink_threshold * slo {
            -self.cfg.shrink_step * self.cfg.max_step_bytes
        } else {
            0.0
        };
        let next = (self.target_bytes as f64 + step).clamp(0.0, self.ceiling() as f64);
        self.target_bytes = next as u64;
        self.target_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtat_tiermem::GIB;

    fn controller() -> ProportionalController {
        ProportionalController::new(ControllerConfig::new(
            32 * GIB,
            34 * GIB,
            20.0 * GIB as f64,
            20e-3,
        ))
    }

    fn obs(p99: f64, violated: bool) -> LcObservation {
        LcObservation {
            usage_ratio: 0.5,
            access_ratio: 0.5,
            access_count_norm: 0.5,
            p99_secs: p99,
            violated,
        }
    }

    #[test]
    fn grows_on_violation() {
        let mut c = controller();
        c.set_target_bytes(4 * GIB);
        let t = c.decide(&obs(0.1, true));
        assert_eq!(t, 24 * GIB); // +20 GiB, the full step
    }

    #[test]
    fn grows_on_infinite_p99() {
        let mut c = controller();
        let t = c.decide(&obs(f64::INFINITY, false));
        assert_eq!(t, 20 * GIB);
    }

    #[test]
    fn grows_proportionally_near_slo() {
        let mut c = controller();
        c.set_target_bytes(8 * GIB);
        // p99 at 80% of SLO: overshoot = (0.8-0.6)/0.4 = 0.5 -> +10 GiB.
        let t = c.decide(&obs(16e-3, false));
        assert_eq!(t, 18 * GIB);
    }

    #[test]
    fn shrinks_slowly_with_headroom() {
        let mut c = controller();
        c.set_target_bytes(20 * GIB);
        // p99 well under 20% of SLO -> shrink by 2 GiB (10% of step).
        let t = c.decide(&obs(1e-3, false));
        assert_eq!(t, 18 * GIB);
    }

    #[test]
    fn holds_in_the_dead_band() {
        let mut c = controller();
        c.set_target_bytes(10 * GIB);
        // p99 at 40% of SLO: between shrink (20%) and grow (60%).
        let t = c.decide(&obs(8e-3, false));
        assert_eq!(t, 10 * GIB);
    }

    #[test]
    fn clamps_to_capacity_and_zero() {
        let mut c = controller();
        c.set_target_bytes(30 * GIB);
        assert_eq!(c.decide(&obs(0.1, true)), 32 * GIB);
        let mut d = controller();
        d.set_target_bytes(GIB);
        assert_eq!(d.decide(&obs(1e-4, false)), 0);
        assert_eq!(d.decide(&obs(1e-4, false)), 0);
    }
}
