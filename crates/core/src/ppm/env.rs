//! Analytic training environment for the LC FMem partitioner.
//!
//! The SAC agent of §3.2.1 is trained against an environment whose state
//! is `(FMem Usage Ratio, FMem Access Ratio, Memory Access Count)` and
//! whose action is the net FMem change, clipped to `±M/2t` (Eq. 1).
//! [`LcPartitionEnv`] is a closed-form model of exactly that loop: the
//! offered load performs a persistent random walk with occasional jumps
//! (the "sudden demand surges" the paper emphasizes), the allocation
//! moves by the clipped action, and the reward follows Eq. (2) —
//! `1 − fmem_ratio` when the interval's worst bursty P99 stays within
//! the SLO, `−1` otherwise.
//!
//! Because every quantity is closed-form, a full pretraining run of tens
//! of thousands of intervals takes seconds, letting experiments start
//! from a converged policy exactly as the paper's long-lived daemon
//! would have.

use mtat_rl::env::Environment;
use mtat_workloads::lc::LcSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the analytic partitioning environment.
#[derive(Debug, Clone)]
pub struct LcEnvConfig {
    /// Total FMem capacity in bytes (the allocation ceiling).
    pub fmem_total: u64,
    /// Eq. (1) bound: maximum |net FMem change| per interval, bytes.
    pub max_step_bytes: f64,
    /// Reference maximum load (requests/s) that load levels scale.
    pub max_load_rps: f64,
    /// Log-normal burst σ applied when checking the interval's worst P99.
    pub burst_sigma: f64,
    /// Sub-interval burst draws per step.
    pub burst_draws: usize,
    /// Probability of a load jump to a uniformly random level.
    pub jump_prob: f64,
    /// Probability of a Fig.-7-style ±20 % load step.
    pub step_prob: f64,
    /// Episode length in intervals.
    pub horizon: usize,
}

impl LcEnvConfig {
    /// Defaults matched to the paper-scale system: 32 GiB FMem,
    /// 20 GiB/interval action bound (4 GB/s × 10 s / 2), moderate bursts.
    pub fn paper_scale(spec: &LcSpec) -> Self {
        use mtat_tiermem::GIB;
        Self {
            fmem_total: 32 * GIB,
            max_step_bytes: 20.0 * GIB as f64,
            max_load_rps: spec.nominal_max_load(),
            burst_sigma: 0.10,
            burst_draws: 10,
            jump_prob: 0.08,
            step_prob: 0.30,
            horizon: 64,
        }
    }
}

/// The analytic LC partitioning environment.
#[derive(Debug, Clone)]
pub struct LcPartitionEnv {
    spec: LcSpec,
    cfg: LcEnvConfig,
    alloc_bytes: f64,
    load_level: f64,
    steps: usize,
    rng: StdRng,
}

impl LcPartitionEnv {
    /// Creates the environment with a mid-range initial allocation and
    /// load.
    pub fn new(spec: LcSpec, cfg: LcEnvConfig, seed: u64) -> Self {
        let alloc = cfg.fmem_total as f64 * 0.5;
        Self {
            spec,
            cfg,
            alloc_bytes: alloc,
            load_level: 0.4,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current LC FMem allocation in bytes.
    pub fn alloc_bytes(&self) -> f64 {
        self.alloc_bytes
    }

    /// Current load level as a fraction of the reference max load.
    pub fn load_level(&self) -> f64 {
        self.load_level
    }

    fn usage_ratio(&self) -> f64 {
        (self.alloc_bytes / self.spec.rss_bytes as f64).min(1.0)
    }

    /// Worst P99 over the interval under log-normal bursts.
    fn worst_p99(&mut self) -> f64 {
        let h = self.usage_ratio();
        let load = self.load_level * self.cfg.max_load_rps;
        if self.cfg.burst_sigma <= 0.0 || self.cfg.burst_draws == 0 {
            return self.spec.p99(load, h);
        }
        let sigma = self.cfg.burst_sigma;
        let mut worst: f64 = 0.0;
        for _ in 0..self.cfg.burst_draws {
            let z = normal(&mut self.rng).clamp(-2.5, 2.5);
            let burst = (sigma * z - sigma * sigma / 2.0).exp();
            worst = worst.max(self.spec.p99(load * burst, h));
        }
        worst
    }

    fn evolve_load(&mut self) {
        let u: f64 = self.rng.gen();
        if u < self.cfg.jump_prob {
            self.load_level = self.rng.gen_range(0.05..1.0);
        } else if u < self.cfg.jump_prob + self.cfg.step_prob {
            // Fig.-7-style staircase move: the load patterns the paper
            // drives change in 20 % steps every other decision interval,
            // so the agent must learn to survive them.
            let dir = if self.rng.gen::<bool>() { 0.2 } else { -0.2 };
            self.load_level = (self.load_level + dir).clamp(0.05, 1.0);
        } else {
            let step: f64 = normal(&mut self.rng) * 0.05;
            self.load_level = (self.load_level + step).clamp(0.05, 1.0);
        }
    }
}

impl Environment for LcPartitionEnv {
    fn state_dim(&self) -> usize {
        3
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn state(&self) -> Vec<f64> {
        // (UsageRatio, AccessRatio, AccessCount). Under uniform LC
        // traffic the measured FMem access ratio equals the usage ratio;
        // the access count normalizes to the load level.
        vec![self.usage_ratio(), self.usage_ratio(), self.load_level]
    }

    fn step(&mut self, action: &[f64]) -> (Vec<f64>, f64, bool) {
        let a = action[0].clamp(-1.0, 1.0);
        let cap = (self.cfg.fmem_total as f64).min(self.spec.rss_bytes as f64);
        self.alloc_bytes = (self.alloc_bytes + a * self.cfg.max_step_bytes).clamp(0.0, cap);
        self.evolve_load();
        let p99 = self.worst_p99();
        // Eq. (2).
        let reward = if p99 <= self.spec.slo_secs {
            1.0 - self.usage_ratio()
        } else {
            -1.0
        };
        self.steps += 1;
        let done = self.steps >= self.cfg.horizon;
        (self.state(), reward, done)
    }

    fn reset(&mut self) -> Vec<f64> {
        self.steps = 0;
        self.alloc_bytes = self.rng.gen_range(0.0..self.cfg.fmem_total as f64);
        self.load_level = self.rng.gen_range(0.05..1.0);
        self.state()
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtat_tiermem::GIB;

    fn env() -> LcPartitionEnv {
        let spec = LcSpec::redis();
        let cfg = LcEnvConfig::paper_scale(&spec);
        LcPartitionEnv::new(spec, cfg, 1)
    }

    #[test]
    fn state_shape_and_ranges() {
        let e = env();
        let s = e.state();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(e.state_dim(), 3);
        assert_eq!(e.action_dim(), 1);
    }

    #[test]
    fn allocation_moves_with_action_and_clamps() {
        let mut e = env();
        let before = e.alloc_bytes();
        e.step(&[1.0]);
        assert!(e.alloc_bytes() > before);
        // Saturate upward: cap at min(fmem_total, rss) = 32 GiB.
        for _ in 0..10 {
            e.step(&[1.0]);
        }
        assert!((e.alloc_bytes() - 32.0 * GIB as f64).abs() < 1.0);
        // Saturate downward.
        for _ in 0..10 {
            e.step(&[-1.0]);
        }
        assert_eq!(e.alloc_bytes(), 0.0);
    }

    #[test]
    fn full_allocation_at_low_load_meets_slo_with_low_reward() {
        let mut e = env();
        e.load_level = 0.2;
        e.cfg.jump_prob = 0.0;
        // Pin the load walk: repeatedly step with max allocation.
        let (_, r, _) = e.step(&[1.0]);
        // Generous allocation at modest load: SLO met, reward = 1 - usage.
        if r > 0.0 {
            assert!(r < 1.0);
        }
    }

    #[test]
    fn zero_allocation_at_high_load_violates() {
        let mut e = env();
        e.cfg.jump_prob = 0.0;
        // Drain allocation, drive load to max.
        for _ in 0..10 {
            e.step(&[-1.0]);
        }
        e.load_level = 1.0;
        // With h = 0 the workload cannot sustain max load: reward = -1.
        // (evolve_load may wiggle the level slightly; force it)
        let mut violated = false;
        for _ in 0..5 {
            e.load_level = 1.0;
            let (_, r, _) = e.step(&[-1.0]);
            if r == -1.0 {
                violated = true;
            }
        }
        assert!(violated);
    }

    #[test]
    fn episodes_terminate_at_horizon() {
        let mut e = env();
        let horizon = e.cfg.horizon;
        e.reset();
        let mut done = false;
        for _ in 0..horizon {
            done = e.step(&[0.0]).2;
        }
        assert!(done);
        let s = e.reset();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn load_walk_stays_in_bounds() {
        let mut e = env();
        for _ in 0..500 {
            e.step(&[0.0]);
            assert!((0.05..=1.0).contains(&e.load_level()));
        }
    }
}
